#!/usr/bin/env python3
"""Annotated message-level walkthrough of the LCU/LRT protocol.

Recreates the paper's Figure 4/5/6 scenarios on a small machine and
prints the actual wire traffic captured by the tracer, so you can read
the protocol the same way the paper draws it.
"""

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.sim.trace import Tracer


def scenario(title, build):
    print("=" * 72)
    print(title)
    print("=" * 72)
    machine = Machine(small_test_model())
    addr = machine.alloc.alloc_line()
    tracer = Tracer.attach(machine, addr_filter={addr})
    os_ = OS(machine)
    build(machine, os_, addr)
    os_.run_all()
    machine.drain()
    print(tracer.render())
    print()


def fig4_uncontended(machine, os_, addr):
    """Figure 4: free-lock grant, then a second requestor forcing the
    owner's entry re-allocation."""

    def owner(thread):
        yield from api.lock(addr, True)
        yield ops.Compute(2_000)
        yield from api.unlock(addr, True)

    def requester(thread):
        yield ops.Compute(400)
        yield from api.lock(addr, True)
        yield from api.unlock(addr, True)

    os_.spawn(owner, name="owner")
    os_.spawn(requester, name="requester")


def fig5_transfer(machine, os_, addr):
    """Figure 5: direct LCU-to-LCU transfer with off-critical-path head
    notification."""

    def a(thread):
        yield from api.lock(addr, True)
        yield ops.Compute(1_500)
        yield from api.unlock(addr, True)

    def b(thread):
        yield ops.Compute(200)
        yield from api.lock(addr, True)
        yield from api.unlock(addr, True)

    os_.spawn(a, name="A")
    os_.spawn(b, name="B")


def fig6_readers(machine, os_, addr):
    """Figure 6: a run of concurrent readers, out-of-order release, the
    Head token bypassing RD_REL entries to reach a waiting writer."""

    def reader(hold):
        def prog(thread):
            yield from api.lock(addr, False)
            yield ops.Compute(hold)
            yield from api.unlock(addr, False)
        return prog

    def writer(thread):
        yield ops.Compute(500)
        yield from api.lock(addr, True)
        yield from api.unlock(addr, True)

    os_.spawn(reader(3_000), name="R1-head")
    os_.spawn(reader(150), name="R2")
    os_.spawn(reader(150), name="R3")
    os_.spawn(writer, name="W")


def main() -> None:
    scenario("Figure 4: uncontended locking & owner re-allocation",
             fig4_uncontended)
    scenario("Figure 5: direct transfer + head notification", fig5_transfer)
    scenario("Figure 6: reader run, RD_REL bypass, waiting writer",
             fig6_readers)


if __name__ == "__main__":
    main()
