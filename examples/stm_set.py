#!/usr/bin/env python3
"""Transactional data structures over LCU reader-writer locks.

Runs the paper's STM workload (75% lookups, 25% updates) against a
red-black tree, skip list or hash table, under any of the four STM
variants, and reports throughput, the app/commit phase split, and the
abort rate — the quantities dissected in the paper's Figure 11.

Try:
    python examples/stm_set.py --variant sw-only --threads 16
    python examples/stm_set.py --variant lcu     --threads 16
and watch the commit phase shrink.
"""

import argparse
import random

from repro import Machine, OS, model_a, model_b
from repro.cpu import ops
from repro.stm.core import ObjectSTM
from repro.stm.direct import populate, run_direct
from repro.stm.structures.hashtable import HashTable
from repro.stm.structures.rbtree import RBTree
from repro.stm.structures.skiplist import SkipList

STRUCTS = {"rb": RBTree, "skip": SkipList, "hash": HashTable}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--variant", default="lcu",
                        choices=sorted(ObjectSTM.VARIANTS))
    parser.add_argument("--structure", default="rb",
                        choices=sorted(STRUCTS))
    parser.add_argument("--model", default="A", choices=["A", "B"])
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--size", type=int, default=512)
    parser.add_argument("--txns", type=int, default=60)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    machine = Machine(model_a() if args.model == "A" else model_b())
    stm = ObjectSTM(machine, args.variant)
    struct = STRUCTS[args.structure](stm)
    key_range = 2 * args.size
    populate(stm, struct, range(0, key_range, 2))

    os_ = OS(machine)

    def worker_factory(index: int):
        def worker(thread):
            rng = random.Random(args.seed * 1_000 + index)
            for _ in range(args.txns):
                key = rng.randrange(key_range)
                p = rng.random()
                if p < 0.75:
                    body = lambda tx, k=key: struct.contains(tx, k)  # noqa: E731
                elif p < 0.875:
                    body = lambda tx, k=key: struct.insert(tx, k)  # noqa: E731
                else:
                    body = lambda tx, k=key: struct.remove(tx, k)  # noqa: E731
                yield from stm.run(thread, body)
                yield ops.Compute(rng.randint(1, 30))
        return worker

    for i in range(args.threads):
        os_.spawn(worker_factory(i))
    elapsed = os_.run_all()

    s = stm.stats
    print(f"{args.variant} STM, {args.structure}, model {args.model}, "
          f"{args.threads} threads, {args.size} initial keys")
    print(f"  {s.commits} txns in {elapsed} cycles "
          f"({elapsed * args.threads / s.commits:.0f} cycles/txn)")
    print(f"  phase split: app {s.app_cycles / s.commits:.0f} + "
          f"commit {s.commit_cycles / s.commits:.0f} cycles/txn")
    print(f"  abort rate: {s.abort_rate:.1%}")
    final = run_direct(stm, lambda tx: struct.snapshot_keys(tx))
    print(f"  final structure size: {len(final)}")


if __name__ == "__main__":
    main()
