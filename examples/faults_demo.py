#!/usr/bin/env python3
"""Fault-injection walkthrough: break the lock protocol on purpose and
watch it recover.

Three acts, all driven from one seed so every run replays bit-identically:

1. **A lossy wire.**  A fault plan drops and duplicates protocol frames
   between the cores and the Lock Reservation Table while a contended
   workload runs.  The reliable layer (sequence numbers, cumulative
   acks, capped-backoff retransmission) hides all of it: the invariant
   monitor and the quiescence audit still pass.
2. **A murdered queue node.**  A waiting LCU queue entry is forcibly
   evicted mid-contention — the distributed queue is now silently
   broken.  The hardened protocol notices (GrantNack or the LRT's
   idle-queue watchdog), reclaims the orphaned queue in a new
   generation era, and every thread still gets its critical section.
3. **The verdict taxonomy.**  Every fault class in the plan gets a
   structured FaultOutcome: recovered / degraded / violated.  The
   nemesis matrix (``python -m repro faults``) runs this at scale.
"""

import argparse
import json

from repro.check.fuzz import FuzzCase, run_case
from repro.faults.plan import generate_plan


def run_act(title, case):
    print(f"\n=== {title} ===")
    plan_doc = case.faults
    kinds = [e["kind"] for e in plan_doc["events"]] if plan_doc else []
    if kinds:
        print(f"fault plan (seed {plan_doc['seed']}): {', '.join(kinds)}")
    outcome = run_case(case)
    status = "PASS" if outcome.ok else f"FAIL: {outcome.failure}"
    print(f"workload: {case.threads} threads x {case.iters} iters "
          f"on {case.locks} lock(s), algo={case.algo}, "
          f"model {case.model}")
    print(f"result:   {status}  ({outcome.elapsed} cycles, "
          f"{outcome.total_cs} critical sections)")
    if outcome.fault_stats:
        inj = ", ".join(f"{k}={v}" for k, v in
                        sorted(outcome.fault_stats.items()))
        print(f"injected: {inj}")
    for fo in outcome.fault_outcomes or []:
        detail = f"  [{fo.detail}]" if fo.detail else ""
        print(f"  {fo.kind:9s} -> {fo.outcome}{detail}")
    assert outcome.ok, outcome.failure
    return outcome


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--threads", type=int, default=6)
    ap.add_argument("--iters", type=int, default=25)
    args = ap.parse_args()

    base = dict(
        algo="lcu", model="A", seed=args.seed, threads=args.threads,
        locks=2, iters=args.iters, write_pct=60, cs_cycles=250,
        think_cycles=80, tiebreak_seed=args.seed & 0xFFFF,
    )

    lossy = generate_plan(
        seed=args.seed, classes=["drop", "dup"], horizon=12_000,
    )
    run_act("Act 1: lossy wire, reliable frames",
            FuzzCase(**base, faults=lossy.to_dict()))

    evict = generate_plan(
        seed=args.seed + 1, classes=["evict"], horizon=12_000,
    )
    out = run_act("Act 2: forced queue-node eviction + reclaim",
                  FuzzCase(**base, faults=evict.to_dict()))

    print("\n=== Act 3: the plan is the reproducer ===")
    doc = json.dumps(evict.to_dict(), sort_keys=True)
    replay = run_case(FuzzCase(**base, faults=json.loads(doc)))
    same = replay.elapsed == out.elapsed
    print(f"replayed from JSON: {replay.elapsed} cycles "
          f"({'bit-identical' if same else 'MISMATCH'})")
    assert same, "replay must be deterministic"
    print("\nfaults demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
