#!/usr/bin/env python3
"""Contention-profiling demo: where does lock-acquire time actually go?

Runs the same contended microbenchmark twice — once with the LCU
hardware lock, once with a software queue lock — profiles both with
:class:`repro.obs.ContentionProfiler`, prints the per-phase wait
decomposition side by side, and finishes with a perf-regression diff:
the software lock's run report is diffed against the LCU's with
``repro.obs.diff_run_reports``, the same machinery behind
``python -m repro diff``.

The phase model (see DESIGN.md "Profiling"):

    enqueue -> queue_wait -> transfer -> handoff -> critical_section

The four acquire phases always sum to exactly the end-to-end acquire
latency the harness measures; the demo asserts that invariant.
"""

import argparse
import os
import tempfile

from repro.harness.microbench import run_microbench
from repro.obs import ContentionProfiler, build_run_report, diff_run_reports
from repro.obs.profile import ACQUIRE_PHASES
from repro.params import model_a


def profile_one(lock: str, threads: int, iters: int, seed: int):
    prof = ContentionProfiler()
    result = run_microbench(
        model_a(), lock, threads, write_pct=100,
        iters_per_thread=iters, seed=seed, profiler=prof,
    )
    return prof, result


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--threads", type=int, default=16)
    ap.add_argument("--iters", type=int, default=60)
    ap.add_argument("--baseline", default="lcu")
    ap.add_argument("--contender", default="mcs")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--outdir", default=None,
                    help="keep folded stacks here (default: temp dir)")
    args = ap.parse_args()

    outdir = args.outdir or tempfile.mkdtemp(prefix="repro-profile-")
    os.makedirs(outdir, exist_ok=True)

    reports = {}
    for lock in (args.baseline, args.contender):
        prof, result = profile_one(lock, args.threads, args.iters,
                                   args.seed)
        d = prof.to_dict()
        (ld,) = d["locks"].values()

        # the phase-sum invariant the profiler guarantees by construction
        phase_sum = sum(ld["phases"][p]["total"] for p in ACQUIRE_PHASES)
        assert phase_sum == ld["acquire_latency_total"]

        print(prof.summarize(top=3))
        folded = os.path.join(outdir, f"{lock}.folded")
        prof.write_folded(folded)
        print(f"\nfolded stacks -> {folded} "
              f"(feed to flamegraph.pl or speedscope)")
        print("=" * 72)
        reports[lock] = build_run_report(
            "microbench",
            {"lock": lock, "threads": args.threads, "iters": args.iters},
            {"cycles_per_cs": result.cycles_per_cs,
             "acquire_latency_mean": result.acquire_latency_mean,
             "total_cs": result.total_cs},
            profile=d,
        )

    print(f"\nregression view: {args.contender} vs {args.baseline} "
          f"baseline")
    diff = diff_run_reports(reports[args.baseline],
                            reports[args.contender], threshold=0.10)
    print(diff.summarize(top=8))
    print(f"\nprofiling demo OK: 2 locks profiled, "
          f"{len(diff.entries)} quantities diffed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
