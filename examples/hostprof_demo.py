#!/usr/bin/env python3
"""Host-profiling demo: where does the *simulator's* time go?

Everything else in this repo measures simulated cycles — deterministic,
bit-reproducible, and completely silent about why a run takes three
wall-clock seconds.  This demo turns the observatory on the engine
itself: it runs one contended microbenchmark with
:class:`repro.obs.HostProfiler` attached, charging every host nanosecond
of the event loop to a subsystem (net, lcu, cpu, engine, ...) and to the
individual event handlers, then prints the attribution and writes folded
stacks for a flamegraph.

Three invariants the demo asserts:

* the per-subsystem attribution sums *exactly* to the total attributed
  time (charge intervals tile the instrumented loop — nothing is lost
  or double-counted);
* attaching the profiler leaves simulated results bit-identical (host
  observation must never perturb simulated time);
* the engine telemetry (heap pushes/pops, queue depth) is identical
  with and without the profiler — those counters are always on.

Typical finding on this codebase: the network hub and the OS scheduler
dominate host cost, which is what ``python -m repro bench`` tracks PR
over PR in BENCH_engine.json.
"""

import argparse
import os
import tempfile

from repro.harness.microbench import run_microbench
from repro.obs import HostProfiler
from repro.params import model_a


def run_once(lock, threads, iters, seed, host=None):
    return run_microbench(
        model_a(), lock, threads, write_pct=100,
        iters_per_thread=iters, seed=seed, host_profiler=host,
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--lock", default="lcu")
    ap.add_argument("--threads", type=int, default=16)
    ap.add_argument("--iters", type=int, default=40)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--outdir", default=None,
                    help="keep folded stacks here (default: temp dir)")
    args = ap.parse_args()

    # pass 1: bare run — the reference simulated result
    bare = run_once(args.lock, args.threads, args.iters, args.seed)

    # pass 2: same run, host profiler attached
    host = HostProfiler()
    prof = run_once(args.lock, args.threads, args.iters, args.seed,
                    host=host)

    # host observation must never perturb simulated time
    assert (bare.elapsed, bare.total_cs) == (prof.elapsed, prof.total_cs)
    print(f"simulated result identical with profiler attached: "
          f"{prof.elapsed} cycles, {prof.total_cs} critical sections")

    d = host.to_dict()
    total = d["total_ns"]
    assert sum(d["subsystems"].values()) == total  # exact tiling
    print(f"\nhost time attributed: {total / 1e6:.1f} ms over "
          f"{d['engine']['events_processed']} events "
          f"(queue depth peak {d['engine']['queue_depth_peak']})")

    print("\nper-subsystem attribution:")
    for sub, ns in sorted(d["subsystems"].items(),
                          key=lambda kv: -kv[1]):
        if ns:
            print(f"  {sub:8s} {ns / 1e6:8.2f} ms  "
                  f"{100.0 * ns / total:5.1f}%  "
                  f"|{'#' * int(40 * ns / total)}")

    print("\ncostliest event handlers:")
    handlers = sorted(d["handlers"].items(), key=lambda kv: -kv[1]["ns"])
    for qualname, h in handlers[:5]:
        print(f"  {h['ns'] / 1e6:8.2f} ms  {h['events']:>7d} events  "
              f"[{h['subsystem']}] {qualname}")

    outdir = args.outdir or tempfile.mkdtemp(prefix="repro-hostprof-")
    os.makedirs(outdir, exist_ok=True)
    folded = os.path.join(outdir, "host.folded")
    host.write_folded(folded)
    print(f"\nfolded stacks -> {folded} "
          f"(feed to flamegraph.pl or speedscope)")
    print("\nnext: 'python -m repro bench --quick' records this "
          "attribution plus best-of-N throughput in BENCH_engine.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
