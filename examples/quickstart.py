#!/usr/bin/env python3
"""Quickstart: fair reader-writer locking with the Lock Control Unit.

Builds the paper's 32-core Model A machine, spawns a mixed reader/writer
workload against a single word-granularity LCU lock, and prints timing
and fairness statistics.  Compare with any other lock via --lock
(tas, tatas, ticket, mcs, mrsw, pthread, ssb, lcu).
"""

import argparse

from repro import Machine, OS, model_a
from repro.cpu import ops
from repro.locks import get_algorithm
from repro.sim.stats import jain_fairness


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lock", default="lcu")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--iters", type=int, default=100)
    parser.add_argument("--write-pct", type=int, default=50)
    args = parser.parse_args()

    machine = Machine(model_a())
    os_ = OS(machine)
    algo = get_algorithm(args.lock)(machine)
    handle = algo.make_lock()
    counter = machine.alloc.alloc_line()
    per_thread = [0] * args.threads

    def worker_factory(index: int):
        def worker(thread):
            for i in range(args.iters):
                write = (i * 100 // args.iters) < args.write_pct
                yield from algo.lock(thread, handle, write)
                if write:
                    v = yield ops.Load(counter)
                    yield ops.Store(counter, v + 1)
                else:
                    yield ops.Load(counter)
                yield ops.Compute(30)
                yield from algo.unlock(thread, handle, write)
                per_thread[index] += 1
        return worker

    for i in range(args.threads):
        os_.spawn(worker_factory(i))
    elapsed = os_.run_all()

    total = sum(per_thread)
    print(f"lock={args.lock}  threads={args.threads}  "
          f"write={args.write_pct}%")
    print(f"  {total} critical sections in {elapsed} cycles "
          f"({elapsed / total:.1f} cycles/CS)")
    print(f"  Jain fairness of per-thread completions: "
          f"{jain_fairness(per_thread):.3f}")
    print(f"  network messages: {machine.net.messages_sent}")
    writes_expected = sum(
        1 for i in range(args.iters)
        if (i * 100 // args.iters) < args.write_pct
    ) * args.threads
    print(f"  shared counter: {machine.mem.peek(counter)} "
          f"(expected {writes_expected})")


if __name__ == "__main__":
    main()
