#!/usr/bin/env python3
"""End-to-end telemetry demo: run a benchmark through the CLI plumbing
with ``--metrics-out`` / ``--trace-out``, then validate and summarize
both artifacts.

The metrics file is a versioned RunReport (see README "Observability");
the trace file is Chrome trace-event JSON — drag it into
https://ui.perfetto.dev to see per-thread lock spans and per-link
message flights on the simulated cycle clock.
"""

import argparse
import json
import os
import tempfile

from repro.__main__ import main as repro_main
from repro.obs import (
    load_run_report,
    summarize_run_report,
    validate_chrome_trace,
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--lock", default="lcu")
    ap.add_argument("--threads", type=int, default=8)
    ap.add_argument("--iters", type=int, default=40)
    ap.add_argument("--sample-interval", type=int, default=1000)
    ap.add_argument("--outdir", default=None,
                    help="keep artifacts here (default: temp dir)")
    args = ap.parse_args()

    outdir = args.outdir or tempfile.mkdtemp(prefix="repro-telemetry-")
    os.makedirs(outdir, exist_ok=True)
    metrics_path = os.path.join(outdir, "metrics.json")
    trace_path = os.path.join(outdir, "trace.json")

    rc = repro_main([
        "microbench", "--lock", args.lock,
        "--threads", str(args.threads), "--iters", str(args.iters),
        "--metrics-out", metrics_path, "--trace-out", trace_path,
        "--sample-interval", str(args.sample_interval),
    ])
    if rc != 0:
        return rc

    report = load_run_report(metrics_path)          # validates the schema
    with open(trace_path) as f:
        trace = json.load(f)
    validate_chrome_trace(trace)

    spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    print()
    print(summarize_run_report(report))
    print()
    print(f"artifacts OK: {metrics_path} "
          f"({len(report['metrics']['counters'])} counters), "
          f"{trace_path} ({len(spans)} spans)")
    print("open the trace at https://ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
