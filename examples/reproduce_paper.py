#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

    python examples/reproduce_paper.py              # quick (minutes)
    python examples/reproduce_paper.py --scale 4    # closer to paper scale
    python examples/reproduce_paper.py --only fig9a fig13

Each figure prints as a text table shaped like the paper's plot, followed
by its shape checks (see EXPERIMENTS.md for the expected shapes and the
paper-vs-measured record).
"""

import argparse
import time

from repro.harness import (
    figure1_table,
    figure8_table,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1,
                        help="multiply iteration counts by this factor")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of: fig1 fig8 fig9a fig9b fig10a "
                             "fig10b fig11a fig11b fig12a fig12b fig13")
    args = parser.parse_args()
    s = args.scale

    jobs = {
        "fig1": lambda: figure1_table(),
        "fig8": lambda: figure8_table(),
        "fig9a": lambda: figure9("A", iters_per_thread=100 * s),
        "fig9b": lambda: figure9("B", write_ratios=(100, 50),
                                 iters_per_thread=100 * s),
        "fig10a": lambda: figure10("A", iters_per_thread=60 * s),
        "fig10b": lambda: figure10(
            "B", thread_counts=(4, 8, 16, 32),
            iters_per_thread=60 * s,
            locks=("lcu", "mcs", "mrsw", "tatas"),
        ),
        "fig11a": lambda: figure11("A", txns_per_thread=40 * s),
        "fig11b": lambda: figure11("B", thread_counts=(1, 4, 8, 16),
                                   txns_per_thread=30 * s),
        "fig12a": lambda: figure12(
            "A", sizes={"rb": 2_048 * s, "skip": 2_048 * s,
                        "hash": 8_192 * s},
            txns_per_thread=30 * s,
        ),
        "fig12b": lambda: figure12(
            "B", sizes={"rb": 1_024 * s, "skip": 1_024 * s,
                        "hash": 4_096 * s},
            txns_per_thread=25 * s,
        ),
        "fig13": lambda: figure13(seeds=tuple(range(1, 3 + s))),
    }
    selected = args.only or list(jobs)

    for name in selected:
        if name not in jobs:
            parser.error(f"unknown figure {name}")
        t0 = time.time()
        result = jobs[name]()
        dt = time.time() - t0
        print()
        print("=" * 72)
        if isinstance(result, str):
            print(result)
        else:
            print(result.text)
            if result.checks:
                status = "OK" if all(result.checks.values()) else "MISMATCH"
                print(f"shape checks [{status}]: {result.checks}")
        print(f"({name} regenerated in {dt:.1f}s host time)")


if __name__ == "__main__":
    main()
