#!/usr/bin/env python3
"""Biased locking and the Free Lock Table (paper Section IV-C).

Runs the Radiosity-style work-stealing kernel — per-thread task queues
whose locks are overwhelmingly re-acquired by their owner — under three
configurations:

* pthread: the software mutex keeps its line in the owner's L1, so each
  re-acquisition is an L1 hit ("implicit biasing");
* lcu: the base LCU pays LRT round trips per acquire/release and loses;
* lcu + FLT: uncontended releases park the lock in the Free Lock Table,
  restoring zero-message re-acquisition.

This is the paper's one adverse application case and its proposed fix.
"""

import argparse

from repro.apps import run_app
from repro.params import model_a


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=16)
    parser.add_argument("--seeds", type=int, default=3)
    args = parser.parse_args()

    seeds = list(range(1, args.seeds + 1))
    rows = [
        ("pthread", run_app(model_a(), "radiosity", "pthread",
                            threads=args.threads, seeds=seeds)),
        ("lcu (base)", run_app(model_a(), "radiosity", "lcu",
                               threads=args.threads, seeds=seeds)),
        ("lcu + FLT", run_app(model_a(flt_entries=8), "radiosity", "lcu",
                              threads=args.threads, seeds=seeds)),
        ("ssb", run_app(model_a(), "radiosity", "ssb",
                        threads=args.threads, seeds=seeds)),
    ]
    base = rows[0][1].elapsed_mean
    print(f"radiosity kernel, {args.threads} threads "
          f"(mean of {len(seeds)} seeds)\n")
    for name, r in rows:
        rel = base / r.elapsed_mean
        print(f"  {name:12s}: {r.elapsed_mean:9.0f} "
              f"± {r.elapsed_ci95:6.0f} cycles   "
              f"speedup vs pthread: {rel:.3f}")


if __name__ == "__main__":
    main()
