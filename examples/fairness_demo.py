#!/usr/bin/env python3
"""Writer starvation demo: fair LCU queueing vs SSB reader preference.

A handful of writers compete with a flood of readers on one RW lock.
With the SSB, readers join any active read run, so the lock can stay in
read mode indefinitely and writers starve (the unfairness the paper
calls out).  The LCU's distributed FIFO queue guarantees every writer is
serviced — while still letting consecutive readers share.

The measurement side is the :class:`repro.obs.FairnessObservatory`: it
rides the lock's observer events, so the demo gets the overtake ledger
(who overtook whom, by mode), per-mode wait percentiles, the writer
share and the starvation watchdog for free — and, being passive, it
leaves the simulated cycle counts untouched.
"""

import argparse

from repro import Machine, OS, model_a
from repro.cpu import ops
from repro.locks import get_algorithm
from repro.obs import FairnessObservatory


def run(lock_name: str, readers: int, writers: int, duration: int,
        starvation_bound: int):
    machine = Machine(model_a())
    os_ = OS(machine)
    algo = get_algorithm(lock_name)(machine)
    handle = algo.make_lock()

    obs = FairnessObservatory(starvation_bound=starvation_bound)
    obs.attach_machine(machine)
    obs.attach_algorithm(algo)

    def worker(write):
        def body(thread):
            while machine.sim.now < duration:
                yield from algo.acquire(thread, handle, write)
                yield ops.Compute(80)
                yield from algo.release(thread, handle, write)
                yield ops.Compute(10)
        return body

    for _ in range(readers):
        os_.spawn(worker(False))
    for _ in range(writers):
        os_.spawn(worker(True))
    os_.run_all()
    obs.detach()
    return obs.lock_summary(algo.lock_id(handle))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--readers", type=int, default=12)
    parser.add_argument("--writers", type=int, default=4)
    parser.add_argument("--duration", type=int, default=150_000)
    parser.add_argument("--starvation-bound", type=int, default=25_000,
                        help="watchdog alert threshold (cycles waited)")
    args = parser.parse_args()

    print(f"{args.readers} readers vs {args.writers} writers, "
          f"{args.duration} cycles\n")
    for lock in ("lcu", "ssb"):
        s = run(lock, args.readers, args.writers, args.duration,
                args.starvation_bound)
        grants = s["grants"]
        total = grants["read"] + grants["write"]
        w_wait = s["wait"]["write"]
        print(f"{lock:4s}: readers {grants['read']:5d}  "
              f"writers {grants['write']:4d}  "
              f"(writer share {s['writer_share']:5.1%})  "
              f"writer wait p99 {w_wait['p99']:.0f} cyc, "
              f"max {w_wait['max']:.0f} cyc")
        ot = s["overtakes"]
        print(f"      overtakes: {ot['total']} total "
              f"(worst single waiter {ot['max']}, "
              f"reader-batch exempt {ot['exempted']}); "
              f"by mode r-by-r={ot['by_mode']['reader_by_reader']} "
              f"w-by-r={ot['by_mode']['writer_by_reader']} "
              f"w-by-w={ot['by_mode']['writer_by_writer']}")
        alerts = s["starvation"]["alerts"]
        if alerts:
            worst = s["starvation"]["alerts_detail"][0]
            print(f"      STARVATION: {alerts} alert(s); first: tid "
                  f"{worst['tid']} ({'writer' if worst['write'] else 'reader'}) "
                  f"waited {worst['waited']} cyc at t={worst['t']}")
        else:
            print(f"      no starvation alerts "
                  f"(bound {args.starvation_bound} cyc)")


if __name__ == "__main__":
    main()
