#!/usr/bin/env python3
"""Writer starvation demo: fair LCU queueing vs SSB reader preference.

A handful of writers compete with a flood of readers on one RW lock.
With the SSB, readers join any active read run, so the lock can stay in
read mode indefinitely and writers starve (the unfairness the paper
calls out).  The LCU's distributed FIFO queue guarantees every writer is
serviced — while still letting consecutive readers share.

Prints per-class completion counts and the worst writer wait time.
"""

import argparse

from repro import Machine, OS, model_a
from repro.cpu import ops
from repro.locks import get_algorithm
from repro.sim.stats import Histogram


def run(lock_name: str, readers: int, writers: int, duration: int):
    machine = Machine(model_a())
    os_ = OS(machine)
    algo = get_algorithm(lock_name)(machine)
    handle = algo.make_lock()
    counts = {"r": 0, "w": 0}
    writer_wait = Histogram(bucket_width=500)

    def reader(thread):
        while machine.sim.now < duration:
            yield from algo.lock(thread, handle, False)
            yield ops.Compute(80)
            counts["r"] += 1
            yield from algo.unlock(thread, handle, False)
            yield ops.Compute(10)

    def writer(thread):
        while machine.sim.now < duration:
            t0 = machine.sim.now
            yield from algo.lock(thread, handle, True)
            writer_wait.add(machine.sim.now - t0)
            yield ops.Compute(80)
            counts["w"] += 1
            yield from algo.unlock(thread, handle, True)
            yield ops.Compute(10)

    for _ in range(readers):
        os_.spawn(reader)
    for _ in range(writers):
        os_.spawn(writer)
    os_.run_all()
    return counts, writer_wait


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--readers", type=int, default=12)
    parser.add_argument("--writers", type=int, default=4)
    parser.add_argument("--duration", type=int, default=150_000)
    args = parser.parse_args()

    print(f"{args.readers} readers vs {args.writers} writers, "
          f"{args.duration} cycles\n")
    for lock in ("lcu", "ssb"):
        counts, wait = run(lock, args.readers, args.writers, args.duration)
        total = counts["r"] + counts["w"]
        share = counts["w"] / total if total else 0.0
        print(f"{lock:4s}: readers {counts['r']:5d}  "
              f"writers {counts['w']:4d}  (writer share {share:5.1%})  "
              f"writer wait p95 {wait.percentile(95):.0f} cyc, "
              f"max {wait.acc.max or 0:.0f} cyc")


if __name__ == "__main__":
    main()
