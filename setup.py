"""Compatibility shim: lets ``pip install -e .`` fall back to the legacy
setuptools path on environments without the ``wheel`` package (all real
metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
