"""CLI tests for ``python -m repro bench`` and ``repro diff --host``:
the round trip run -> append -> diff, trajectory idempotence, the
environment-fingerprint warning, and regression gating on host metrics.
"""

import io
import json
import pathlib
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.__main__ import main
from repro.obs.host import load_trajectory, validate_trajectory

REPO = pathlib.Path(__file__).resolve().parent.parent

#: one tiny cell: small enough for CI, big enough to process events
TINY = ("--locks", "lcu", "--models", "A", "--threads", "2",
        "--iters", "3", "--repeats", "1")


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


def run_bench(tmp_path, *extra, name="t.json"):
    path = tmp_path / name
    code, out, err = run_cli("bench", *TINY, "--out", str(path), *extra)
    assert code == 0, err
    return path


class TestBenchVerb:
    def test_appends_valid_trajectory_record(self, tmp_path):
        path = run_bench(tmp_path)
        t = load_trajectory(str(path))
        validate_trajectory(t)
        assert len(t["records"]) == 1
        rec = t["records"][0]
        assert "env" in rec and "time_utc" in rec
        cell = rec["cells"][0]
        assert cell["lock"] == "lcu" and cell["threads"] == 2
        assert cell["cycles_per_host_sec"] > 0
        assert cell["engine"]["events_processed"] > 0
        assert cell["engine"]["queue_depth_peak"] >= 1

    def test_attribution_sums_to_total(self, tmp_path):
        # acceptance: the host section's per-subsystem attribution sums
        # (exactly -- intervals tile the loop) to total host time
        path = run_bench(tmp_path)
        cell = load_trajectory(str(path))["records"][0]["cells"][0]
        host = cell["host"]
        assert host["total_ns"] > 0
        assert sum(host["subsystems"].values()) == host["total_ns"]
        # and the instrumented pass's wall time bounds the attribution
        assert host["total_ns"] <= \
            cell["instrumented_host_seconds"] * 1e9 * 1.5

    def test_quick_cell(self, tmp_path):
        path = tmp_path / "t.json"
        code, out, err = run_cli(
            "bench", "--quick", "--iters", "3", "--repeats", "1",
            "--out", str(path),
        )
        assert code == 0, err
        cell = load_trajectory(str(path))["records"][0]["cells"][0]
        assert (cell["lock"], cell["model"], cell["threads"]) == \
            ("lcu", "A", 16)

    def test_repeat_timings_recorded(self, tmp_path):
        path = run_bench(tmp_path, "--repeats", "2")
        # run_bench injects --repeats 1 first; last flag wins
        cell = load_trajectory(str(path))["records"][0]["cells"][0]
        assert len(cell["host_seconds"]) == 2
        assert cell["repeats"] == 2
        assert cell["host_seconds_best"] == min(cell["host_seconds"])

    def test_label_append_idempotent(self, tmp_path):
        path = run_bench(tmp_path, "--label", "ci")
        run_bench(tmp_path, "--label", "ci")
        run_bench(tmp_path, "--label", "other")
        t = load_trajectory(str(path))
        assert [r.get("label") for r in t["records"]] == ["ci", "other"]

    def test_no_append_with_json_out(self, tmp_path):
        out_json = tmp_path / "rec.json"
        path = tmp_path / "t.json"
        code, _, err = run_cli(
            "bench", *TINY, "--out", str(path), "--no-append",
            "--json-out", str(out_json),
        )
        assert code == 0, err
        assert not path.exists()
        rec = json.loads(out_json.read_text())
        assert rec["cells"][0]["lock"] == "lcu"

    def test_folded_out(self, tmp_path):
        folded = tmp_path / "host.folded"
        run_bench(tmp_path, "--folded-out", str(folded))
        for line in folded.read_text().strip().split("\n"):
            stack, weight = line.rsplit(" ", 1)
            assert stack.startswith("host;")
            assert len(stack.split(";")) == 3
            int(weight)

    def test_no_host_prof_still_collects_engine(self, tmp_path):
        path = run_bench(tmp_path, "--no-host-prof")
        cell = load_trajectory(str(path))["records"][0]["cells"][0]
        assert "host" not in cell
        assert cell["engine"]["events_processed"] > 0

    def test_embed_report_diffable_with_plain_diff(self, tmp_path):
        path = run_bench(tmp_path, "--embed-report")
        code, out, _ = run_cli("diff", str(path), str(path),
                               "--fail-on-regression")
        assert code == 0
        assert "unchanged" in out

    def test_plain_diff_without_embedded_report_exit_two(self, tmp_path):
        path = run_bench(tmp_path)
        code, _, err = run_cli("diff", str(path), str(path))
        assert code == 2
        assert "--host" in err

    def test_unknown_lock_exit_two(self, tmp_path):
        code, _, err = run_cli("bench", "--locks", "nope",
                               "--out", str(tmp_path / "t.json"))
        assert code == 2
        assert "nope" in err

    def test_zero_repeats_exit_two(self, tmp_path):
        code, _, err = run_cli("bench", *TINY, "--repeats", "0",
                               "--out", str(tmp_path / "t.json"))
        assert code == 2
        assert "--repeats" in err

    def test_report_verb_summarizes_trajectory(self, tmp_path):
        path = run_bench(tmp_path, "--label", "seed")
        code, out, _ = run_cli("report", str(path))
        assert code == 0
        assert "trajectory" in out
        assert "seed" in out
        assert "Mcyc/s" in out


def _append_scaled(path, scale):
    """Append a copy of the latest record with its throughput scaled —
    a synthetic second measurement with zero noise anywhere else."""
    import copy

    t = load_trajectory(str(path))
    rec = copy.deepcopy(t["records"][-1])
    cell = rec["cells"][0]
    cell["cycles_per_host_sec"] = round(
        cell["cycles_per_host_sec"] * scale, 1
    )
    cell["host_seconds_best"] = round(
        cell["host_seconds_best"] / scale, 6
    )
    t["records"].append(rec)
    path.write_text(json.dumps(t))


class TestHostDiff:
    def test_round_trip_two_records_same_file(self, tmp_path):
        path = run_bench(tmp_path, "--label", "base")
        run_bench(tmp_path, "--label", "cand")
        code, out, _ = run_cli("diff", "--host", str(path), str(path),
                               "--fail-on-regression", "--threshold", "5")
        assert code == 0
        assert "label: 'base' -> 'cand'" in out

    def test_injected_regression_exit_one(self, tmp_path):
        path = run_bench(tmp_path)
        _append_scaled(path, 0.5)
        code, out, err = run_cli("diff", "--host", str(path), str(path),
                                 "--fail-on-regression")
        assert code == 1
        assert "cycles_per_host_sec" in out
        assert "FAIL" in err

    def test_improvement_not_a_regression(self, tmp_path):
        path = run_bench(tmp_path)
        _append_scaled(path, 2.0)
        code, out, err = run_cli("diff", "--host", str(path), str(path),
                                 "--fail-on-regression")
        assert code == 0, err
        assert "improvement" in out

    def test_env_fingerprint_mismatch_warns(self, tmp_path):
        base = run_bench(tmp_path)
        other = run_bench(tmp_path, name="other.json")
        t = load_trajectory(str(other))
        t["records"][-1]["env"]["python"] = "9.9.9"
        other.write_text(json.dumps(t))
        code, _, err = run_cli("diff", "--host", str(base), str(other))
        assert code == 0
        assert "fingerprint mismatch" in err
        assert "9.9.9" in err

    def test_record_index_selects(self, tmp_path):
        path = run_bench(tmp_path, "--label", "a")
        run_bench(tmp_path, "--label", "b")
        run_bench(tmp_path, "--label", "c")
        # explicit index: compare record 0 ('a') against latest ('c');
        # same-file old side steps one record back from --record
        code, out, _ = run_cli("diff", "--host", str(path), str(path),
                               "--record", "2", "--threshold", "5")
        assert code == 0
        assert "label: 'b' -> 'c'" in out

    def test_mixed_inputs_exit_two(self, tmp_path):
        traj = run_bench(tmp_path)
        rep = tmp_path / "rep.json"
        code, _, err = run_cli(
            "microbench", "--lock", "lcu", "--threads", "2",
            "--iters", "3", "--host-prof", "--metrics-out", str(rep),
        )
        assert code == 0
        code, _, err = run_cli("diff", "--host", str(traj), str(rep))
        assert code == 2
        assert "not one of each" in err

    def test_two_host_prof_reports(self, tmp_path):
        rep = tmp_path / "rep.json"
        code, _, _ = run_cli(
            "microbench", "--lock", "lcu", "--threads", "2",
            "--iters", "3", "--host-prof", "--metrics-out", str(rep),
        )
        assert code == 0
        code, out, _ = run_cli("diff", "--host", str(rep), str(rep),
                               "--fail-on-regression", "--threshold", "5")
        assert code == 0
        assert "host.total_ns" in out or "unchanged" in out

    def test_report_without_host_section_exit_two(self, tmp_path):
        rep = tmp_path / "rep.json"
        code, _, _ = run_cli(
            "microbench", "--lock", "lcu", "--threads", "2",
            "--iters", "3", "--metrics-out", str(rep),
        )
        assert code == 0
        code, _, err = run_cli("diff", "--host", str(rep), str(rep))
        assert code == 2
        assert "--host-prof" in err


class TestCommittedBaselines:
    """The committed BENCH_* files must stay loadable by the new tools."""

    @pytest.mark.parametrize("name", [
        "BENCH_engine.json", "BENCH_telemetry.json", "BENCH_profile.json",
    ])
    def test_committed_trajectories_validate(self, name):
        t = load_trajectory(str(REPO / name))
        validate_trajectory(t)
        assert t["records"], f"{name} has no records"

    def test_engine_baseline_self_diff(self):
        path = str(REPO / "BENCH_engine.json")
        code, out, _ = run_cli("diff", "--host", path, path,
                               "--record", "0")
        assert code == 0
        assert "unchanged" in out
