"""Tests for the ASCII chart renderer."""

import math

from repro.harness.reporting import render_chart


class TestRenderChart:
    def test_bars_scale_to_peak(self):
        out = render_chart("t", [1], {"a": [50.0], "b": [100.0]}, width=10)
        lines = out.splitlines()
        a_bar = next(l for l in lines if l.strip().startswith("a"))
        b_bar = next(l for l in lines if l.strip().startswith("b"))
        assert b_bar.count("#") == 10
        assert a_bar.count("#") == 5

    def test_title_and_groups(self):
        out = render_chart("threads", [2, 4], {"x": [1.0, 2.0]}, title="T")
        assert out.splitlines()[0] == "T"
        assert "threads=2" in out and "threads=4" in out

    def test_nan_rendered_as_not_run(self):
        out = render_chart("t", [1], {"a": [float("nan")], "b": [5.0]})
        assert "(not run)" in out

    def test_zero_series(self):
        out = render_chart("t", [1], {"a": [0.0]})
        assert "0.0" in out

    def test_values_printed(self):
        out = render_chart("t", [1], {"sys": [123.4]})
        assert "123.4" in out
