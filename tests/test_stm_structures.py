"""Transactional data-structure tests: correctness against a reference
set, RB invariants, concurrent consistency, hypothesis-driven op runs."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, OS, small_test_model
from repro.stm.core import ObjectSTM
from repro.stm.direct import run_direct
from repro.stm.structures.hashtable import HashTable
from repro.stm.structures.rbtree import RBTree
from repro.stm.structures.skiplist import SkipList

ALL_STRUCTURES = [RBTree, SkipList, HashTable]


def make_struct(cls):
    m = Machine(small_test_model())
    stm = ObjectSTM(m, "lcu")
    return m, stm, cls(stm)


@pytest.mark.parametrize("cls", ALL_STRUCTURES)
class TestSequentialSemantics:
    def test_insert_contains_remove(self, cls):
        _m, stm, s = make_struct(cls)
        assert run_direct(stm, lambda tx: s.contains(tx, 3)) is False
        assert run_direct(stm, lambda tx: s.insert(tx, 3)) is True
        assert run_direct(stm, lambda tx: s.contains(tx, 3)) is True
        assert run_direct(stm, lambda tx: s.insert(tx, 3)) is False
        assert run_direct(stm, lambda tx: s.remove(tx, 3)) is True
        assert run_direct(stm, lambda tx: s.remove(tx, 3)) is False
        assert run_direct(stm, lambda tx: s.contains(tx, 3)) is False

    def test_snapshot_sorted(self, cls):
        _m, stm, s = make_struct(cls)
        for k in [5, 1, 9, 3, 7]:
            run_direct(stm, lambda tx, k=k: s.insert(tx, k))
        assert run_direct(stm, lambda tx: s.snapshot_keys(tx)) == [1, 3, 5, 7, 9]

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops_list=st.lists(
        st.tuples(st.sampled_from(["i", "r", "c"]), st.integers(0, 30)),
        max_size=120,
    ))
    def test_matches_reference_set(self, cls, ops_list):
        _m, stm, s = make_struct(cls)
        ref = set()
        for op, key in ops_list:
            if op == "i":
                got = run_direct(stm, lambda tx, k=key: s.insert(tx, k))
                assert got == (key not in ref)
                ref.add(key)
            elif op == "r":
                got = run_direct(stm, lambda tx, k=key: s.remove(tx, k))
                assert got == (key in ref)
                ref.discard(key)
            else:
                got = run_direct(stm, lambda tx, k=key: s.contains(tx, k))
                assert got == (key in ref)
        assert run_direct(stm, lambda tx: s.snapshot_keys(tx)) == sorted(ref)


class TestRBInvariants:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops_list=st.lists(
        st.tuples(st.booleans(), st.integers(0, 50)), max_size=150,
    ))
    def test_balanced_after_every_op(self, ops_list):
        _m, stm, tree = make_struct(RBTree)
        for insert, key in ops_list:
            if insert:
                run_direct(stm, lambda tx, k=key: tree.insert(tx, k))
            else:
                run_direct(stm, lambda tx, k=key: tree.remove(tx, k))
            run_direct(stm, lambda tx: tree.check_invariants(tx))

    def test_large_sequential_build(self):
        _m, stm, tree = make_struct(RBTree)
        keys = list(range(500))
        random.Random(3).shuffle(keys)
        for k in keys:
            run_direct(stm, lambda tx, k=k: tree.insert(tx, k))
        run_direct(stm, lambda tx: tree.check_invariants(tx))
        for k in keys[:250]:
            run_direct(stm, lambda tx, k=k: tree.remove(tx, k))
        run_direct(stm, lambda tx: tree.check_invariants(tx))
        assert run_direct(stm, lambda tx: tree.snapshot_keys(tx)) == sorted(
            keys[250:]
        )


class TestSkipListLevels:
    def test_levels_deterministic_and_bounded(self):
        from repro.stm.structures.skiplist import MAX_LEVEL, _level_of

        for k in range(200):
            lvl = _level_of(k)
            assert 1 <= lvl <= MAX_LEVEL
            assert lvl == _level_of(k)  # deterministic

    def test_level_distribution_roughly_geometric(self):
        from repro.stm.structures.skiplist import _level_of

        levels = [_level_of(k) for k in range(4000)]
        ones = sum(1 for l in levels if l == 1)
        twos = sum(1 for l in levels if l == 2)
        assert 0.35 < ones / len(levels) < 0.65
        assert twos < ones


class TestHashTable:
    def test_bucket_count_validation(self):
        m = Machine(small_test_model())
        stm = ObjectSTM(m, "lcu")
        with pytest.raises(ValueError):
            HashTable(stm, buckets=0)

    def test_colliding_keys_coexist(self):
        _m, stm, h = make_struct(HashTable)
        b = len(h.buckets)
        k1, k2 = 7, 7 + b  # same bucket
        assert run_direct(stm, lambda tx: h.insert(tx, k1))
        assert run_direct(stm, lambda tx: h.insert(tx, k2))
        assert run_direct(stm, lambda tx: h.contains(tx, k1))
        assert run_direct(stm, lambda tx: h.contains(tx, k2))
        assert run_direct(stm, lambda tx: h.remove(tx, k1))
        assert run_direct(stm, lambda tx: h.contains(tx, k2))


@pytest.mark.parametrize("variant", ["sw-only", "lcu", "fraser"])
@pytest.mark.parametrize("cls", ALL_STRUCTURES)
class TestConcurrentConsistency:
    def test_membership_conserved(self, variant, cls):
        """Concurrent random ops: successful insert/remove results must
        exactly explain the final contents."""
        m = Machine(small_test_model())
        stm = ObjectSTM(m, variant)
        s = cls(stm)
        os_ = OS(m)
        results = []

        def factory(i):
            def prog(thread):
                rng = random.Random(1000 * i + 5)
                for _ in range(25):
                    key = rng.randint(0, 25)
                    if rng.random() < 0.5:
                        ok = yield from stm.run(
                            thread, lambda tx, k=key: s.insert(tx, k)
                        )
                        results.append(("i", key, ok))
                    else:
                        ok = yield from stm.run(
                            thread, lambda tx, k=key: s.remove(tx, k)
                        )
                        results.append(("r", key, ok))
            return prog

        for i in range(4):
            os_.spawn(factory(i))
        os_.run_all(max_cycles=20_000_000_000)

        net = {}
        for op, k, ok in results:
            if ok:
                net[k] = net.get(k, 0) + (1 if op == "i" else -1)
        assert all(v in (0, 1) for v in net.values()), net
        expected = sorted(k for k, v in net.items() if v == 1)
        final = run_direct(stm, lambda tx: s.snapshot_keys(tx))
        assert final == expected
        if isinstance(s, RBTree):
            run_direct(stm, lambda tx: s.check_invariants(tx))
