"""Resource-exhaustion tests: nonblocking LCU entries, overflow-mode
readers, the reservation mechanism, and LRT spill/refill (paper III-D/E)."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from tests.conftest import RWTracker, drain_and_check


@pytest.fixture
def m():
    # 2 ordinary entries per LCU: exhaustion is easy to trigger
    return Machine(small_test_model(lcu_ordinary_entries=2))


class TestLcuEntryExhaustion:
    def test_more_held_locks_than_entries(self, m):
        """A thread holding many locks at once exceeds the LCU's ordinary
        entries; nonblocking entries keep it live (paper III-D)."""
        os_ = OS(m)
        addrs = [m.alloc.alloc_line() for _ in range(6)]
        done = []

        def prog(thread):
            for a in addrs:
                yield from api.lock(a, True)
            yield ops.Compute(50)
            for a in reversed(addrs):
                yield from api.unlock(a, True)
            done.append(True)

        os_.spawn(prog)
        os_.run_all(max_cycles=100_000_000)
        assert done
        drain_and_check(m)

    def test_exhaustion_under_contention(self, m):
        """Several threads on one core's worth of entries contending over
        many locks: all must finish."""
        os_ = OS(m, quantum=3_000)
        addrs = [m.alloc.alloc_line() for _ in range(5)]
        trackers = {a: RWTracker() for a in addrs}
        done = [0]

        def prog_factory(i):
            def prog(thread):
                for k in range(8):
                    a = addrs[(i + k) % len(addrs)]
                    write = (i + k) % 2 == 0
                    yield from api.lock(a, write)
                    trackers[a].enter(write)
                    yield ops.Compute(60)
                    trackers[a].exit(write)
                    yield from api.unlock(a, write)
                done[0] += 1
            return prog

        n = m.config.cores * 2
        for i in range(n):
            os_.spawn(prog_factory(i))
        os_.run_all(max_cycles=500_000_000)
        for t in trackers.values():
            t.assert_clean()
        assert done[0] == n
        drain_and_check(m)

    def test_alloc_failures_recorded(self, m):
        lcu = m.lcus[0]
        addrs = [m.alloc.alloc_line() for _ in range(8)]
        # Fill ordinary entries + the local nonblocking entry
        for a in addrs[:3]:
            lcu.instr_acquire(1, a, True)
        # Next acquire has nowhere to go
        assert lcu.instr_acquire(1, addrs[3], True) is False
        assert lcu.stats["alloc_failures"] >= 1


class TestOverflowReaders:
    def test_overflow_reader_granted_without_queue(self, m):
        """When a nonblocking entry read-requests a lock held in read
        mode, the LRT grants in overflow mode (reader_cnt, no queue).

        Ordinary entries only stay allocated while *enqueued* (uncontended
        holds free them), so we pin them with requests queued behind a
        long-lived holder on another core."""
        os_ = OS(m)
        hot = m.alloc.alloc_line()
        extra = [m.alloc.alloc_line() for _ in range(2)]
        tracker = RWTracker()
        lrt = m.lrts[m.mem.home_of(hot)]
        observed = []
        release_blockers = []

        def blocker(thread):
            for a in extra:
                yield from api.lock(a, True)
            while not release_blockers:
                yield ops.Compute(500)
            for a in reversed(extra):
                yield from api.unlock(a, True)

        def base_reader(thread):
            yield ops.Compute(300)
            yield from api.lock(hot, False)
            tracker.enter(False)
            yield ops.Compute(8_000)
            tracker.exit(False)
            yield from api.unlock(hot, False)

        def overflowing_reader(thread):
            yield ops.Compute(600)  # blocker holds extra; base holds hot
            lcu = m.lcus[thread.core]
            # pin both ordinary entries as WAIT queue nodes
            for a in extra:
                yield ops.LcuAcq(a, True)
            yield ops.Compute(200)
            yield from api.lock(hot, False)   # must use nonblocking entry
            tracker.enter(False)
            e = lrt.entry(hot)
            observed.append(e.reader_cnt if e else None)
            yield ops.Compute(200)
            tracker.exit(False)
            yield from api.unlock(hot, False)
            release_blockers.append(True)
            # the pinned WAIT entries are granted once the blocker
            # releases, and the grant timer passes them along

        os_.spawn(blocker)
        os_.spawn(base_reader)
        os_.spawn(overflowing_reader)
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert observed and observed[0] >= 1, (
            f"expected an overflow-mode grant, saw reader_cnt={observed}"
        )
        assert lrt.stats["overflow_grants"] >= 1
        m.drain()
        drain_and_check(m)

    def test_writer_waits_for_overflow_readers(self, m):
        """A writer granted while overflow readers hold must be held back
        until reader_cnt drains (the OvfCheck/OvfClear handshake)."""
        os_ = OS(m)
        hot = m.alloc.alloc_line()
        extra = [m.alloc.alloc_line() for _ in range(2)]
        tracker = RWTracker()

        def base_reader(thread):
            yield from api.lock(hot, False)
            tracker.enter(False)
            yield ops.Compute(2_000)
            tracker.exit(False)
            yield from api.unlock(hot, False)

        def overflowing_reader(thread):
            for a in extra:
                yield from api.lock(a, True)
            yield ops.Compute(300)
            yield from api.lock(hot, False)
            tracker.enter(False)
            yield ops.Compute(6_000)   # holds long after base reader
            tracker.exit(False)
            yield from api.unlock(hot, False)
            for a in reversed(extra):
                yield from api.unlock(a, True)

        def writer(thread):
            yield ops.Compute(1_000)
            yield from api.lock(hot, True)
            tracker.enter(True)   # tracker asserts no readers inside
            yield ops.Compute(100)
            tracker.exit(True)
            yield from api.unlock(hot, True)

        os_.spawn(base_reader)
        os_.spawn(overflowing_reader)
        os_.spawn(writer)
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        drain_and_check(m)


class TestReservation:
    def test_nonblocking_writer_eventually_wins(self, m):
        """A nonblocking entry contending for a popular lock must acquire
        it via the reservation (starvation freedom, paper III-D)."""
        os_ = OS(m)
        hot = m.alloc.alloc_line()
        extra = [m.alloc.alloc_line() for _ in range(2)]
        tracker = RWTracker()
        starved_done = []
        release_blockers = []

        def blocker(thread):
            for a in extra:
                yield from api.lock(a, True)
            while not release_blockers:
                yield ops.Compute(500)
            for a in reversed(extra):
                yield from api.unlock(a, True)

        def churner(thread):
            yield ops.Compute(100)
            for _ in range(60):
                if starved_done:
                    return
                yield from api.lock(hot, True)
                tracker.enter(True)
                yield ops.Compute(300)
                tracker.exit(True)
                yield from api.unlock(hot, True)
                yield ops.Compute(50)

        def starved(thread):
            yield ops.Compute(400)  # blocker holds the extra locks now
            # pin this core's ordinary entries as queue nodes
            for a in extra:
                yield ops.LcuAcq(a, True)
            yield from api.lock(hot, True)     # via nonblocking entry
            tracker.enter(True)
            starved_done.append(m.sim.now)
            tracker.exit(True)
            yield from api.unlock(hot, True)
            release_blockers.append(True)

        os_.spawn(blocker)
        os_.spawn(churner)
        os_.spawn(churner)
        os_.spawn(starved)
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert starved_done, "nonblocking requestor starved"
        lrt = m.lrts[m.mem.home_of(hot)]
        assert lrt.stats["reservations"] >= 1
        m.drain()
        drain_and_check(m)

    def test_reservation_times_out_when_abandoned(self):
        """A reservation left by an expired trylock must expire and free
        the lock for everyone else."""
        mm = Machine(small_test_model(
            lcu_ordinary_entries=2, lrt_reservation_timeout=3_000,
        ))
        os_ = OS(mm)
        hot = mm.alloc.alloc_line()
        extra = [mm.alloc.alloc_line() for _ in range(2)]
        later_done = []

        def holder(thread):
            yield from api.lock(hot, True)
            yield ops.Compute(5_000)
            yield from api.unlock(hot, True)

        def trylocker(thread):
            for a in extra:
                yield from api.lock(a, True)
            yield ops.Compute(200)
            ok = yield from api.trylock(hot, True, retries=2)
            assert not ok
            # abandons; reservation may remain until timeout
            for a in reversed(extra):
                yield from api.unlock(a, True)

        def late_comer(thread):
            yield ops.Compute(6_000)
            yield from api.lock(hot, True)
            later_done.append(True)
            yield from api.unlock(hot, True)

        os_.spawn(holder)
        os_.spawn(trylocker)
        os_.spawn(late_comer)
        os_.run_all(max_cycles=100_000_000)
        assert later_done
        drain_and_check(mm)


class TestLrtOverflow:
    def test_spill_and_refill(self):
        """More simultaneously-held locks than one LRT set holds: entries
        spill to the memory hash table and come back (paper III-E)."""
        mm = Machine(small_test_model(lrt_entries=4, lrt_assoc=2, num_lrts=1,
                                      lcu_ordinary_entries=16))
        os_ = OS(mm)
        # all map to LRT 0 (num_lrts=1); same set via stride
        addrs = [mm.alloc.alloc_line() for _ in range(8)]
        done = []

        def prog(thread):
            for a in addrs:
                yield from api.lock(a, True)
            yield ops.Compute(100)
            for a in addrs:               # touch them again: refills
                yield from api.unlock(a, True)
            done.append(True)

        os_.spawn(prog)
        os_.run_all(max_cycles=100_000_000)
        assert done
        mm.drain()
        lrt = mm.lrts[0]
        assert lrt.stats["evictions"] > 0, "no LRT spill happened"
        assert lrt.stats["refills"] > 0, "no LRT refill happened"
        # spill traffic must consume memory-controller bandwidth
        dir_busy = mm.mem._dir_servers[0].busy_cycles
        assert dir_busy >= (
            lrt.stats["evictions"] + lrt.stats["refills"]
        ) * mm.config.local_mem_latency
        drain_and_check(mm)

    def test_overflowed_lock_still_functional(self):
        """A lock whose LRT entry lives in the overflow table must still
        queue and transfer correctly."""
        mm = Machine(small_test_model(lrt_entries=2, lrt_assoc=1, num_lrts=1,
                                      lcu_ordinary_entries=16))
        os_ = OS(mm)
        addrs = [mm.alloc.alloc_line() for _ in range(6)]
        trackers = {a: RWTracker() for a in addrs}
        done = [0]

        def prog(thread):
            for _ in range(4):
                for a in addrs:
                    yield from api.lock(a, True)
                    trackers[a].enter(True)
                    yield ops.Compute(40)
                    trackers[a].exit(True)
                    yield from api.unlock(a, True)
            done[0] += 1

        for _ in range(3):
            os_.spawn(prog)
        os_.run_all(max_cycles=200_000_000)
        for t in trackers.values():
            t.assert_clean()
        assert done[0] == 3
        drain_and_check(mm)
