"""Unit tests for the reliable-delivery layer (frames, acks, RTO)."""

import random

import pytest

from repro.lcu.messages import Dealloc, QueueProbe
from repro.net.network import Network
from repro.net.reliable import AckFrame, Frame, ReliableLayer
from repro.params import small_test_model
from repro.sim.engine import Simulator

CORE0 = ("core", 0)
CORE1 = ("core", 1)


def make_net():
    config = small_test_model()
    sim = Simulator()

    def chip_of(ep):
        kind, idx = ep
        if kind == "core":
            return config.chip_of_core(idx)
        return idx * config.chips // config.num_lrts

    net = Network(sim, config, chip_of)
    return sim, net


def make_reliable(sim, net, covers=lambda s, d: True, **kw):
    layer = ReliableLayer(sim, covers, **kw)
    layer.attach(net)
    return layer


class TestCoverage:
    def test_wraps_protocol_messages_only(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        m = Dealloc(0x100, 1)
        assert layer.covers(CORE0, CORE1, m)
        # raw payloads (coherence fills, strings, ...) are never framed:
        # a retransmitted frame must not re-run an on_deliver continuation
        assert not layer.covers(CORE0, CORE1, "cache line")
        assert not layer.covers(CORE0, CORE0, m), "self-sends bypass"

    def test_intercepts_frames_and_acks(self):
        assert ReliableLayer.intercepts(Frame(0, "x"))
        assert ReliableLayer.intercepts(AckFrame(3))
        assert not ReliableLayer.intercepts(Dealloc(0x100, 1))

    def test_link_predicate_gates_pairs(self):
        sim, net = make_net()
        layer = make_reliable(sim, net, covers=lambda s, d: s == CORE0)
        m = QueueProbe(0x100, 2)
        assert layer.covers(CORE0, CORE1, m)
        assert not layer.covers(CORE1, CORE0, m)


class TestLossRecovery:
    def test_clean_wire_delivers_in_order(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))
        msgs = [Dealloc(0x100, t) for t in range(4)]
        for m in msgs:
            net.send(CORE0, CORE1, m)
        sim.run()
        assert got == msgs
        assert layer.pending_frames() == 0
        assert layer.retransmits == 0

    def test_dropped_frame_is_retransmitted(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))

        dropped = []

        def fault(src, dst, payload):
            if isinstance(payload, Frame) and not dropped:
                dropped.append(payload)
                return []  # swallow the first frame
            return [(0, payload)]

        net.fault_filter = fault
        m = Dealloc(0x100, 7)
        net.send(CORE0, CORE1, m)
        sim.run()
        assert dropped, "fault filter never saw the frame"
        assert got == [m], "retransmission must deliver exactly once"
        assert layer.retransmits >= 1
        assert layer.pending_frames() == 0

    def test_duplicate_frames_deliver_once(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))
        net.fault_filter = lambda s, d, p: (
            [(0, p), (5, p)] if isinstance(p, Frame) else [(0, p)]
        )
        m = Dealloc(0x100, 7)
        net.send(CORE0, CORE1, m)
        sim.run()
        assert got == [m]
        assert layer.dups_suppressed >= 1

    def test_reordered_frames_held_back(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))

        def fault(src, dst, payload):
            # delay only the first frame so the second overtakes it
            if isinstance(payload, Frame) and payload.seq == 0:
                return [(500, payload)]
            return [(0, payload)]

        net.fault_filter = fault
        msgs = [Dealloc(0x100, t) for t in range(3)]
        for m in msgs:
            net.send(CORE0, CORE1, m)
        sim.run()
        assert got == msgs, "holdback must restore send order"
        assert layer.holdbacks >= 1
        assert layer.pending_frames() == 0

    def test_lost_ack_causes_suppressed_duplicate(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))

        eaten = []

        def fault(src, dst, payload):
            if isinstance(payload, AckFrame) and not eaten:
                eaten.append(payload)
                return []
            return [(0, payload)]

        net.fault_filter = fault
        m = Dealloc(0x100, 9)
        net.send(CORE0, CORE1, m)
        sim.run()
        assert got == [m]
        assert layer.retransmits >= 1
        assert layer.dups_suppressed >= 1
        assert layer.pending_frames() == 0

    def test_on_deliver_runs_exactly_once_despite_dups(self):
        sim, net = make_net()
        make_reliable(sim, net)
        cb = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: None)
        net.fault_filter = lambda s, d, p: (
            [(0, p), (3, p), (9, p)] if isinstance(p, Frame) else [(0, p)]
        )
        net.send(CORE0, CORE1, Dealloc(0x100, 1),
                 on_deliver=lambda: cb.append(1))
        sim.run()
        assert cb == [1]


class TestBackoff:
    def test_rto_backs_off_and_caps(self):
        sim, net = make_net()
        layer = make_reliable(sim, net, rto_base=16, rto_cap=64)
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: None)
        times = []

        def fault(src, dst, payload):
            if isinstance(payload, Frame):
                times.append(sim.now)
                if len(times) < 6:
                    return []
            return [(0, payload)]

        net.fault_filter = fault
        net.send(CORE0, CORE1, Dealloc(0x100, 1))
        sim.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == sorted(gaps), "RTO must be non-decreasing"
        assert max(gaps) <= 64 + 1, "RTO must respect the cap"
        assert layer.pending_frames() == 0

    def test_stats_shape(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        s = layer.stats()
        assert set(s) == {
            "frames_sent", "datagrams_sent", "acks_sent", "retransmits",
            "dups_suppressed", "holdbacks", "pending",
            "era_bumps", "era_drops",
        }


class TestDropStorm:
    """Property tests under sustained seeded loss: whatever the storm
    does, the channel must drain to zero pending with send order intact
    and continuations run exactly once."""

    @pytest.mark.parametrize("seed", [7, 99, 1234])
    def test_storm_drains_in_order_exactly_once(self, seed):
        sim, net = make_net()
        layer = make_reliable(sim, net, rto_base=32, rto_cap=256)
        got, cb = [], []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))
        rng = random.Random(seed)

        def storm(src, dst, payload):
            # 70% loss on frames AND acks while the storm lasts, plus
            # occasional duplication with a delayed second copy
            if sim.now < 4_000:
                r = rng.random()
                if r < 0.7:
                    return []
                if r < 0.8:
                    return [(0, payload), (rng.randrange(1, 200), payload)]
            return [(0, payload)]

        net.fault_filter = storm
        msgs = [Dealloc(0x100, t) for t in range(12)]
        for i, m in enumerate(msgs):
            net.send(CORE0, CORE1, m,
                     on_deliver=(lambda i=i: cb.append(i)))
        sim.run()
        assert got == msgs, "storm must not lose or reorder deliveries"
        assert cb == sorted(cb) and len(cb) == len(set(cb)) == 12, \
            "continuations must run exactly once, in order"
        assert layer.pending_frames() == 0, "channel must drain"

    def test_blackout_probes_flatten_at_rto_cap(self):
        # a blackout much longer than log2(cap/base) doublings: the
        # retransmit gap must flatten at the cap, not keep doubling
        sim, net = make_net()
        layer = make_reliable(sim, net, rto_base=16, rto_cap=128)
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: None)
        times = []

        def blackout(src, dst, payload):
            if isinstance(payload, Frame):
                times.append(sim.now)
                if sim.now < 2_000:
                    return []
            return [(0, payload)]

        net.fault_filter = blackout
        net.send(CORE0, CORE1, Dealloc(0x100, 1))
        sim.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == sorted(gaps), "RTO must be non-decreasing"
        assert all(g <= 128 for g in gaps), "RTO must respect the cap"
        assert gaps.count(128) >= 3, "long blackout must flatten at cap"
        assert layer.pending_frames() == 0

    def test_stale_era_frame_not_mistaken_for_new_era_dup(self):
        """The seq/era hazard: after a crash the sequence space restarts
        at zero, so a pre-crash frame with seq=0 carries the *same*
        sequence number as the first post-crash frame.  The era tag —
        not dup suppression — must reject it."""
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))
        held = []

        def capture(src, dst, payload):
            if isinstance(payload, Frame) and not held:
                held.append((src, dst, payload))
            return [(0, payload)]

        net.fault_filter = capture
        m0 = Dealloc(0x100, 1)
        net.send(CORE0, CORE1, m0)
        sim.run()
        assert got == [m0] and held

        # CORE0 crashes: every pair it participates in opens a new era
        assert layer.bump_era(CORE0) >= 1
        net.fault_filter = None
        m1 = Dealloc(0x200, 2)
        net.send(CORE0, CORE1, m1)
        sim.run()
        assert got == [m0, m1], "new era restarts seq space cleanly"

        # replay the captured pre-crash frame: same seq (0) as the
        # post-crash frame just delivered, but stamped with the old era
        dups, drops = layer.dups_suppressed, layer.era_drops
        src, dst, frame = held[0]
        net._inject(src, dst, frame)
        sim.run()
        assert got == [m0, m1], "stale-era frame must not deliver"
        assert layer.era_drops == drops + 1
        assert layer.dups_suppressed == dups, \
            "must be rejected by era, not mis-acked as a duplicate"


class TestDetach:
    def test_detach_restores_raw_path(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))
        net.send(CORE0, CORE1, Dealloc(0x100, 1))
        sim.run()
        layer.detach()
        assert net.reliable is None
        net.send(CORE0, CORE1, Dealloc(0x100, 2))
        sim.run()
        assert [p.tid for p in got] == [1, 2]
        assert layer.frames_sent == 1, "post-detach send must not frame"


class TestAsymmetricLoss:
    """Gray-failure coverage: an asymmetric partition blackholes one
    direction of a link 100% while the reverse path stays clean — the
    shape ``partition_links`` injects.  Whichever direction is dark
    (data frames out, or acks back), after the heal the channel must
    converge: every message delivered exactly once, in order, zero
    pending, and the retransmit clock pinned at the RTO cap for the
    duration of the blackhole."""

    def test_forward_blackhole_heals_and_converges(self):
        # data direction CORE0 -> CORE1 dark; acks CORE1 -> CORE0 clean
        sim, net = make_net()
        layer = make_reliable(sim, net, rto_base=16, rto_cap=128)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))

        def blackhole(src, dst, payload):
            if isinstance(payload, Frame) and src == CORE0 \
                    and sim.now < 2_000:
                return []
            return [(0, payload)]

        net.fault_filter = blackhole
        msgs = [Dealloc(0x100, t) for t in range(3)]
        for m in msgs:
            net.send(CORE0, CORE1, m)
        sim.run()
        assert got == msgs, "heal must deliver exactly once, in order"
        assert layer.retransmits >= 1
        assert layer.pending_frames() == 0, "acks must converge after heal"

    def test_ack_blackhole_no_duplicate_delivery(self):
        # data direction clean; ack direction CORE1 -> CORE0 dark: the
        # sender keeps retransmitting already-delivered frames and the
        # receiver must suppress every duplicate
        sim, net = make_net()
        layer = make_reliable(sim, net, rto_base=16, rto_cap=128)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))

        def blackhole(src, dst, payload):
            if isinstance(payload, AckFrame) and src == CORE1 \
                    and sim.now < 2_000:
                return []
            return [(0, payload)]

        net.fault_filter = blackhole
        msgs = [Dealloc(0x100, t) for t in range(3)]
        for m in msgs:
            net.send(CORE0, CORE1, m)
        sim.run()
        assert got == msgs, "dup suppression must hold under ack loss"
        assert layer.dups_suppressed >= 1, \
            "the dark ack path must actually force duplicates"
        assert layer.pending_frames() == 0

    def test_one_way_blackhole_rto_flattens_at_cap(self):
        sim, net = make_net()
        layer = make_reliable(sim, net, rto_base=16, rto_cap=128)
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: None)
        times = []

        def blackhole(src, dst, payload):
            if isinstance(payload, Frame) and src == CORE0:
                times.append(sim.now)
                if sim.now < 2_000:
                    return []
            return [(0, payload)]

        net.fault_filter = blackhole
        net.send(CORE0, CORE1, Dealloc(0x100, 1))
        sim.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == sorted(gaps), "RTO must be non-decreasing"
        assert all(g <= 128 for g in gaps), "RTO must respect the cap"
        assert gaps.count(128) >= 3, "long blackhole must flatten at cap"
        assert layer.pending_frames() == 0
