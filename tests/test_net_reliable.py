"""Unit tests for the reliable-delivery layer (frames, acks, RTO)."""

import pytest

from repro.lcu.messages import Dealloc, QueueProbe
from repro.net.network import Network
from repro.net.reliable import AckFrame, Frame, ReliableLayer
from repro.params import small_test_model
from repro.sim.engine import Simulator

CORE0 = ("core", 0)
CORE1 = ("core", 1)


def make_net():
    config = small_test_model()
    sim = Simulator()

    def chip_of(ep):
        kind, idx = ep
        if kind == "core":
            return config.chip_of_core(idx)
        return idx * config.chips // config.num_lrts

    net = Network(sim, config, chip_of)
    return sim, net


def make_reliable(sim, net, covers=lambda s, d: True, **kw):
    layer = ReliableLayer(sim, covers, **kw)
    layer.attach(net)
    return layer


class TestCoverage:
    def test_wraps_protocol_messages_only(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        m = Dealloc(0x100, 1)
        assert layer.covers(CORE0, CORE1, m)
        # raw payloads (coherence fills, strings, ...) are never framed:
        # a retransmitted frame must not re-run an on_deliver continuation
        assert not layer.covers(CORE0, CORE1, "cache line")
        assert not layer.covers(CORE0, CORE0, m), "self-sends bypass"

    def test_intercepts_frames_and_acks(self):
        assert ReliableLayer.intercepts(Frame(0, "x"))
        assert ReliableLayer.intercepts(AckFrame(3))
        assert not ReliableLayer.intercepts(Dealloc(0x100, 1))

    def test_link_predicate_gates_pairs(self):
        sim, net = make_net()
        layer = make_reliable(sim, net, covers=lambda s, d: s == CORE0)
        m = QueueProbe(0x100, 2)
        assert layer.covers(CORE0, CORE1, m)
        assert not layer.covers(CORE1, CORE0, m)


class TestLossRecovery:
    def test_clean_wire_delivers_in_order(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))
        msgs = [Dealloc(0x100, t) for t in range(4)]
        for m in msgs:
            net.send(CORE0, CORE1, m)
        sim.run()
        assert got == msgs
        assert layer.pending_frames() == 0
        assert layer.retransmits == 0

    def test_dropped_frame_is_retransmitted(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))

        dropped = []

        def fault(src, dst, payload):
            if isinstance(payload, Frame) and not dropped:
                dropped.append(payload)
                return []  # swallow the first frame
            return [(0, payload)]

        net.fault_filter = fault
        m = Dealloc(0x100, 7)
        net.send(CORE0, CORE1, m)
        sim.run()
        assert dropped, "fault filter never saw the frame"
        assert got == [m], "retransmission must deliver exactly once"
        assert layer.retransmits >= 1
        assert layer.pending_frames() == 0

    def test_duplicate_frames_deliver_once(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))
        net.fault_filter = lambda s, d, p: (
            [(0, p), (5, p)] if isinstance(p, Frame) else [(0, p)]
        )
        m = Dealloc(0x100, 7)
        net.send(CORE0, CORE1, m)
        sim.run()
        assert got == [m]
        assert layer.dups_suppressed >= 1

    def test_reordered_frames_held_back(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))

        def fault(src, dst, payload):
            # delay only the first frame so the second overtakes it
            if isinstance(payload, Frame) and payload.seq == 0:
                return [(500, payload)]
            return [(0, payload)]

        net.fault_filter = fault
        msgs = [Dealloc(0x100, t) for t in range(3)]
        for m in msgs:
            net.send(CORE0, CORE1, m)
        sim.run()
        assert got == msgs, "holdback must restore send order"
        assert layer.holdbacks >= 1
        assert layer.pending_frames() == 0

    def test_lost_ack_causes_suppressed_duplicate(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))

        eaten = []

        def fault(src, dst, payload):
            if isinstance(payload, AckFrame) and not eaten:
                eaten.append(payload)
                return []
            return [(0, payload)]

        net.fault_filter = fault
        m = Dealloc(0x100, 9)
        net.send(CORE0, CORE1, m)
        sim.run()
        assert got == [m]
        assert layer.retransmits >= 1
        assert layer.dups_suppressed >= 1
        assert layer.pending_frames() == 0

    def test_on_deliver_runs_exactly_once_despite_dups(self):
        sim, net = make_net()
        make_reliable(sim, net)
        cb = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: None)
        net.fault_filter = lambda s, d, p: (
            [(0, p), (3, p), (9, p)] if isinstance(p, Frame) else [(0, p)]
        )
        net.send(CORE0, CORE1, Dealloc(0x100, 1),
                 on_deliver=lambda: cb.append(1))
        sim.run()
        assert cb == [1]


class TestBackoff:
    def test_rto_backs_off_and_caps(self):
        sim, net = make_net()
        layer = make_reliable(sim, net, rto_base=16, rto_cap=64)
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: None)
        times = []

        def fault(src, dst, payload):
            if isinstance(payload, Frame):
                times.append(sim.now)
                if len(times) < 6:
                    return []
            return [(0, payload)]

        net.fault_filter = fault
        net.send(CORE0, CORE1, Dealloc(0x100, 1))
        sim.run()
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert gaps == sorted(gaps), "RTO must be non-decreasing"
        assert max(gaps) <= 64 + 1, "RTO must respect the cap"
        assert layer.pending_frames() == 0

    def test_stats_shape(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        s = layer.stats()
        assert set(s) == {
            "frames_sent", "acks_sent", "retransmits",
            "dups_suppressed", "holdbacks", "pending",
        }


class TestDetach:
    def test_detach_restores_raw_path(self):
        sim, net = make_net()
        layer = make_reliable(sim, net)
        got = []
        net.register(CORE0, lambda s, p: None)
        net.register(CORE1, lambda s, p: got.append(p))
        net.send(CORE0, CORE1, Dealloc(0x100, 1))
        sim.run()
        layer.detach()
        assert net.reliable is None
        net.send(CORE0, CORE1, Dealloc(0x100, 2))
        sim.run()
        assert [p.tid for p in got] == [1, 2]
        assert layer.frames_sent == 1, "post-detach send must not frame"
