"""Real-time priority requests (paper future work, Section V)."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.sim.stats import Accumulator
from tests.conftest import RWTracker, drain_and_check


@pytest.fixture
def m():
    return Machine(small_test_model())


def churn_vs_priority(m, priority: bool, churners=3, rounds=12):
    """Measure the acquire latency of a (priority?) thread competing
    against continuously-churning ordinary threads."""
    os_ = OS(m)
    addr = m.alloc.alloc_line()
    lat = Accumulator()
    stop = []

    def churner(thread):
        while not stop:
            yield from api.lock(addr, True)
            yield ops.Compute(200)
            yield from api.unlock(addr, True)
            yield ops.Compute(20)

    def timed(thread):
        for _ in range(rounds):
            t0 = m.sim.now
            yield from api.lock(addr, True, priority=priority)
            lat.add(m.sim.now - t0)
            yield ops.Compute(50)
            yield from api.unlock(addr, True)
            yield ops.Compute(400)
        stop.append(True)

    for _ in range(churners):
        os_.spawn(churner)
    os_.spawn(timed)
    os_.run_all(max_cycles=500_000_000)
    return lat.mean


class TestPriority:
    def test_priority_cuts_wait_under_contention(self, m):
        normal = churn_vs_priority(Machine(small_test_model()), False)
        prio = churn_vs_priority(Machine(small_test_model()), True)
        assert prio < 0.8 * normal, (prio, normal)

    def test_priority_respects_mutual_exclusion(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()

        def worker(prio):
            def prog(thread):
                for _ in range(15):
                    yield from api.lock(addr, True, priority=prio)
                    tracker.enter(True)
                    yield ops.Compute(40)
                    tracker.exit(True)
                    yield from api.unlock(addr, True)
            return prog

        os_.spawn(worker(False))
        os_.spawn(worker(False))
        os_.spawn(worker(True))
        os_.spawn(worker(True))
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert tracker.total == 60
        drain_and_check(m)

    def test_held_back_ordinaries_eventually_served(self, m):
        """Ordinary requestors refused during a priority window must
        still complete (no starvation of the non-priority class)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        done = []

        def prio_burst(thread):
            for _ in range(5):
                yield from api.lock(addr, True, priority=True)
                yield ops.Compute(300)
                yield from api.unlock(addr, True)
                yield ops.Compute(50)

        def ordinary(thread):
            yield ops.Compute(100)
            for _ in range(5):
                yield from api.lock(addr, True)
                yield ops.Compute(50)
                yield from api.unlock(addr, True)
            done.append(True)

        os_.spawn(prio_burst)
        os_.spawn(ordinary)
        os_.spawn(ordinary)
        os_.run_all(max_cycles=100_000_000)
        assert len(done) == 2
        m.drain()
        drain_and_check(m)

    def test_abandoned_priority_expires(self):
        """A priority trylock that gives up must not freeze ordinary
        requestors forever (the registration times out)."""
        mm = Machine(small_test_model(lrt_reservation_timeout=2_000))
        os_ = OS(mm)
        addr = mm.alloc.alloc_line()
        done = []

        def holder(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(6_000)
            yield from api.unlock(addr, True)

        def prio_trier(thread):
            yield ops.Compute(100)
            ok = yield ops.LcuAcq(addr, True, True)
            assert not ok  # abandons right away

        def late_ordinary(thread):
            yield ops.Compute(8_000)
            yield from api.lock(addr, True)
            done.append(True)
            yield from api.unlock(addr, True)

        os_.spawn(holder)
        os_.spawn(prio_trier)
        os_.spawn(late_ordinary)
        os_.run_all(max_cycles=100_000_000)
        assert done
        mm.drain()

    def test_priority_reader_window_expires(self, m):
        """Priority readers can release silently (RD_REL) with no
        LRT-visible event; their membership must expire rather than wedge
        the lock."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        done = []

        def head_reader(thread):
            yield from api.lock(addr, False)
            yield ops.Compute(4_000)
            yield from api.unlock(addr, False)

        def prio_reader(thread):
            yield ops.Compute(200)
            yield from api.lock(addr, False, priority=True)
            yield ops.Compute(100)
            yield from api.unlock(addr, False)  # silent RD_REL

        def late_writer(thread):
            yield ops.Compute(500)
            yield from api.lock(addr, True)
            done.append(True)
            yield from api.unlock(addr, True)

        os_.spawn(head_reader)
        os_.spawn(prio_reader)
        os_.spawn(late_writer)
        os_.run_all(max_cycles=100_000_000)
        assert done
        m.drain()
