"""The example scripts must run end to end (small arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--threads", "4", "--iters", "20")
        assert "cycles/CS" in out
        assert "Jain fairness" in out
        # the counter check proves the lock actually protected the data
        assert "expected" in out

    def test_quickstart_other_lock(self):
        out = run_example(
            "quickstart.py", "--lock", "mcs", "--threads", "4",
            "--iters", "10",
        )
        assert "lock=mcs" in out

    @pytest.mark.fairness
    def test_fairness_demo(self):
        out = run_example("fairness_demo.py", "--duration", "30000",
                          "--readers", "6", "--writers", "2")
        assert "lcu" in out and "ssb" in out
        assert "writer share" in out
        assert "overtakes:" in out
        assert "starvation" in out.lower()

    def test_stm_set(self):
        out = run_example(
            "stm_set.py", "--threads", "4", "--size", "64",
            "--txns", "15", "--variant", "lcu",
        )
        assert "cycles/txn" in out
        assert "abort rate" in out

    def test_work_stealing(self):
        out = run_example("work_stealing.py", "--threads", "6",
                          "--seeds", "1")
        assert "lcu + FLT" in out
        assert "pthread" in out

    def test_telemetry_demo(self, tmp_path):
        out = run_example(
            "telemetry_demo.py", "--threads", "4", "--iters", "15",
            "--outdir", str(tmp_path),
        )
        assert "artifacts OK" in out
        assert "RunReport kind=microbench" in out
        assert (tmp_path / "metrics.json").exists()
        assert (tmp_path / "trace.json").exists()

    @pytest.mark.profile
    def test_profiling_demo(self, tmp_path):
        out = run_example(
            "profiling_demo.py", "--threads", "6", "--iters", "15",
            "--outdir", str(tmp_path),
        )
        assert "100.00% of end-to-end acquire latency" in out
        assert "regression view: mcs vs lcu" in out
        assert "profiling demo OK" in out
        assert (tmp_path / "lcu.folded").exists()
        assert (tmp_path / "mcs.folded").exists()

    @pytest.mark.bench
    def test_hostprof_demo(self, tmp_path):
        out = run_example(
            "hostprof_demo.py", "--threads", "4", "--iters", "10",
            "--outdir", str(tmp_path),
        )
        assert "simulated result identical with profiler attached" in out
        assert "per-subsystem attribution" in out
        assert "costliest event handlers" in out
        assert (tmp_path / "host.folded").exists()

    def test_faults_demo(self):
        out = run_example("faults_demo.py", "--threads", "4",
                          "--iters", "10")
        assert "lossy wire" in out
        assert "eviction + reclaim" in out
        assert "bit-identical" in out
        assert "faults demo OK" in out

    def test_protocol_walkthrough(self):
        out = run_example("protocol_walkthrough.py")
        assert "Figure 4" in out and "Figure 5" in out and "Figure 6" in out
        assert "Request(" in out and "Grant(" in out
        assert "HeadNotify(" in out

    @pytest.mark.slow
    def test_reproduce_paper_single_figure(self):
        out = run_example("reproduce_paper.py", "--only", "fig1", "fig8")
        assert "Figure 1" in out
        assert "Figure 8" in out
