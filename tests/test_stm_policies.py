"""Contention-manager policy tests for the STM."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.stm.core import ObjectSTM


class TestBackoffPolicies:
    def test_unknown_policy_rejected(self):
        m = Machine(small_test_model())
        with pytest.raises(ValueError):
            ObjectSTM(m, "lcu", backoff="fibonacci")

    def test_policy_shapes(self):
        exp = ObjectSTM.BACKOFF_POLICIES["exponential"]
        lin = ObjectSTM.BACKOFF_POLICIES["linear"]
        none = ObjectSTM.BACKOFF_POLICIES["none"]
        assert exp(0) < exp(3) <= 2_000
        assert exp(100) == 2_000          # capped, no overflow blowup
        assert lin(0) < lin(5) <= 2_000
        assert none(50) == 1

    @pytest.mark.parametrize("policy", ["exponential", "linear", "none"])
    def test_all_policies_converge(self, policy):
        """Every policy must still complete a conflicting workload."""
        m = Machine(small_test_model())
        stm = ObjectSTM(m, "lcu", backoff=policy)
        counter = stm.alloc(0)
        os_ = OS(m)

        def prog(thread):
            for _ in range(8):
                def body(tx):
                    v = yield from tx.read(counter)
                    yield ops.Compute(10)
                    yield from tx.write(counter, v + 1)

                yield from stm.run(thread, body)

        for _ in range(4):
            os_.spawn(prog)
        os_.run_all(max_cycles=5_000_000_000)
        assert counter.value == 32

    def test_backoff_reduces_aborts(self):
        """Exponential backoff must beat immediate retry on abort rate
        under conflict (the contention-manager ablation, in miniature)."""
        def run(policy):
            m = Machine(small_test_model())
            stm = ObjectSTM(m, "lcu", backoff=policy)
            counter = stm.alloc(0)
            os_ = OS(m)

            def prog(thread):
                for _ in range(10):
                    def body(tx):
                        v = yield from tx.read(counter)
                        yield ops.Compute(30)
                        yield from tx.write(counter, v + 1)

                    yield from stm.run(thread, body)

            for _ in range(4):
                os_.spawn(prog)
            os_.run_all(max_cycles=5_000_000_000)
            return stm.stats.abort_rate

        assert run("exponential") < run("none")
