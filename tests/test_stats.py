"""Unit tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Accumulator, Histogram, jain_fairness


class TestAccumulator:
    def test_empty(self):
        a = Accumulator()
        assert a.n == 0
        assert a.mean == 0.0
        assert a.variance == 0.0
        assert a.confidence95() == 0.0

    def test_basic_moments(self):
        a = Accumulator()
        a.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert a.mean == pytest.approx(5.0)
        assert a.stdev == pytest.approx(math.sqrt(32 / 7))
        assert a.min == 2 and a.max == 9
        assert a.total == 40

    def test_single_value(self):
        a = Accumulator()
        a.add(3.5)
        assert a.mean == 3.5
        assert a.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_matches_direct_computation(self, xs):
        a = Accumulator()
        a.extend(xs)
        assert a.mean == pytest.approx(sum(xs) / len(xs), abs=1e-6, rel=1e-9)
        assert a.min == min(xs) and a.max == max(xs)


class TestJainFairness:
    def test_perfectly_fair(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=64))
    def test_bounds(self, xs):
        f = jain_fairness(xs)
        assert 0 <= f <= 1.0 + 1e-9


class TestHistogram:
    def test_percentiles(self):
        h = Histogram(bucket_width=10)
        for v in range(100):  # 0..99, one per bucket of ten
            h.add(v)
        assert h.percentile(50) == pytest.approx(50, abs=10)
        assert h.percentile(100) == pytest.approx(100, abs=10)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=0)

    def test_empty_percentile(self):
        assert Histogram().percentile(99) == 0.0
