"""Unit tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Accumulator, Histogram, jain_fairness


class TestAccumulator:
    def test_empty(self):
        a = Accumulator()
        assert a.n == 0
        assert a.mean == 0.0
        assert a.variance == 0.0
        assert a.confidence95() == 0.0

    def test_basic_moments(self):
        a = Accumulator()
        a.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert a.mean == pytest.approx(5.0)
        assert a.stdev == pytest.approx(math.sqrt(32 / 7))
        assert a.min == 2 and a.max == 9
        assert a.total == 40

    def test_single_value(self):
        a = Accumulator()
        a.add(3.5)
        assert a.mean == 3.5
        assert a.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_matches_direct_computation(self, xs):
        a = Accumulator()
        a.extend(xs)
        assert a.mean == pytest.approx(sum(xs) / len(xs), abs=1e-6, rel=1e-9)
        assert a.min == min(xs) and a.max == max(xs)

    def test_merge_empty_cases(self):
        a, b = Accumulator(), Accumulator()
        a.merge(b)
        assert a.n == 0
        b.extend([1, 2, 3])
        a.merge(b)
        assert a.n == 3 and a.mean == pytest.approx(2.0)
        empty = Accumulator()
        a.merge(empty)
        assert a.n == 3

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
    )
    def test_merge_matches_sequential(self, xs, ys):
        merged = Accumulator()
        merged.extend(xs)
        other = Accumulator()
        other.extend(ys)
        merged.merge(other)
        direct = Accumulator()
        direct.extend(xs + ys)
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean, abs=1e-6, rel=1e-9)
        assert merged.stdev == pytest.approx(direct.stdev, abs=1e-3, rel=1e-6)
        assert merged.min == direct.min and merged.max == direct.max
        assert merged.total == pytest.approx(direct.total)


class TestJainFairness:
    def test_perfectly_fair(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0, 0]) == 1.0

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=64))
    def test_bounds(self, xs):
        f = jain_fairness(xs)
        assert 0 <= f <= 1.0 + 1e-9


class TestHistogram:
    def test_percentiles(self):
        h = Histogram(bucket_width=10)
        for v in range(100):  # 0..99, one per bucket of ten
            h.add(v)
        assert h.percentile(50) == pytest.approx(50, abs=10)
        assert h.percentile(100) == pytest.approx(100, abs=10)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=0)

    def test_empty_percentile_raises(self):
        # no silent garbage: percentiles of an empty histogram are
        # undefined (callers check .empty first)
        with pytest.raises(ValueError, match="empty histogram"):
            Histogram().percentile(99)
        assert Histogram().empty

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram(bucket_width=100)
        for _ in range(100):
            h.add(10)  # all in bucket [0, 100)
        # rank-based interpolation inside the single bucket
        assert h.percentile(25) == pytest.approx(25.0)
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(99) == pytest.approx(99.0)

    def test_merge(self):
        a, b = Histogram(bucket_width=10), Histogram(bucket_width=10)
        for v in range(0, 50):
            a.add(v)
        for v in range(50, 100):
            b.add(v)
        a.merge(b)
        assert a.acc.n == 100
        assert a.acc.mean == pytest.approx(49.5)
        direct = Histogram(bucket_width=10)
        for v in range(100):
            direct.add(v)
        assert a.buckets == direct.buckets
        assert a.percentile(50) == direct.percentile(50)

    def test_merge_rejects_width_mismatch(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=10).merge(Histogram(bucket_width=20))

    def test_summary(self):
        h = Histogram(bucket_width=10)
        for v in range(100):
            h.add(v)
        s = h.summary()
        assert s["count"] == 100
        assert s["mean"] == pytest.approx(49.5)
        assert s["min"] == 0 and s["max"] == 99
        assert s["bucket_width"] == 10
        assert set(s["percentiles"]) == {"p50", "p90", "p95", "p99"}
        assert s["percentiles"]["p50"] == pytest.approx(50, abs=10)
