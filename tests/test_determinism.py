"""Bit-level reproducibility: identical inputs give identical runs.

The whole evaluation methodology rests on deterministic simulation —
every benchmark number must be replayable.  These tests re-run
representative workloads and demand exact equality of finish times and
statistics.
"""

import glob
import json
import os

from repro.apps import run_app
from repro.harness.microbench import run_microbench
from repro.harness.stm_bench import run_stm_bench
from repro.params import model_a, small_test_model

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


class TestDeterminism:
    def test_microbench_replays_exactly(self):
        kw = dict(threads=7, write_pct=40, iters_per_thread=25, seed=11)
        a = run_microbench(small_test_model(), "lcu", **kw)
        b = run_microbench(small_test_model(), "lcu", **kw)
        assert a.elapsed == b.elapsed
        assert a.per_thread_cs == b.per_thread_cs
        assert a.acquire_latency_mean == b.acquire_latency_mean

    def test_microbench_oversubscribed_replays(self):
        """Preemption + migration paths must be deterministic too."""
        def go():
            cfg = small_test_model(timeslice=2_000)
            return run_microbench(cfg, "mcs", threads=9, write_pct=100,
                                  iters_per_thread=15, seed=3)
        assert go().elapsed == go().elapsed

    def test_stm_replays_exactly(self):
        kw = dict(threads=4, initial_size=64, txns_per_thread=12, seed=5)
        a = run_stm_bench(small_test_model(), "lcu", "rb", **kw)
        b = run_stm_bench(small_test_model(), "lcu", "rb", **kw)
        assert a.elapsed == b.elapsed
        assert a.abort_rate == b.abort_rate

    def test_app_replays_exactly(self):
        a = run_app(small_test_model(), "fluidanimate", "ssb",
                    threads=4, seeds=[2])
        b = run_app(small_test_model(), "fluidanimate", "ssb",
                    threads=4, seeds=[2])
        assert a.elapsed_mean == b.elapsed_mean

    def test_model_a_benchmarks_replay(self):
        kw = dict(threads=16, write_pct=25, iters_per_thread=20)
        a = run_microbench(model_a(), "lcu", **kw)
        b = run_microbench(model_a(), "lcu", **kw)
        assert a.elapsed == b.elapsed

    def test_seed_changes_results(self):
        """The seed must actually steer the randomness."""
        kw = dict(threads=5, write_pct=50, iters_per_thread=25)
        a = run_microbench(small_test_model(), "lcu", seed=1, **kw)
        b = run_microbench(small_test_model(), "lcu", seed=2, **kw)
        assert a.elapsed != b.elapsed


class TestSweepDeterminism:
    """The multiprocess sweep runner must be a pure speedup: worker
    count changes wall time, never one byte of the merged artifact."""

    def _specs(self):
        from repro.harness.bench import BenchCellSpec
        return [
            BenchCellSpec("lcu", "A", 4, iters=25),
            BenchCellSpec("mcs", "A", 4, iters=25),
        ]

    def test_parallel_sweep_matches_serial_bytes(self):
        from repro.harness.parallel import run_sweep

        serial = run_sweep(self._specs(), seeds=[1, 2], workers=0)
        parallel = run_sweep(self._specs(), seeds=[1, 2], workers=2)
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(parallel, sort_keys=True))

    def test_sweep_report_is_valid_and_replayable(self):
        from repro.harness.parallel import run_sweep
        from repro.obs.report import validate_run_report

        a = run_sweep(self._specs(), seeds=[3], workers=0)
        b = run_sweep(self._specs(), seeds=[3], workers=0)
        validate_run_report(a)
        assert a["kind"] == "sweep"
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_shard_order_is_merge_order(self):
        """Shards merge in spec order (specs outer, seeds inner), never
        completion order — the property the byte-equality rests on."""
        from repro.harness.parallel import run_sweep, sweep_shards

        specs = self._specs()
        shards = sweep_shards(specs, [1, 2])
        assert [(s.lock, seed) for s, seed in shards] == [
            ("lcu", 1), ("lcu", 2), ("mcs", 1), ("mcs", 2),
        ]
        report = run_sweep(specs, seeds=[1, 2], workers=0)
        cells = report["results"]["cells"]
        assert [(c["spec"]["lock"], c["seed"]) for c in cells] == [
            ("lcu", 1), ("lcu", 2), ("mcs", 1), ("mcs", 2),
        ]


class TestReproducerReplay:
    """Saved fuzz reproducers must keep replaying bit-identically across
    engine rewrites — they pin the event schedule itself."""

    def test_saved_reproducers_replay_identically(self):
        from repro.check.fuzz import load_case, run_case

        paths = sorted(glob.glob(os.path.join(DATA_DIR, "check_repro_*.json")))
        assert paths, "reproducer corpus missing from tests/data/"
        for path in paths:
            case = load_case(path)
            a = run_case(case)
            b = run_case(case)
            assert a.ok == b.ok, path
            assert a.elapsed == b.elapsed, path
            assert a.total_cs == b.total_cs, path
            assert a.monitor_stats == b.monitor_stats, path
