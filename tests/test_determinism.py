"""Bit-level reproducibility: identical inputs give identical runs.

The whole evaluation methodology rests on deterministic simulation —
every benchmark number must be replayable.  These tests re-run
representative workloads and demand exact equality of finish times and
statistics.
"""

from repro.apps import run_app
from repro.harness.microbench import run_microbench
from repro.harness.stm_bench import run_stm_bench
from repro.params import model_a, small_test_model


class TestDeterminism:
    def test_microbench_replays_exactly(self):
        kw = dict(threads=7, write_pct=40, iters_per_thread=25, seed=11)
        a = run_microbench(small_test_model(), "lcu", **kw)
        b = run_microbench(small_test_model(), "lcu", **kw)
        assert a.elapsed == b.elapsed
        assert a.per_thread_cs == b.per_thread_cs
        assert a.acquire_latency_mean == b.acquire_latency_mean

    def test_microbench_oversubscribed_replays(self):
        """Preemption + migration paths must be deterministic too."""
        def go():
            cfg = small_test_model(timeslice=2_000)
            return run_microbench(cfg, "mcs", threads=9, write_pct=100,
                                  iters_per_thread=15, seed=3)
        assert go().elapsed == go().elapsed

    def test_stm_replays_exactly(self):
        kw = dict(threads=4, initial_size=64, txns_per_thread=12, seed=5)
        a = run_stm_bench(small_test_model(), "lcu", "rb", **kw)
        b = run_stm_bench(small_test_model(), "lcu", "rb", **kw)
        assert a.elapsed == b.elapsed
        assert a.abort_rate == b.abort_rate

    def test_app_replays_exactly(self):
        a = run_app(small_test_model(), "fluidanimate", "ssb",
                    threads=4, seeds=[2])
        b = run_app(small_test_model(), "fluidanimate", "ssb",
                    threads=4, seeds=[2])
        assert a.elapsed_mean == b.elapsed_mean

    def test_model_a_benchmarks_replay(self):
        kw = dict(threads=16, write_pct=25, iters_per_thread=20)
        a = run_microbench(model_a(), "lcu", **kw)
        b = run_microbench(model_a(), "lcu", **kw)
        assert a.elapsed == b.elapsed

    def test_seed_changes_results(self):
        """The seed must actually steer the randomness."""
        kw = dict(threads=5, write_pct=50, iters_per_thread=25)
        a = run_microbench(small_test_model(), "lcu", seed=1, **kw)
        b = run_microbench(small_test_model(), "lcu", seed=2, **kw)
        assert a.elapsed != b.elapsed
