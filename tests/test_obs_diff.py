"""Unit tests for RunReport diffing (repro.obs.diff)."""

import pytest

from repro.obs import build_run_report, diff_run_reports
from repro.obs.diff import DiffEntry, RunReportDiff, direction_of


def report(results=None, counters=None, config=None, histograms=None):
    metrics = {
        "counters": counters or {},
        "gauges": {},
        "histograms": histograms or {},
        "series": {},
    }
    return build_run_report("microbench", config or {}, results or {},
                            metrics=metrics)


class TestDirection:
    @pytest.mark.parametrize("name,expected", [
        ("results.acquire_latency_mean", "lower"),
        ("results.elapsed", "lower"),
        ("metrics.counters.net.messages_sent", "lower"),
        ("profile.lcu@0x1000.queue_wait.mean", "lower"),
        ("results.total_cs", "higher"),
        ("results.fairness", "higher"),
        ("metrics.counters.stm.commits", "higher"),
        ("results.write_pct", None),
        ("results.threads", None),
    ])
    def test_substring_heuristics(self, name, expected):
        assert direction_of(name) == expected

    def test_higher_wins_ties(self):
        # throughput-like even though it mentions "cycles"
        assert direction_of("bench.total_cs_cycles") == "higher"


class TestVerdicts:
    def test_self_diff_all_unchanged(self):
        r = report(results={"elapsed": 100, "total_cs": 50},
                   counters={"net.messages_sent": 7})
        d = diff_run_reports(r, r)
        assert not d.has_regressions()
        assert all(e.verdict == "unchanged" for e in d.entries)

    def test_latency_increase_is_regression(self):
        old = report(results={"acquire_latency_mean": 100.0})
        new = report(results={"acquire_latency_mean": 150.0})
        d = diff_run_reports(old, new, threshold=0.2)
        (e,) = d.regressions
        assert e.key == "results.acquire_latency_mean"
        assert e.ratio == pytest.approx(0.5)

    def test_latency_decrease_is_improvement(self):
        old = report(results={"acquire_latency_mean": 100.0})
        new = report(results={"acquire_latency_mean": 60.0})
        d = diff_run_reports(old, new, threshold=0.2)
        assert not d.has_regressions()
        assert [e.key for e in d.improvements] == [
            "results.acquire_latency_mean"
        ]

    def test_throughput_drop_is_regression(self):
        old = report(results={"total_cs": 100})
        new = report(results={"total_cs": 60})
        d = diff_run_reports(old, new, threshold=0.2)
        assert [e.key for e in d.regressions] == ["results.total_cs"]

    def test_unknown_direction_never_gates(self):
        old = report(results={"write_pct": 100})
        new = report(results={"write_pct": 50})
        d = diff_run_reports(old, new, threshold=0.1)
        (e,) = [x for x in d.entries if x.key == "results.write_pct"]
        assert e.verdict == "changed"
        assert not d.has_regressions()

    def test_within_threshold_unchanged(self):
        old = report(results={"elapsed": 100.0})
        new = report(results={"elapsed": 105.0})
        d = diff_run_reports(old, new, threshold=0.10)
        assert all(e.verdict == "unchanged" for e in d.entries)

    def test_zero_baseline_always_exceeds(self):
        old = report(counters={"net.nacks": 0})
        new = report(counters={"net.nacks": 3})
        d = diff_run_reports(old, new, threshold=10.0)
        (e,) = d.regressions
        assert e.key == "metrics.counters.net.nacks"
        assert e.ratio is None

    def test_added_and_removed(self):
        old = report(counters={"a.gone": 1})
        new = report(counters={"b.fresh": 2})
        d = diff_run_reports(old, new)
        verdicts = {e.key: e.verdict for e in d.entries}
        assert verdicts["metrics.counters.a.gone"] == "removed"
        assert verdicts["metrics.counters.b.fresh"] == "added"
        assert not d.has_regressions()

    def test_negative_threshold_rejected(self):
        r = report()
        with pytest.raises(ValueError):
            diff_run_reports(r, r, threshold=-0.1)


class TestComparableExtraction:
    def test_histogram_mean_and_p95(self):
        h = {"count": 3, "mean": 10.0, "min": 1, "max": 20,
             "bucket_width": 8, "percentiles": {"p50": 9.0, "p95": 18.0}}
        old = report(histograms={"bench.acquire_latency": h})
        h2 = dict(h, mean=20.0, percentiles={"p50": 9.0, "p95": 40.0})
        new = report(histograms={"bench.acquire_latency": h2})
        d = diff_run_reports(old, new, threshold=0.1)
        keys = {e.key for e in d.regressions}
        assert "metrics.histograms.bench.acquire_latency.mean" in keys
        assert "metrics.histograms.bench.acquire_latency.p95" in keys

    def test_empty_histogram_percentiles_skipped(self):
        h = {"count": 0, "mean": 0.0, "min": None, "max": None,
             "bucket_width": 8, "percentiles": {}}
        d = diff_run_reports(report(histograms={"h": h}),
                             report(histograms={"h": h}))
        assert all("p95" not in e.key for e in d.entries)

    def test_profile_phase_means_compared(self):
        from repro.harness.microbench import run_microbench
        from repro.obs.profile import ContentionProfiler
        from repro.params import small_test_model

        def profiled(cs):
            p = ContentionProfiler()
            run_microbench(small_test_model(), "lcu", 4,
                           iters_per_thread=10, cs_cycles=cs, seed=1,
                           profiler=p)
            return build_run_report("microbench", {"cs_cycles": cs}, {},
                                    profile=p.to_dict())

        d = diff_run_reports(profiled(40), profiled(120), threshold=0.2)
        assert any(e.key.startswith("profile.") and "queue_wait" in e.key
                   for e in d.regressions)
        assert ("cs_cycles", 40, 120) in d.config_mismatches

    def test_bools_not_compared(self):
        old = report(results={"ok": True})
        new = report(results={"ok": False})
        d = diff_run_reports(old, new)
        assert all(e.key != "results.ok" for e in d.entries)


class TestOutputs:
    def test_config_mismatch_listed(self):
        d = diff_run_reports(report(config={"lock": "lcu", "threads": 8}),
                             report(config={"lock": "mcs", "threads": 8}))
        assert d.config_mismatches == [("lock", "lcu", "mcs")]
        assert "lock: 'lcu' -> 'mcs'" in d.summarize()

    def test_to_dict_counts(self):
        old = report(results={"elapsed": 100.0, "total_cs": 10})
        new = report(results={"elapsed": 200.0, "total_cs": 10})
        dd = diff_run_reports(old, new).to_dict()
        assert dd["schema"] == "repro.run-report-diff"
        assert dd["counts"]["regression"] == 1
        assert dd["counts"]["unchanged"] == 1
        assert len(dd["entries"]) == 2

    def test_summarize_orders_by_severity(self):
        old = report(results={"elapsed": 100.0, "acquire_lat": 10.0})
        new = report(results={"elapsed": 120.0, "acquire_lat": 100.0})
        text = diff_run_reports(old, new).summarize(top=5)
        lines = [l for l in text.split("\n") if "results." in l]
        # the 10x latency blowup sorts above the 1.2x elapsed one
        assert "acquire_lat" in lines[0]

    def test_empty_reports(self):
        d = diff_run_reports(report(), report())
        assert d.entries == []
        assert "nothing comparable" in d.summarize()
