"""Protocol conformance: the message sequences of the paper's figures.

Each test drives one canonical scenario and asserts the wire sequence
matches the paper's description (Figures 4-7), using the tracer.  These
are the tightest pins on the protocol — refactorings that change message
counts or ordering on these paths should fail here first.
"""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.lcu import messages as pm
from repro.sim.trace import Tracer


@pytest.fixture
def m():
    return Machine(small_test_model())


def seq_of(tracer, addr, *types):
    return [
        type(r.payload).__name__
        for r in tracer.records
        if getattr(r.payload, "addr", None) == addr
        and (not types or isinstance(r.payload, types))
    ]


class TestFigure4a:
    def test_free_lock_request(self, m):
        """Free lock: REQUEST -> GRANT(head, from LRT), nothing else."""
        addr = m.alloc.alloc_line()
        tracer = Tracer.attach(m)
        os_ = OS(m)

        def prog(thread):
            yield from api.lock(addr, True)

        os_.spawn(prog)
        os_.run_all()
        assert seq_of(tracer, addr) == ["Request", "Grant"]
        grant = tracer.of_type(pm.Grant)[0].payload
        assert grant.head and grant.from_lrt


class TestFigure4b:
    def test_uncontended_owner_reallocation(self, m):
        """Taken-uncontended lock: the request is forwarded to the owner,
        which re-allocates its entry and answers WAIT."""
        addr = m.alloc.alloc_line()
        os_ = OS(m)
        tracer = Tracer.attach(m)

        def owner(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(4_000)
            yield from api.unlock(addr, True)

        def requester(thread):
            yield ops.Compute(500)
            yield from api.lock(addr, True)
            yield from api.unlock(addr, True)

        os_.spawn(owner)
        os_.spawn(requester)
        os_.run_all()
        m.drain()
        names = seq_of(tracer, addr)
        # request phase for the second thread:
        i = names.index("Request", 1)
        assert names[i:i + 3] == ["Request", "FwdRequest", "WaitMsg"]


class TestFigure5:
    def test_direct_transfer_and_notification(self, m):
        """Handoff: GRANT goes LCU->LCU; the receiver notifies the LRT
        (HeadNotify) and the LRT deallocates the old head (Dealloc) —
        notification strictly off the grant's critical path."""
        addr = m.alloc.alloc_line()
        os_ = OS(m)
        tracer = Tracer.attach(m)
        t_acquired = []

        def owner(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(3_000)
            yield from api.unlock(addr, True)

        def requester(thread):
            yield ops.Compute(300)
            yield from api.lock(addr, True)
            t_acquired.append(m.sim.now)
            yield from api.unlock(addr, True)

        os_.spawn(owner)
        os_.spawn(requester)
        os_.run_all()
        m.drain()

        transfer = [
            r for r in tracer.of_type(pm.Grant)
            if r.payload.addr == addr and not r.payload.from_lrt
        ]
        assert len(transfer) == 1
        src, dst = transfer[0].src, transfer[0].dst
        assert src[0] == "core" and dst[0] == "core", "transfer not direct"

        notifies = [r for r in tracer.of_type(pm.HeadNotify)
                    if r.payload.addr == addr]
        deallocs = [r for r in tracer.of_type(pm.Dealloc)
                    if r.payload.addr == addr]
        assert len(notifies) == 1 and len(deallocs) == 1
        # the receiver acquired before (or independent of) the LRT's
        # dealloc round trip — the notification is off the critical path
        assert t_acquired[0] <= deallocs[0].time


class TestFigure6:
    def test_reader_run_and_token(self, m):
        """Concurrent readers: later readers get share grants; exactly
        one head token travels the chain when the head releases."""
        addr = m.alloc.alloc_line()
        os_ = OS(m)
        tracer = Tracer.attach(m)

        def reader_factory(delay, hold):
            def reader(thread):
                yield ops.Compute(delay)
                yield from api.lock(addr, False)
                yield ops.Compute(hold)
                yield from api.unlock(addr, False)
            return reader

        os_.spawn(reader_factory(1, 4_000))     # head, holds long
        os_.spawn(reader_factory(300, 200))      # releases early: RD_REL
        os_.spawn(reader_factory(600, 200))      # releases early: RD_REL
        os_.run_all()
        m.drain()

        grants = [r.payload for r in tracer.of_type(pm.Grant)
                  if r.payload.addr == addr]
        shares = [g for g in grants if not g.head]
        heads = [g for g in grants if g.head and not g.from_lrt]
        assert len(shares) >= 2, "later readers must get share grants"
        # the head's release bypasses the two RD_REL nodes: token hops
        assert 1 <= len(heads) <= 3
        # no RETRY / no starvation artifacts
        assert not tracer.of_type(pm.Retry)


class TestFigure7:
    def test_timeout_forwards_past_absent_thread(self, m):
        """A grant landing on an entry whose thread vanished is forwarded
        to the next node after the grant timeout."""
        addr = m.alloc.alloc_line()
        os_ = OS(m)
        tracer = Tracer.attach(m)
        got = []

        # tid 77 requests via LCU0 and never collects (absent thread)
        m.lcus[0].instr_acquire(77, addr, True)

        def live_thread(thread):
            yield ops.Compute(100)
            yield from api.lock(addr, True)
            got.append(m.sim.now)
            yield from api.unlock(addr, True)

        os_.spawn(live_thread)
        os_.run_all()
        m.drain()
        assert got and got[0] >= m.config.lcu_grant_timeout
        # two head grants for one acquisition: LRT->absent, absent->live
        heads = [r.payload for r in tracer.of_type(pm.Grant)
                 if r.payload.addr == addr and r.payload.head]
        assert len(heads) == 2
        assert m.lcus[0].stats["timeouts"] == 1
