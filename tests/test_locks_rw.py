"""Reader-writer semantics tests for the RW-capable algorithms."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.locks import all_algorithms, get_algorithm
from tests.conftest import RWTracker, cs_program

RW_LOCKS = [n for n, c in all_algorithms().items() if c.rw_support]


def build(lock_name):
    m = Machine(small_test_model())
    algo = get_algorithm(lock_name)(m)
    return m, algo


@pytest.mark.parametrize("lock_name", RW_LOCKS)
class TestReaderWriter:
    def test_rw_exclusion_mixed(self, lock_name):
        m, algo = build(lock_name)
        os_ = OS(m)
        tracker = RWTracker()
        h = algo.make_lock()
        # threads alternate modes deterministically, staggered by tid
        write_of = lambda thread, i: (i + thread.tid) % 3 == 0  # noqa: E731
        for _ in range(4):
            os_.spawn(cs_program(algo, h, tracker, iters=20, write_of=write_of))
        os_.run_all(max_cycles=500_000_000)
        tracker.assert_clean()
        assert tracker.total == 80

    def test_readers_overlap(self, lock_name):
        """Pure readers with long critical sections must run concurrently."""
        m, algo = build(lock_name)
        os_ = OS(m)
        tracker = RWTracker()
        h = algo.make_lock()
        for _ in range(4):
            os_.spawn(
                cs_program(
                    algo, h, tracker, iters=8,
                    write_of=lambda t, i: False, cs_cycles=800,
                )
            )
        os_.run_all(max_cycles=500_000_000)
        tracker.assert_clean()
        assert tracker.max_readers >= 2, (
            f"{lock_name}: readers never overlapped"
        )

    def test_readers_faster_than_writers(self, lock_name):
        """Total time for N all-reader CSs should beat N all-writer CSs."""
        def run(write):
            m, algo = build(lock_name)
            os_ = OS(m)
            tracker = RWTracker()
            h = algo.make_lock()
            for _ in range(4):
                os_.spawn(
                    cs_program(
                        algo, h, tracker, iters=10,
                        write_of=lambda t, i: write, cs_cycles=500,
                    )
                )
            end = os_.run_all(max_cycles=500_000_000)
            tracker.assert_clean()
            return end

        assert run(False) < run(True)

    def test_oversubscribed_rw(self, lock_name):
        m, algo = build(lock_name)
        os_ = OS(m, quantum=2_500)
        tracker = RWTracker()
        h = algo.make_lock()
        write_of = lambda thread, i: i % 4 == 0  # noqa: E731
        for _ in range(9):
            os_.spawn(cs_program(algo, h, tracker, iters=8, write_of=write_of))
        os_.run_all(max_cycles=500_000_000)
        tracker.assert_clean()
        assert tracker.total == 72


class TestWriterProgressLcu:
    def test_lcu_writer_not_starved_by_reader_stream(self):
        """With a continuous stream of readers, an LCU writer still gets
        in (queue fairness) — unlike the SSB's reader preference."""
        m, algo = build("lcu")
        os_ = OS(m)
        h = algo.make_lock()
        writer_done = []
        deadline = 300_000

        def reader(thread):
            while m.sim.now < deadline and not writer_done:
                yield from algo.lock(thread, h, False)
                yield ops.Compute(400)
                yield from algo.unlock(thread, h, False)

        def writer(thread):
            yield ops.Compute(2_000)  # let readers flood first
            yield from algo.lock(thread, h, True)
            writer_done.append(m.sim.now)
            yield from algo.unlock(thread, h, True)

        for _ in range(3):
            os_.spawn(reader)
        os_.spawn(writer)
        os_.run_all(max_cycles=500_000_000)
        assert writer_done and writer_done[0] < deadline
