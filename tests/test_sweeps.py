"""Tests for the sensitivity-sweep helpers."""

import pytest

from repro.harness.sweeps import (
    SweepResult,
    contention_sweep,
    cs_length_sweep,
    sweep_parameter,
)
from repro.params import small_test_model


class TestSweepMechanics:
    def test_sweep_shape(self):
        r = sweep_parameter(
            small_test_model, "cs_cycles", (10, 100), ("lcu", "tas"),
            threads=3, iters_per_thread=10,
        )
        assert r.parameter == "cs_cycles"
        assert r.values == [10, 100]
        assert set(r.series) == {"lcu", "tas"}
        assert all(len(v) == 2 for v in r.series.values())

    def test_threads_parameter_special_cased(self):
        r = sweep_parameter(
            small_test_model, "threads", (2, 4), ("lcu",),
            iters_per_thread=8,
        )
        assert len(r.series["lcu"]) == 2

    def test_ratio_and_crossover(self):
        r = SweepResult("x", [1, 2, 3], {"a": [1.0, 2.0, 3.0],
                                         "b": [2.0, 2.0, 2.0]})
        assert r.ratio("a", "b") == [0.5, 1.0, 1.5]
        assert r.crossover("a", "b") == 1
        assert r.crossover("b", "a") == 0
        r2 = SweepResult("x", [1], {"a": [1.0], "b": [2.0]})
        assert r2.crossover("a", "b") is None


class TestSweepPhysics:
    def test_cs_length_amortizes_lock_choice(self):
        """With very long critical sections, lock choice stops mattering
        (the paper's three-phase argument)."""
        r = cs_length_sweep(
            small_test_model, locks=("lcu", "mcs"),
            values=(10, 2_000), threads=3, iters_per_thread=10,
        )
        short = r.ratio("mcs", "lcu")[0]
        long_ = r.ratio("mcs", "lcu")[-1]
        assert short > long_          # advantage shrinks
        assert long_ == pytest.approx(1.0, rel=0.25)

    def test_contention_collapses_single_line_lock(self):
        r = contention_sweep(
            small_test_model, locks=("lcu", "tas"), values=(2, 4),
            iters_per_thread=15,
        )
        tas = r.series["tas"]
        lcu = r.series["lcu"]
        # TAS degrades with contenders much faster than the LCU
        assert tas[-1] / tas[0] > lcu[-1] / lcu[0] * 0.9
