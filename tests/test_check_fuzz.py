"""The ``repro.check`` fuzzer and its reproducer corpus.

``tests/data/check_repro_*.json`` are minimized fuzz cases capturing the
LCU protocol's historical edge scenarios (FLT mode-switch handover,
grant-timer forwarding, entry-pool exhaustion, overflow readers).  Each
is replayed through the full invariant monitor and must PASS — they are
regression reproducers for bugs already fixed, and tripwires for the
protocol paths they exercise.  The rest of the file covers the fuzzer
machinery itself: determinism, serialization round-trips and shrinking.
"""

import dataclasses
from collections import Counter
from pathlib import Path

import pytest

from repro.check import (
    CheckOutcome,
    FuzzCase,
    InvariantViolation,
    fuzz,
    load_case,
    run_case,
    save_case,
    shrink,
)

pytestmark = pytest.mark.check

DATA = Path(__file__).parent / "data"

# reproducer file -> the LCU/LRT stat its scenario must exercise; a
# corpus case that stops hitting its path is a silent coverage loss.
CORPUS = {
    "check_repro_flt_mode_switch.json": "flt_parks",
    "check_repro_grant_timeout.json": "timeouts",
    "check_repro_entry_exhaustion.json": "alloc_failures",
    "check_repro_overflow_readers.json": "overflow_grants",
}


@pytest.fixture
def machine_spy(monkeypatch):
    """Capture every Machine a replay builds so tests can inspect the
    hardware stats afterwards."""
    import repro.cpu.machine as mach

    captured = []
    orig = mach.Machine.__init__

    def spy(self, *args, **kwargs):
        orig(self, *args, **kwargs)
        captured.append(self)

    monkeypatch.setattr(mach.Machine, "__init__", spy)
    return captured


def hw_stats(machine):
    agg = Counter()
    for lcu in machine.lcus:
        agg.update(lcu.stats)
    for lrt in machine.lrts:
        agg.update(lrt.stats)
    return agg


@pytest.mark.parametrize("fname", sorted(CORPUS))
def test_corpus_replays_clean(fname, machine_spy):
    case = load_case(DATA / fname)
    outcome = run_case(case)
    assert outcome.ok, outcome.summary()
    assert outcome.total_cs == case.threads * case.iters
    stat = CORPUS[fname]
    assert hw_stats(machine_spy[-1])[stat] > 0, (
        f"{fname} no longer exercises '{stat}' — the reproducer has "
        f"drifted away from the scenario it was minimized for"
    )


def test_corpus_notes_explain_the_scenario():
    for fname in CORPUS:
        case = load_case(DATA / fname)
        assert len(case.note) > 40, f"{fname} lacks a human-readable note"


def test_replay_is_deterministic():
    case = load_case(DATA / "check_repro_grant_timeout.json")
    a, b = run_case(case), run_case(case)
    assert (a.elapsed, a.total_cs, a.monitor_stats) == (
        b.elapsed, b.total_cs, b.monitor_stats,
    )


def test_save_load_round_trip(tmp_path):
    case = FuzzCase(
        algo="lcu", model="B", seed=123, threads=5, locks=2, iters=7,
        write_pct=30, trylock_pct=20, cores=4, timeslice=800,
        lcu_entries=2, grant_timeout=200, flt_entries=4,
        tiebreak_seed=99, note="round trip",
    )
    path = tmp_path / "case.json"
    doc = save_case(case, path)
    assert doc["format"] == 4
    assert load_case(path) == case


def test_save_failing_outcome_embeds_violation(tmp_path):
    case = FuzzCase(algo="lcu", seed=1)
    violation = InvariantViolation(
        "rw_exclusion", "two writers", time=17,
        details={"handle": 3}, events=["w1 acquire", "w2 acquire"],
    )
    outcome = CheckOutcome(case=case, ok=False, violation=violation)
    path = tmp_path / "repro.json"
    doc = save_case(outcome, path, note="minimized from: something bigger")
    assert doc["violation"]["invariant"] == "rw_exclusion"
    assert doc["violation"]["time"] == 17
    # the embedded violation is documentation: loading ignores it and the
    # note survives, so the reproducer stays self-describing
    loaded = load_case(path)
    assert loaded == dataclasses.replace(
        case, note="minimized from: something bigger"
    )


def test_load_rejects_unknown_fields(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"algo": "lcu", "warp_factor": 9}')
    with pytest.raises(ValueError, match="warp_factor"):
        load_case(path)


def test_fuzz_is_deterministic():
    a = fuzz("ticket", model="T", runs=4, seed=7)
    b = fuzz("ticket", model="T", runs=4, seed=7)
    assert [o.case for o in a] == [o.case for o in b]
    assert [(o.ok, o.elapsed, o.total_cs) for o in a] == [
        (o.ok, o.elapsed, o.total_cs) for o in b
    ]


def test_fuzz_explores_distinct_cases():
    outcomes = fuzz("mcs", model="T", runs=6, seed=11)
    assert all(o.ok for o in outcomes), next(
        o.summary() for o in outcomes if not o.ok
    )
    assert len({o.case.describe() for o in outcomes}) > 1


def test_shrink_refuses_passing_case():
    case = FuzzCase(algo="tas", model="T", seed=2, threads=2, iters=2)
    with pytest.raises(ValueError, match="passing"):
        shrink(case)


def test_shrink_minimizes_an_injected_failure(monkeypatch):
    """End-to-end minimization: break the hardware, fuzz until it shows,
    shrink, and check the reproducer that comes out is both smaller and
    still failing — the exact workflow ``check --minimize`` automates."""
    from repro.lcu.lrt import LockReservationTable

    orig = LockReservationTable._on_request

    def drop_every_fifth(self, m):
        self._drops = getattr(self, "_drops", 0) + 1
        if self._drops % 5 == 0:
            self.stats["requests"] += 1
            return  # swallow the request: the waiter never gets an answer
        return orig(self, m)

    monkeypatch.setattr(LockReservationTable, "_on_request", drop_every_fifth)
    case = FuzzCase(
        algo="lcu", model="T", seed=6, threads=6, iters=6, write_pct=60,
    )
    outcome = run_case(case)
    assert not outcome.ok
    assert outcome.violation.invariant in ("no_lost_wakeup", "quiescence")

    small = shrink(outcome.case)
    assert not small.ok
    assert small.case.threads <= case.threads
    assert small.case.iters <= case.iters
    assert small.case.describe() != case.describe() or small.case == case
