"""Defensive protocol paths: illegal messages must be loud, benign
stragglers must be ignored.  These tests inject raw messages into the
LCU/LRT state machines."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.lcu import messages as pm
from repro.lcu.lcu import ProtocolError
from repro.lcu.messages import Who


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestLcuDefensive:
    def test_grant_for_missing_entry_is_loud(self, m):
        addr = m.alloc.alloc_line()
        with pytest.raises(ProtocolError):
            m.lcus[0].on_message(
                ("lrt", 0), pm.Grant(addr, tid=9, head=True, gen=1)
            )

    def test_unknown_message_is_loud(self, m):
        with pytest.raises(ProtocolError):
            m.lcus[0].on_message(("core", 1), object())

    def test_share_grant_to_writer_is_loud(self, m):
        addr = m.alloc.alloc_line()
        lcu = m.lcus[0]
        lcu.instr_acquire(1, addr, write=True)   # ISSUED writer entry
        with pytest.raises(ProtocolError):
            lcu.on_message(
                ("core", 1), pm.Grant(addr, tid=1, head=False, gen=1)
            )

    def test_stray_wait_msg_ignored(self, m):
        addr = m.alloc.alloc_line()
        # no entry at all: WaitMsg must be a no-op
        m.lcus[0].on_message(("core", 1), pm.WaitMsg(addr, tid=5))
        assert m.lcus[0].entries_in_use == 0

    def test_stray_release_ack_ignored(self, m):
        addr = m.alloc.alloc_line()
        m.lcus[0].on_message(("lrt", 0), pm.ReleaseAck(addr, tid=5))
        assert m.lcus[0].entries_in_use == 0

    def test_stray_dealloc_ignored(self, m):
        addr = m.alloc.alloc_line()
        m.lcus[0].on_message(("lrt", 0), pm.Dealloc(addr, tid=5))

    def test_retry_for_non_issued_entry_is_loud(self, m):
        addr = m.alloc.alloc_line()
        lcu = m.lcus[0]
        lcu.instr_acquire(1, addr, True)
        m.sim.run(until=m.sim.now + 5_000,
                  stop_when=lambda: lcu.poll_ready(1, addr))
        # entry is now RCV; a RETRY for it is a protocol violation
        with pytest.raises(ProtocolError):
            lcu.on_message(("lrt", 0), pm.Retry(addr, tid=1))


class TestLrtDefensive:
    def test_release_of_unknown_lock_is_loud(self, m):
        addr = m.alloc.alloc_line()
        lrt = m.lrts[m.mem.home_of(addr)]
        with pytest.raises(ProtocolError):
            lrt._process(
                pm.ReleaseMsg(addr, Who(1, 0, True), overflow=False)
            )

    def test_overflow_release_underflow_is_loud(self, m):
        addr = m.alloc.alloc_line()
        lrt = m.lrts[m.mem.home_of(addr)]
        # create an entry via a normal request first
        lrt._process(pm.Request(addr, Who(1, 0, True)))
        with pytest.raises(ProtocolError):
            lrt._process(
                pm.ReleaseMsg(addr, Who(2, 1, False), overflow=True)
            )

    def test_head_notify_for_unknown_lock_is_loud(self, m):
        addr = m.alloc.alloc_line()
        lrt = m.lrts[m.mem.home_of(addr)]
        with pytest.raises(ProtocolError):
            lrt._process(pm.HeadNotify(addr, Who(1, 0, True), gen=5))

    def test_ovf_check_for_unknown_lock_clears(self, m):
        """An OvfCheck racing a full release must clear the writer, not
        wedge it."""
        addr = m.alloc.alloc_line()
        lrt = m.lrts[m.mem.home_of(addr)]
        cleared = []
        orig = m.net.send

        def send(src, dst, payload, on_deliver=None):
            if isinstance(payload, pm.OvfClear):
                cleared.append(payload)
            return orig(src, dst, payload, on_deliver)

        m.net.send = send
        lrt._process(pm.OvfCheck(addr, tid=3, lcu=1))
        assert cleared


class TestRemoteReleaseRecovery:
    def test_walk_failure_eventually_resolves_or_raises(self, m):
        """A remote release for a thread that never held the lock drives
        the retry machinery to its cap and then raises (loud, as a
        program error should be)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def holder(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(50_000)
            yield from api.unlock(addr, True)

        os_.spawn(holder)
        m.sim.run(until=2_000)
        # bogus remote release: tid 99 never requested this lock
        assert m.lcus[3].instr_release(99, addr, True)
        with pytest.raises(ProtocolError):
            m.sim.run(until=m.sim.now + 100_000)
