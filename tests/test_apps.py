"""Tests for the application workload kernels."""

import pytest

from repro.apps import all_apps, run_app
from repro.apps.base import AppResult
from repro.params import small_test_model

FAST = dict(seeds=[1], max_cycles=5_000_000_000)


class TestRegistry:
    def test_all_three_apps_registered(self):
        assert set(all_apps()) == {"fluidanimate", "cholesky", "radiosity"}

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            run_app(small_test_model(), "nope", "lcu")


@pytest.mark.parametrize("app", ["fluidanimate", "cholesky", "radiosity"])
@pytest.mark.parametrize("lock", ["pthread", "lcu", "ssb"])
class TestAppsComplete:
    def test_runs_to_completion(self, app, lock):
        r = run_app(small_test_model(), app, lock, threads=4, **FAST)
        assert isinstance(r, AppResult)
        assert r.elapsed_mean > 0
        assert r.runs == 1


class TestDeterminism:
    def test_same_seed_same_result(self):
        r1 = run_app(small_test_model(), "radiosity", "lcu", threads=4,
                     seeds=[7])
        r2 = run_app(small_test_model(), "radiosity", "lcu", threads=4,
                     seeds=[7])
        assert r1.elapsed_mean == r2.elapsed_mean

    def test_different_seeds_vary(self):
        r = run_app(small_test_model(), "cholesky", "lcu", threads=4,
                    seeds=[1, 2, 3])
        assert r.runs == 3
        assert r.elapsed_ci95 >= 0


class TestWorkConservation:
    def test_cholesky_consumes_all_tasks(self):
        """Every seeded task (plus spawned follow-ups) is executed exactly
        once: the queue ends at zero."""
        from repro import Machine, OS
        from repro.apps.cholesky import Cholesky
        from repro.locks import get_algorithm

        m = Machine(small_test_model())
        algo = get_algorithm("lcu")(m)
        app = Cholesky(m, algo, threads=4, seed=1)
        os_ = OS(m)
        for i in range(4):
            os_.spawn(lambda t, i=i: app.worker(t, i))
        os_.run_all(max_cycles=10_000_000_000)
        assert m.mem.peek(app.queue_len) == 0

    def test_fluidanimate_updates_every_cell(self):
        from repro import Machine, OS
        from repro.apps.fluidanimate import Fluidanimate
        from repro.locks import get_algorithm

        m = Machine(small_test_model())
        algo = get_algorithm("lcu")(m)
        app = Fluidanimate(m, algo, threads=4, seed=1)
        os_ = OS(m)
        for i in range(4):
            os_.spawn(lambda t, i=i: app.worker(t, i))
        os_.run_all(max_cycles=10_000_000_000)
        updated = sum(
            1 for v in app.cell_values if m.mem.peek(v) > 0
        )
        assert updated > len(app.cell_values) * 0.2
