"""Pressure paths: FLT eviction storms, forced entry-capacity clamps,
forced queue-node eviction + reclaim, and preemption/stall bursts.

These are the *existing* protocol paths the nemesis leans on — each test
drives one of them directly (no fault plan) so a matrix failure can be
localised to the mechanism rather than the injector."""

import pytest

from repro import OS, Machine, small_test_model
from repro.cpu import ops
from repro.lcu import api
from tests.conftest import RWTracker, drain_and_check


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestFltPressure:
    def test_force_flt_evict_flushes_park_as_release(self):
        m = Machine(small_test_model(flt_entries=4))
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def prog(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(50)
            yield from api.unlock(addr, True)

        os_.spawn(prog)
        os_.run_all()
        lcu = m.lcus[0]
        assert addr in lcu._flt, "uncontended unlock parks in the FLT"
        assert lcu.force_flt_evict() is True
        assert addr not in lcu._flt
        drain_and_check(m)
        assert lcu.stats["flt_forced_evictions"] == 1

    def test_force_flt_evict_empty_returns_false(self, m):
        assert m.lcus[0].force_flt_evict() is False
        assert m.lcus[0].force_flt_evict(0x1234) is False

    def test_reacquire_after_flt_evict_goes_remote(self):
        """After the park is flushed the next acquire is a fresh LRT
        request, not a biased FLT hit — and still correct."""
        m = Machine(small_test_model(flt_entries=4))
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()

        def prog(thread):
            yield from api.lock(addr, True)
            tracker.enter(True)
            yield ops.Compute(50)
            tracker.exit(True)
            yield from api.unlock(addr, True)
            # park is flushed from under the thread here (run_all drains
            # before our second spawn below)

        os_.spawn(prog)
        os_.run_all()
        m.lcus[0].force_flt_evict(addr)
        m.drain(5_000)
        hits_before = m.lcus[0].stats.get("flt_hits", 0)

        def again(thread):
            yield from api.lock(addr, True)
            tracker.enter(True)
            yield ops.Compute(50)
            tracker.exit(True)
            yield from api.unlock(addr, True)

        os_.spawn(again)
        os_.run_all()
        assert m.lcus[0].stats.get("flt_hits", 0) == hits_before
        drain_and_check(m)


class TestCapacityClamp:
    def test_zero_capacity_exhausts_after_escape_entry(self, m):
        """Clamping to zero leaves only the LOCAL escape-hatch entry;
        the second concurrent request on the same LCU must fail and be
        counted."""
        lcu = m.lcus[0]
        lcu.set_forced_capacity(0)
        assert lcu._alloc(0x100, 0, True) is not None, "escape entry"
        assert lcu._alloc(0x140, 1, True) is None
        assert lcu.stats["alloc_failures"] == 1

    def test_zero_capacity_clamp_lifts_and_recovers(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        done = []

        for lcu in m.lcus:
            lcu.set_forced_capacity(0)
        # lift the clamp mid-run; every pending acquire then succeeds
        m.sim.at(3_000, lambda: [
            lcu.set_forced_capacity(None) for lcu in m.lcus
        ])

        def prog_factory(i):
            def prog(thread):
                yield from api.lock(addr, True)
                tracker.enter(True)
                yield ops.Compute(30)
                tracker.exit(True)
                yield from api.unlock(addr, True)
                done.append(i)
            return prog

        for i in range(3):
            os_.spawn(prog_factory(i))
        os_.run_all()
        assert sorted(done) == [0, 1, 2]
        drain_and_check(m)

    def test_clamp_restores_configured_limit(self, m):
        lcu = m.lcus[0]
        lcu.set_forced_capacity(1)
        assert lcu._forced_capacity == 1
        lcu.set_forced_capacity(None)
        assert lcu._forced_capacity is None


class TestForcedEviction:
    def test_evict_requires_waiting_ordinary_node(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def holder(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(4_000)
            yield from api.unlock(addr, True)

        os_.spawn(holder)
        m.sim.run(until=1_000)
        # the holder's entry was freed on the uncontended grant: nothing
        # is evictable, and unknown keys are refused
        assert m.lcus[0].evictable_entries() == []
        assert m.lcus[0].force_evict(addr, 0) is False
        os_.run_all()
        drain_and_check(m)

    def test_evicted_waiter_recovers_via_reclaim(self, m):
        """Evict a waiting queue node mid-contention: the hardened
        protocol must reclaim the orphaned queue and still run every
        critical section exactly once."""
        m.harden(watchdog_interval=2_000, silence_threshold=4_000)
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        done = []

        def prog_factory(i):
            def prog(thread):
                yield from api.lock(addr, True)
                tracker.enter(True)
                yield ops.Compute(600)
                tracker.exit(True)
                yield from api.unlock(addr, True)
                done.append(i)
            return prog

        for i in range(4):
            os_.spawn(prog_factory(i))

        def evict_one():
            for lcu in m.lcus:
                for key in lcu.evictable_entries():
                    lcu.force_evict(*key)
                    return

        m.sim.at(700, evict_one)
        os_.run_all(max_cycles=2_000_000)
        assert sorted(done) == [0, 1, 2, 3]
        evictions = sum(
            lcu.stats.get("forced_evictions", 0) for lcu in m.lcus
        )
        assert evictions == 1, "the eviction must have landed mid-queue"
        reclaims = sum(
            lrt.stats.get("reclaims", 0) for lrt in m.lrts
        )
        assert reclaims >= 1, "recovery must go through queue reclaim"
        m.drain(100_000)
        drain_and_check(m)

    def test_tombstone_blocks_rerequest_until_reset(self, m):
        """Between eviction and the QueueReset the (addr, tid) key must
        not re-enter the queue — the dead node is still linked there."""
        m.harden()
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def holder(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(5_000)
            yield from api.unlock(addr, True)

        def waiter(thread):
            yield ops.Compute(200)
            yield from api.lock(addr, True)
            yield from api.unlock(addr, True)

        os_.spawn(holder)
        os_.spawn(waiter)
        m.sim.run(until=1_500)
        lcu = m.lcus[1]
        [key] = lcu.evictable_entries()
        assert lcu.force_evict(*key)
        assert key in lcu._evicted
        # the spinning waiter keeps retrying acq: all refused while the
        # tombstone stands
        m.sim.run(until=2_500)
        assert lcu.stats.get("tombstoned_acqs", 0) > 0
        assert lcu.entry(key[1], key[0]) is None
        os_.run_all(max_cycles=2_000_000)
        m.drain(100_000)
        assert key not in lcu._evicted, "QueueReset must clear tombstones"
        drain_and_check(m)


class TestSchedulerBursts:
    def _contended_workload(self, m, os_, iters=6):
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        done = []

        def prog_factory(i):
            def prog(thread):
                for _ in range(iters):
                    yield from api.lock(addr, True)
                    tracker.enter(True)
                    yield ops.Compute(40)
                    tracker.exit(True)
                    yield from api.unlock(addr, True)
                    yield ops.Compute(20)
                done.append(i)
            return prog

        for i in range(4):
            os_.spawn(prog_factory(i))
        return done

    def test_preempt_burst_mid_contention(self, m):
        os_ = OS(m)
        done = self._contended_workload(m, os_)
        for at in (500, 1_500, 3_000):
            m.sim.at(at, lambda: os_.force_preempt_all(migrate=False))
        os_.run_all(max_cycles=2_000_000)
        assert sorted(done) == [0, 1, 2, 3]
        assert os_.forced_preemptions > 0
        drain_and_check(m)

    def test_preempt_burst_with_migration(self, m):
        os_ = OS(m)
        done = self._contended_workload(m, os_)
        m.sim.at(800, lambda: os_.force_preempt_all(migrate=True))
        os_.run_all(max_cycles=2_000_000)
        assert sorted(done) == [0, 1, 2, 3]
        drain_and_check(m)

    def test_core_stall_window(self, m):
        os_ = OS(m)
        done = self._contended_workload(m, os_)
        m.sim.at(600, lambda: os_.stall_core(0, 5_000))
        os_.run_all(max_cycles=2_000_000)
        assert sorted(done) == [0, 1, 2, 3]
        assert os_.forced_stalls == 1
        drain_and_check(m)

    def test_stall_window_extension_is_idempotent(self, m):
        os_ = OS(m)
        done = self._contended_workload(m, os_)
        # a shorter overlapping stall must not shrink the active window
        m.sim.at(600, lambda: os_.stall_core(1, 4_000))
        m.sim.at(700, lambda: os_.stall_core(1, 100))
        os_.run_all(max_cycles=2_000_000)
        assert sorted(done) == [0, 1, 2, 3]
        assert os_.forced_stalls == 1, "subsumed window must not count"
        drain_and_check(m)
