"""Edge-case protocol tests driven at the message/ISA level."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.lcu import messages as msg
from repro.lcu.entry import REL, WAIT
from tests.conftest import RWTracker, drain_and_check


@pytest.fixture
def m():
    return Machine(small_test_model())


def run_until(m, cond, limit=100_000):
    m.sim.run(until=m.sim.now + limit, stop_when=cond)
    assert cond(), "condition never became true"


class TestFwdNack:
    def test_full_lcu_nacks_and_lrt_retries(self):
        """An uncontended owner whose LCU is full cannot re-materialise
        its entry; the forward must be retried until room appears."""
        mm = Machine(small_test_model(lcu_ordinary_entries=1))
        os_ = OS(mm)
        hot = mm.alloc.alloc_line()
        other = mm.alloc.alloc_line()
        got = []

        def owner(thread):
            # acquire hot uncontended (entry removed), then stuff the
            # only ordinary entry with a queue node for another lock
            yield from api.lock(hot, True)
            yield ops.LcuAcq(other, True)   # ISSUED entry occupies slot
            yield ops.Compute(4_000)
            yield from api.unlock(hot, True)

        def requester(thread):
            yield ops.Compute(500)
            yield from api.lock(hot, True)  # forces FwdRequest to owner
            got.append(m_now())
            yield from api.unlock(hot, True)

        m_now = lambda: mm.sim.now  # noqa: E731
        os_.spawn(owner)
        os_.spawn(requester)
        os_.run_all(max_cycles=100_000_000)
        assert got
        assert mm.lcus[0].stats["fwd_nacks"] >= 1
        mm.drain()

    def test_nack_preserves_queue_order_eventually(self):
        mm = Machine(small_test_model(lcu_ordinary_entries=1))
        os_ = OS(mm)
        hot = mm.alloc.alloc_line()
        other = mm.alloc.alloc_line()
        tracker = RWTracker()

        def owner(thread):
            yield from api.lock(hot, True)
            yield ops.LcuAcq(other, True)
            tracker.enter(True)
            yield ops.Compute(3_000)
            tracker.exit(True)
            yield from api.unlock(hot, True)

        def requester(thread):
            yield ops.Compute(300)
            yield from api.lock(hot, True)
            tracker.enter(True)
            yield ops.Compute(50)
            tracker.exit(True)
            yield from api.unlock(hot, True)

        os_.spawn(owner)
        os_.spawn(requester)
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert tracker.total == 2


class TestEntrySignals:
    def test_signal_fires_on_grant(self, m):
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        fired = []
        lcu.entry_signal(1, addr).wait(lambda _: fired.append(m.sim.now))
        lcu.instr_acquire(1, addr, True)
        run_until(m, lambda: bool(fired))

    def test_poll_ready_transitions(self, m):
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        assert lcu.poll_ready(1, addr)        # no entry: re-issue useful
        lcu.instr_acquire(1, addr, True)
        assert not lcu.poll_ready(1, addr)    # ISSUED: nothing to do yet
        run_until(m, lambda: lcu.poll_ready(1, addr))  # RCV
        assert lcu.instr_acquire(1, addr, True)


class TestLrtInternals:
    def test_release_retry_carries_generation(self, m):
        """The ReleaseRetry path must leave the REL entry able to grant
        with a generation the LRT will accept."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        order = []

        def a(thread):
            for i in range(3):
                yield from api.lock(addr, True)
                order.append(("a", i))
                yield ops.Compute(10)   # release almost immediately
                yield from api.unlock(addr, True)
                yield ops.Compute(5)

        def b(thread):
            for i in range(3):
                yield ops.Compute(12)
                yield from api.lock(addr, True)
                order.append(("b", i))
                yield from api.unlock(addr, True)

        os_.spawn(a)
        os_.spawn(b)
        os_.run_all(max_cycles=50_000_000)
        assert len(order) == 6
        drain_and_check(m)

    def test_lrt_entry_removed_only_when_fully_free(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        lrt = m.lrts[m.mem.home_of(addr)]
        seen = []

        def r1(thread):
            yield from api.lock(addr, False)
            yield ops.Compute(2_000)
            yield from api.unlock(addr, False)
            yield ops.Compute(2_000)
            seen.append(lrt.entry(addr) is None)

        def r2(thread):
            yield ops.Compute(100)
            yield from api.lock(addr, False)
            yield ops.Compute(500)
            yield from api.unlock(addr, False)

        os_.spawn(r1)
        os_.spawn(r2)
        os_.run_all()
        m.drain()
        assert seen == [True]
        drain_and_check(m)

    def test_writers_waiting_counter_balanced(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def prog(thread):
            for _ in range(6):
                yield from api.lock(addr, True)
                yield ops.Compute(40)
                yield from api.unlock(addr, True)

        for _ in range(4):
            os_.spawn(prog)
        os_.run_all(max_cycles=50_000_000)
        m.drain()
        # all queues drained: no entry should remain at all
        drain_and_check(m)


class TestStaleHeadNotify:
    def test_rapid_consecutive_transfers(self, m):
        """Chains of instant transfers stress out-of-order HeadNotify
        processing (the transfer_cnt/generation machinery)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        count = [0]

        def prog(thread):
            for _ in range(20):
                yield from api.lock(addr, True)
                count[0] += 1          # zero-length critical section
                yield from api.unlock(addr, True)

        for _ in range(4):
            os_.spawn(prog)
        os_.run_all(max_cycles=100_000_000)
        assert count[0] == 80
        drain_and_check(m)

    def test_stale_notify_stat_possible(self, m):
        """With many instant transfers the stale-notify path may trigger;
        either way the final state must be clean (previous test) and the
        stat must be consistent."""
        lrt_stats = sum(l.stats["stale_notifies"] for l in m.lrts)
        assert lrt_stats == 0  # fresh machine


class TestReadWriteAlternation:
    def test_alternating_modes_single_thread(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def prog(thread):
            for i in range(10):
                write = i % 2 == 0
                yield from api.lock(addr, write)
                yield ops.Compute(20)
                yield from api.unlock(addr, write)

        os_.spawn(prog)
        os_.run_all()
        drain_and_check(m)

    def test_mode_switch_under_contention(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()

        def prog_factory(i):
            def prog(thread):
                for k in range(12):
                    write = (i + k) % 2 == 0
                    yield from api.lock(addr, write)
                    tracker.enter(write)
                    yield ops.Compute(35)
                    tracker.exit(write)
                    yield from api.unlock(addr, write)
            return prog

        for i in range(4):
            os_.spawn(prog_factory(i))
        os_.run_all(max_cycles=50_000_000)
        tracker.assert_clean()
        assert tracker.total == 48
        drain_and_check(m)
