"""Tests for the message tracer."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.lcu import messages as lcu_msgs
from repro.obs.spans import SpanTracer
from repro.sim.trace import Tracer


def run_locked_cs(machine, addr):
    os_ = OS(machine)

    def prog(thread):
        yield from api.lock(addr, True)
        yield ops.Compute(20)
        yield from api.unlock(addr, True)

    os_.spawn(prog)
    os_.run_all()
    machine.drain()


class TestTracer:
    def test_records_protocol_messages(self):
        m = Machine(small_test_model())
        addr = m.alloc.alloc_line()
        tracer = Tracer.attach(m)
        run_locked_cs(m, addr)
        kinds = {type(r.payload) for r in tracer.records}
        assert lcu_msgs.Request in kinds
        assert lcu_msgs.Grant in kinds
        assert lcu_msgs.ReleaseMsg in kinds

    def test_addr_filter(self):
        m = Machine(small_test_model())
        a1 = m.alloc.alloc_line()
        a2 = m.alloc.alloc_line()
        tracer = Tracer.attach(m, addr_filter={a1})
        os_ = OS(m)

        def prog(thread):
            for a in (a1, a2):
                yield from api.lock(a, True)
                yield from api.unlock(a, True)

        os_.spawn(prog)
        os_.run_all()
        m.drain()
        addrs = {getattr(r.payload, "addr", None) for r in tracer.records}
        assert addrs == {a1}
        assert tracer.dropped > 0

    def test_type_filter(self):
        m = Machine(small_test_model())
        addr = m.alloc.alloc_line()
        tracer = Tracer.attach(m, type_filter={lcu_msgs.Grant})
        run_locked_cs(m, addr)
        assert tracer.records
        assert all(
            isinstance(r.payload, lcu_msgs.Grant) for r in tracer.records
        )

    def test_detach_restores_send(self):
        m = Machine(small_test_model())
        addr = m.alloc.alloc_line()
        tracer = Tracer.attach(m)
        tracer.detach()
        run_locked_cs(m, addr)
        assert len(tracer) == 0

    def test_capacity_bound(self):
        m = Machine(small_test_model())
        tracer = Tracer.attach(m, capacity=5)
        addr = m.alloc.alloc_line()
        run_locked_cs(m, addr)
        assert len(tracer) <= 5

    def test_render_and_queries(self):
        m = Machine(small_test_model())
        addr = m.alloc.alloc_line()
        tracer = Tracer.attach(m)
        run_locked_cs(m, addr)
        text = tracer.render()
        assert "Request" in text and "->" in text
        grants = tracer.of_type(lcu_msgs.Grant)
        assert grants
        window = tracer.between(0, m.sim.now)
        assert len(window) == len(tracer)
        assert Tracer().render() == "(no trace records)"


class TestSpanFlushOnViolation:
    """Spans open when an invariant violation unwinds the run carry the
    interrupted activity — they must be flushed into the trace (tagged
    ``flushed=True``), not silently dropped."""

    def test_violation_unwind_flushes_open_spans(self, monkeypatch):
        from repro.check import FuzzCase, run_case
        from repro.lcu.lrt import LockReservationTable
        from repro.lcu.lcu import ProtocolError

        orig = LockReservationTable._on_request

        def die_on_fifth(self, m):
            self._hits = getattr(self, "_hits", 0) + 1
            if self._hits == 5:
                # mid-delivery failure: the Request being processed (and
                # anything else in flight) has an open span right now
                raise ProtocolError("injected LRT fault")
            return orig(self, m)

        monkeypatch.setattr(LockReservationTable, "_on_request", die_on_fifth)
        spans = SpanTracer()
        case = FuzzCase(
            algo="lcu", model="T", seed=6, threads=6, iters=6, write_pct=60,
        )
        outcome = run_case(case, span_tracer=spans)
        assert not outcome.ok
        # nothing was left dangling or thrown away...
        assert spans.open_count == 0
        flushed = [s for s in spans.spans if s.args.get("flushed")]
        # ...and the in-flight activity at the instant of the violation
        # survived into the trace, still exportable.
        assert flushed
        assert all(s.end >= s.start for s in flushed)
        spans.check_closed()
        trace = spans.to_chrome_trace()
        assert any(
            ev.get("args", {}).get("flushed")
            for ev in trace["traceEvents"]
            if ev["ph"] == "X"
        )

    def test_passing_run_flushes_nothing(self):
        from repro.check import FuzzCase, run_case

        spans = SpanTracer()
        case = FuzzCase(
            algo="lcu", model="T", seed=4, threads=3, iters=3, write_pct=50,
        )
        outcome = run_case(case, span_tracer=spans)
        assert outcome.ok, outcome.summary()
        assert spans.open_count == 0
        assert not any(s.args.get("flushed") for s in spans.spans)
