"""Machine assembly and cross-unit wiring tests."""

import pytest

from repro import Machine, OS, model_a, model_b, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.lcu.lcu import ProtocolError


class TestAssembly:
    def test_model_a_machine_builds(self):
        m = Machine(model_a())
        assert len(m.lcus) == 32
        assert len(m.lrts) == 32
        assert m.config.cores == 32

    def test_model_b_machine_builds(self):
        m = Machine(model_b())
        assert len(m.lcus) == 32
        assert len(m.lrts) == 8

    def test_endpoints_registered(self):
        m = Machine(small_test_model())
        for i in range(m.config.cores):
            assert m.net.is_registered(("core", i))
        for j in range(m.config.num_lrts):
            assert m.net.is_registered(("dir", j))
            assert m.net.is_registered(("lrt", j))
            assert m.net.is_registered(("ssb", j))

    def test_mc_units_spread_over_chips(self):
        m = Machine(model_b())
        chips = {m._chip_of(("lrt", j)) for j in range(8)}
        assert chips == {0, 1, 2, 3}

    def test_unexpected_payload_is_loud(self):
        m = Machine(small_test_model())
        m.net.send(("core", 0), ("core", 1), "garbage")
        with pytest.raises(ProtocolError):
            m.sim.run()


class TestCrossUnitIntegration:
    def test_lock_home_matches_memory_home(self):
        """The LRT that owns a lock is the one at the address's home
        memory controller."""
        m = Machine(small_test_model())
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        home = m.mem.home_of(addr)
        observed = []

        def prog(thread):
            yield from api.lock(addr, True)
            observed.append(
                [j for j, lrt in enumerate(m.lrts) if lrt.entry(addr)]
            )
            yield from api.unlock(addr, True)

        os_.spawn(prog)
        os_.run_all()
        assert observed == [[home]]

    def test_coherence_and_locks_share_network(self):
        """Memory traffic and lock traffic both count against the same
        message totals (they contend on the same links)."""
        m = Machine(small_test_model())
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        data = m.alloc.alloc_line()

        def prog(thread):
            yield from api.lock(addr, True)
            yield ops.Store(data, 1)
            yield from api.unlock(addr, True)

        before = m.net.messages_sent
        os_.spawn(prog)
        os_.run_all()
        m.drain()  # let the release ack land
        # request+grant (lock), release+ack, plus coherence miss+fill
        assert m.net.messages_sent - before >= 6

    def test_mixed_hardware_in_one_run(self):
        """LCU locks, SSB locks and plain atomics coexist."""
        m = Machine(small_test_model())
        os_ = OS(m)
        lcu_lock = m.alloc.alloc_line()
        ssb_lock = m.alloc.alloc_line()
        counter = m.alloc.alloc_line()

        def prog(thread):
            for _ in range(5):
                yield from api.lock(lcu_lock, True)
                yield ops.Rmw(counter, lambda v: v + 1)
                yield from api.unlock(lcu_lock, True)
                ok = False
                while not ok:
                    ok = yield ops.SsbAcq(ssb_lock, True)
                    if not ok:
                        yield ops.Compute(50)
                yield ops.Rmw(counter, lambda v: v + 1)
                yield ops.SsbRel(ssb_lock, True)

        for _ in range(3):
            os_.spawn(prog)
        os_.run_all(max_cycles=50_000_000)
        assert m.mem.peek(counter) == 30

    def test_drain_is_bounded(self):
        """drain() must not advance the clock to parked far-future
        events (stale slice timers)."""
        m = Machine(small_test_model())
        os_ = OS(m, quantum=10**9)

        def prog(thread):
            yield ops.Compute(10)

        os_.spawn(prog)
        os_.run_all()
        t = m.sim.now
        m.drain()
        assert m.sim.now <= t + 200_000
