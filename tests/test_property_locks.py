"""Property-based protocol tests: random workloads must always satisfy
reader-writer exclusion, completion, and leak-freedom.

These drive the full LCU/LRT protocol (and, more cheaply, the software
locks) through randomized schedules — thread counts above core counts,
random lock sets, random read/write mixes, trylocks, tiny grant timeouts —
and assert the invariants that define a correct fair RW lock.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, OS, small_test_model
from repro.check.invariants import InvariantMonitor
from repro.cpu import ops
from repro.lcu import api
from repro.locks import get_algorithm
from tests.conftest import RWTracker, drain_and_check

_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def workload(draw):
    return dict(
        seed=draw(st.integers(0, 2**16)),
        nthreads=draw(st.integers(2, 10)),
        nlocks=draw(st.integers(1, 4)),
        iters=draw(st.integers(3, 12)),
        write_ratio=draw(st.sampled_from([0.0, 0.25, 0.5, 1.0])),
        quantum=draw(st.sampled_from([1_500, 4_000, 10**9])),
        grant_timeout=draw(st.sampled_from([200, 500, 2_000])),
        use_trylock=draw(st.booleans()),
    )


def run_lcu_workload(p):
    cfg = small_test_model(lcu_grant_timeout=p["grant_timeout"])
    m = Machine(cfg)
    os_ = OS(m, quantum=p["quantum"])
    locks = [m.alloc.alloc_line() for _ in range(p["nlocks"])]
    trackers = {a: RWTracker() for a in locks}
    completed = [0]
    # continuous structural auditing (queue shape, head token, orphans)
    # while the randomized schedule runs — the production monitor, not a
    # test-only reimplementation
    monitor = InvariantMonitor(m).attach()

    def factory(i):
        def prog(thread):
            rng = random.Random(p["seed"] * 31 + i)
            for _ in range(p["iters"]):
                a = rng.choice(locks)
                write = rng.random() < p["write_ratio"]
                if p["use_trylock"] and rng.random() < 0.3:
                    ok = yield from api.trylock(a, write,
                                                retries=rng.randint(1, 5))
                    if not ok:
                        yield ops.Compute(rng.randint(1, 40))
                        continue
                else:
                    yield from api.lock(a, write)
                trackers[a].enter(write)
                yield ops.Compute(rng.randint(1, 100))
                trackers[a].exit(write)
                yield from api.unlock(a, write)
            completed[0] += 1
        return prog

    for i in range(p["nthreads"]):
        os_.spawn(factory(i))
    os_.run_all(max_cycles=1_000_000_000)
    monitor.detach()
    return m, trackers, completed[0]


class TestLcuProperties:
    @settings(**_SETTINGS)
    @given(workload())
    def test_rw_exclusion_and_completion(self, p):
        m, trackers, completed = run_lcu_workload(p)
        for t in trackers.values():
            t.assert_clean()
        assert completed == p["nthreads"]

    @settings(**_SETTINGS)
    @given(workload())
    def test_no_leaked_hardware_state(self, p):
        m, _trackers, _ = run_lcu_workload(p)
        drain_and_check(m)

    @settings(**_SETTINGS)
    @given(workload())
    def test_cs_counts_conserved(self, p):
        """Total CS entries equals total exits equals per-lock sums."""
        m, trackers, _ = run_lcu_workload(p)
        for t in trackers.values():
            assert t.readers == 0 and t.writers == 0


class TestSoftwareLockProperties:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 2**16),
        nthreads=st.integers(2, 8),
        name=st.sampled_from(["tas", "tatas", "ticket", "mcs", "pthread"]),
        quantum=st.sampled_from([2_000, 10**9]),
    )
    def test_mutex_invariants(self, seed, nthreads, name, quantum):
        # exclusion is checked by the production monitor observing the
        # lock through the base-class acquire/release wrappers
        m = Machine(small_test_model())
        os_ = OS(m, quantum=quantum)
        algo = get_algorithm(name)(m)
        h = algo.make_lock()
        monitor = InvariantMonitor(m, algo).attach()

        def factory(i):
            def prog(thread):
                rng = random.Random(seed * 13 + i)
                for _ in range(6):
                    yield from algo.acquire(thread, h, True)
                    yield ops.Compute(rng.randint(1, 80))
                    yield from algo.release(thread, h, True)
            return prog

        for i in range(nthreads):
            os_.spawn(factory(i))
        os_.run_all(max_cycles=1_000_000_000)
        monitor.finish()
        monitor.detach()
        tracker = monitor.trackers[h]
        tracker.assert_clean()
        assert tracker.total == nthreads * 6

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 2**16),
        nthreads=st.integers(2, 8),
        name=st.sampled_from(["mrsw", "ssb"]),
        write_ratio=st.sampled_from([0.2, 0.6]),
    )
    def test_rw_invariants(self, seed, nthreads, name, write_ratio):
        m = Machine(small_test_model())
        os_ = OS(m)
        algo = get_algorithm(name)(m)
        h = algo.make_lock()
        monitor = InvariantMonitor(m, algo).attach()

        def factory(i):
            def prog(thread):
                rng = random.Random(seed * 17 + i)
                for _ in range(6):
                    write = rng.random() < write_ratio
                    yield from algo.acquire(thread, h, write)
                    yield ops.Compute(rng.randint(1, 80))
                    yield from algo.release(thread, h, write)
            return prog

        for i in range(nthreads):
            os_.spawn(factory(i))
        os_.run_all(max_cycles=1_000_000_000)
        monitor.finish()
        monitor.detach()
        tracker = monitor.trackers[h]
        tracker.assert_clean()
        assert tracker.total == nthreads * 6
