"""LCU queue construction, direct transfer and race tests (paper III-A,
Figures 4b and 5)."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from tests.conftest import drain_and_check


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestQueueTransfers:
    def test_fifo_order_under_contention(self, m):
        """Write-lock handoffs follow request order (fairness)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        order = []

        def prog_factory(i):
            def prog(thread):
                yield ops.Compute(1 + i * 120)  # stagger the requests
                yield from api.lock(addr, True)
                order.append(i)
                yield ops.Compute(600)
                yield from api.unlock(addr, True)
            return prog

        for i in range(4):
            os_.spawn(prog_factory(i))
        os_.run_all()
        assert order == [0, 1, 2, 3]
        drain_and_check(m)

    def test_transfer_is_direct(self, m):
        """A queued handoff must not add LRT round-trip latency to the
        receiving thread's acquire (the notification is off the critical
        path)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        lrts = m.lrts
        t_handoff = {}

        def holder(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(3_000)  # long enough for waiter to enqueue
            t_handoff["release"] = m.sim.now
            yield from api.unlock(addr, True)

        def waiter(thread):
            yield ops.Compute(100)
            yield from api.lock(addr, True)
            t_handoff["acquired"] = m.sim.now
            yield from api.unlock(addr, True)

        os_.spawn(holder)
        os_.spawn(waiter)
        os_.run_all()
        handoff = t_handoff["acquired"] - t_handoff["release"]
        # direct LCU->LCU: one hop + LCU latency + spin wake, far less
        # than two hops (which an LRT-mediated transfer would need)
        one_hop = m.config.intra_chip_hop
        assert handoff < 2 * one_hop + 20, handoff
        drain_and_check(m)

    def test_transfer_counts(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def prog(thread):
            for _ in range(10):
                yield from api.lock(addr, True)
                yield ops.Compute(30)
                yield from api.unlock(addr, True)

        for _ in range(3):
            os_.spawn(prog)
        os_.run_all()
        total_transfers = sum(l.stats["transfers"] for l in m.lcus)
        # 30 acquisitions, first is a fresh grant; most others transfer
        assert total_transfers >= 15
        drain_and_check(m)

    def test_head_pointer_tracks_owner(self, m):
        """After a handoff settles, the LRT's head points at the holder."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        lrt = m.lrts[m.mem.home_of(addr)]
        checks = []

        def holder(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(3_000)
            yield from api.unlock(addr, True)

        def waiter(thread):
            yield ops.Compute(100)
            yield from api.lock(addr, True)
            yield ops.Compute(3_000)  # let the HeadNotify settle
            e = lrt.entry(addr)
            checks.append((e.head.tid, thread.tid))
            yield from api.unlock(addr, True)

        os_.spawn(holder)
        os_.spawn(waiter)
        os_.run_all()
        assert checks and checks[0][0] == checks[0][1]
        drain_and_check(m)


class TestReleaseEnqueueRace:
    def test_release_races_with_forwarded_request(self, m):
        """Holder releases exactly while a new request is being forwarded
        to it; the REL entry must hand the lock over (paper III-A)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        got = []

        def holder(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(40)  # release quickly
            yield from api.unlock(addr, True)

        def chaser(thread):
            # issue the request so its FwdRequest is in flight during the
            # holder's release window
            yield ops.Compute(35)
            yield from api.lock(addr, True)
            got.append(True)
            yield from api.unlock(addr, True)

        os_.spawn(holder)
        os_.spawn(chaser)
        os_.run_all(max_cycles=10_000_000)
        assert got
        drain_and_check(m)

    def test_release_race_sweep(self, m):
        """Sweep the race window cycle by cycle — every interleaving of
        RELEASE vs forwarded REQUEST must resolve."""
        for offset in range(0, 60, 7):
            mm = Machine(small_test_model())
            os_ = OS(mm)
            addr = mm.alloc.alloc_line()
            got = []

            def holder(thread):
                yield from api.lock(addr, True)
                yield ops.Compute(10)
                yield from api.unlock(addr, True)

            def chaser(thread, offset=offset):
                yield ops.Compute(1 + offset)
                yield from api.lock(addr, True)
                got.append(True)
                yield from api.unlock(addr, True)

            os_.spawn(holder)
            os_.spawn(chaser)
            os_.run_all(max_cycles=10_000_000)
            assert got, f"offset {offset} lost the lock"
            drain_and_check(mm)


class TestManyLocksManyThreads:
    def test_interleaved_locks_all_complete(self, m):
        os_ = OS(m)
        addrs = [m.alloc.alloc_line() for _ in range(4)]
        done = [0]

        def prog_factory(i):
            def prog(thread):
                for k in range(12):
                    a = addrs[(i + k) % len(addrs)]
                    yield from api.lock(a, True)
                    yield ops.Compute(15)
                    yield from api.unlock(a, True)
                done[0] += 1
            return prog

        for i in range(6):
            os_.spawn(prog_factory(i))
        os_.run_all(max_cycles=100_000_000)
        assert done[0] == 6
        drain_and_check(m)
