"""Tests for the ``python -m repro`` command-line interface."""

import io
from contextlib import redirect_stdout

import pytest

from repro.__main__ import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


class TestCli:
    def test_tables(self):
        code, out = run_cli("tables")
        assert code == 0
        assert "Figure 1" in out and "Figure 8" in out

    def test_locks_lists_everything(self):
        code, out = run_cli("locks")
        assert code == 0
        for name in ("lcu", "ssb", "mcs", "mrsw", "clh", "hbo"):
            assert name in out

    def test_microbench(self):
        code, out = run_cli(
            "microbench", "--threads", "4", "--iters", "20",
            "--lock", "mcs",
        )
        assert code == 0
        assert "cyc/CS" in out

    def test_stm(self):
        code, out = run_cli(
            "stm", "--threads", "2", "--size", "64", "--txns", "8",
        )
        assert code == 0
        assert "cyc/txn" in out

    def test_app(self):
        code, out = run_cli(
            "app", "--name", "radiosity", "--lock", "pthread",
            "--threads", "4", "--seeds", "1",
        )
        assert code == 0
        assert "radiosity" in out

    def test_unknown_lock_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["microbench", "--lock", "nope"])

    def test_figure_names_registered(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "fig9a"])
        assert args.name == "fig9a"
        for name in ("fig9b", "fig10a", "fig11a", "fig12a", "fig13"):
            parser.parse_args(["figure", name])
