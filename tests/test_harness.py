"""Tests for the experiment harness (microbench, STM bench, reporting,
tables) at tiny scales."""

import math

import pytest

from repro.harness.microbench import run_microbench, sweep
from repro.harness.reporting import geomean, render_series, render_table
from repro.harness.stm_bench import run_stm_bench
from repro.harness.tables import figure1_rows, figure1_table, figure8_table
from repro.params import small_test_model


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table([["a", "bb"], ["ccc", 1.25]], floatfmt=".2f")
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "1.25" in lines[2]
        assert "-+-" in lines[1]

    def test_render_series(self):
        out = render_series("x", [1, 2], {"s1": [10.0, 20.0]}, title="T")
        assert out.splitlines()[0] == "T"
        assert "s1" in out
        assert "20.0" in out

    def test_render_series_missing_points(self):
        out = render_series("x", [1, 2, 3], {"s": [1.0]})
        assert out.count("-") >= 2  # missing values rendered as '-'

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0, 5]) == pytest.approx(5.0)  # zeros skipped


class TestMicrobench:
    def test_basic_run(self):
        r = run_microbench(
            small_test_model(), "lcu", threads=3, write_pct=100,
            iters_per_thread=10,
        )
        assert r.total_cs == 30
        assert r.cycles_per_cs > 0
        assert math.isfinite(r.cycles_per_cs)
        assert 0 < r.fairness <= 1.0
        assert len(r.per_thread_cs) == 3

    def test_duration_mode(self):
        r = run_microbench(
            small_test_model(), "lcu", threads=3, write_pct=100,
            mode="duration", duration=20_000,
        )
        assert r.total_cs > 0
        assert r.elapsed >= 20_000

    def test_fixed_roles(self):
        r = run_microbench(
            small_test_model(), "lcu", threads=4, write_pct=50,
            fixed_roles=True, iters_per_thread=10,
        )
        # 2 permanent writers, 2 permanent readers
        assert r.writer_cs == 20
        assert r.reader_cs == 20

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            run_microbench(small_test_model(), "lcu", 2, mode="nope")

    def test_sweep_structure(self):
        out = sweep(
            small_test_model, ["lcu", "tas"], [2, 3], 100,
            iters_per_thread=5,
        )
        assert set(out) == {"lcu", "tas"}
        assert [r.threads for r in out["lcu"]] == [2, 3]

    def test_readers_increase_throughput(self):
        common = dict(threads=4, iters_per_thread=30, cs_cycles=300,
                      think_cycles=1)
        w = run_microbench(small_test_model(), "lcu", write_pct=100,
                           **common)
        r = run_microbench(small_test_model(), "lcu", write_pct=0,
                           **common)
        assert r.cycles_per_cs < w.cycles_per_cs


class TestStmBench:
    def test_basic_run(self):
        r = run_stm_bench(
            small_test_model(), "lcu", "rb", threads=2,
            initial_size=32, txns_per_thread=8,
        )
        assert r.txns == 16
        assert r.txn_cycles > 0
        assert r.commit_cycles > 0

    def test_structure_validation(self):
        with pytest.raises(ValueError):
            run_stm_bench(small_test_model(), "lcu", "nope")

    @pytest.mark.parametrize("structure", ["rb", "skip", "hash"])
    def test_all_structures_run(self, structure):
        r = run_stm_bench(
            small_test_model(), "sw-only", structure, threads=2,
            initial_size=32, txns_per_thread=5,
        )
        assert r.txns == 10


class TestTables:
    def test_figure1_contains_all_registered(self):
        rows = figure1_rows()
        names = [r[0] for r in rows[1:]]
        for expected in ["tas", "mcs", "mrsw", "ssb", "lcu"]:
            assert expected in names

    def test_figure1_lcu_has_full_feature_set(self):
        table = figure1_table()
        lcu = next(l for l in table.splitlines() if l.startswith("lcu"))
        assert "HW" in lcu and lcu.count("yes") == 5

    def test_figure8_renders(self):
        out = figure8_table()
        assert "Model A" in out and "Model B" in out
