"""Tests for the Barrier and CondVar primitives."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.locks import get_algorithm
from repro.locks.sync import Barrier, CondVar


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestBarrier:
    def test_parties_validation(self, m):
        with pytest.raises(ValueError):
            Barrier(m, 0)

    def test_nobody_passes_early(self, m):
        os_ = OS(m)
        bar = Barrier(m, 4)
        passed = []
        arrived = []

        def prog_factory(i):
            def prog(thread):
                yield ops.Compute(100 * (i + 1))
                arrived.append((m.sim.now, i))
                yield from bar.wait(thread)
                passed.append((m.sim.now, i))
            return prog

        for i in range(4):
            os_.spawn(prog_factory(i))
        os_.run_all()
        last_arrival = max(t for t, _ in arrived)
        assert all(t >= last_arrival for t, _ in passed)

    def test_reusable_across_generations(self, m):
        os_ = OS(m)
        bar = Barrier(m, 3)
        phases = {i: [] for i in range(3)}

        def prog_factory(i):
            def prog(thread):
                for phase in range(4):
                    yield ops.Compute(30 * (i + 1))
                    gen = yield from bar.wait(thread)
                    phases[i].append(gen)
            return prog

        for i in range(3):
            os_.spawn(prog_factory(i))
        os_.run_all(max_cycles=10_000_000)
        # every thread saw the same generation sequence
        assert phases[0] == phases[1] == phases[2] == [1, 2, 3, 4]

    def test_oversubscribed_barrier(self, m):
        """More parties than cores: spinning waiters must be preempted so
        the remaining parties can arrive."""
        os_ = OS(m, quantum=1_000)
        n = m.config.cores * 2
        bar = Barrier(m, n)
        done = [0]

        def prog(thread):
            yield ops.Compute(10)
            yield from bar.wait(thread)
            done[0] += 1

        for _ in range(n):
            os_.spawn(prog)
        os_.run_all(max_cycles=100_000_000)
        assert done[0] == n


@pytest.mark.parametrize("lock_name", ["pthread", "lcu", "mcs"])
class TestCondVar:
    def test_producer_consumer(self, m, lock_name):
        algo = get_algorithm(lock_name)(m)
        os_ = OS(m)
        handle = algo.make_lock()
        cv = CondVar(m, algo)
        queue_len = m.alloc.alloc_line()
        consumed = [0]

        def consumer(thread):
            for _ in range(5):
                yield from algo.lock(thread, handle, True)
                while True:
                    n = yield ops.Load(queue_len)
                    if n > 0:
                        break
                    yield from cv.wait(thread, handle)
                yield ops.Store(queue_len, n - 1)
                consumed[0] += 1
                yield from algo.unlock(thread, handle, True)

        def producer(thread):
            for _ in range(5):
                yield ops.Compute(400)
                yield from algo.lock(thread, handle, True)
                n = yield ops.Load(queue_len)
                yield ops.Store(queue_len, n + 1)
                yield from cv.notify()
                yield from algo.unlock(thread, handle, True)

        os_.spawn(consumer)
        os_.spawn(producer)
        os_.run_all(max_cycles=100_000_000)
        assert consumed[0] == 5
        assert m.mem.peek(queue_len) == 0

    def test_notify_all_wakes_everyone(self, m, lock_name):
        algo = get_algorithm(lock_name)(m)
        os_ = OS(m)
        handle = algo.make_lock()
        cv = CondVar(m, algo)
        flag = m.alloc.alloc_line()
        woken = [0]

        def waiter(thread):
            yield from algo.lock(thread, handle, True)
            while True:
                f = yield ops.Load(flag)
                if f:
                    break
                yield from cv.wait(thread, handle)
            woken[0] += 1
            yield from algo.unlock(thread, handle, True)

        def broadcaster(thread):
            yield ops.Compute(2_000)
            yield from algo.lock(thread, handle, True)
            yield ops.Store(flag, 1)
            yield from cv.notify_all()
            yield from algo.unlock(thread, handle, True)

        for _ in range(3):
            os_.spawn(waiter)
        os_.spawn(broadcaster)
        os_.run_all(max_cycles=100_000_000)
        assert woken[0] == 3
