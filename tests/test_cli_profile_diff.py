"""CLI tests for ``python -m repro profile`` and ``python -m repro diff``.

The golden folded-stack file pins the profiler's exported weights
byte-for-byte for a small deterministic run.  Regenerate after an
intentional change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_cli_profile_diff.py
"""

import io
import json
import os
import pathlib
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.__main__ import main
from repro.obs import load_run_report, validate_chrome_trace

DATA = pathlib.Path(__file__).resolve().parent / "data"
GOLDEN_FOLDED = DATA / "golden_profile.folded"

SMALL = ("--threads", "4", "--iters", "10", "--seed", "1")


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


def make_report(tmp_path, name, **over):
    args = dict(zip(SMALL[::2], SMALL[1::2])) | {
        k.replace("_", "-"): str(v) for k, v in over.items()
    }
    path = tmp_path / name
    argv = ["profile", "--lock", "lcu"]
    for k, v in args.items():
        argv += [f"--{k.lstrip('-')}", v]
    code, _, err = run_cli(*argv, "--json-out", str(path))
    assert code == 0, err
    return path


class TestProfileVerb:
    def test_prints_decomposition(self):
        code, out, _ = run_cli("profile", "--lock", "lcu", *SMALL)
        assert code == 0
        for phase in ("enqueue", "queue_wait", "transfer", "handoff",
                      "critical_section"):
            assert phase in out
        assert "100.00% of end-to-end acquire latency" in out
        assert "critical path" in out

    def test_software_lock_profilable(self):
        code, out, _ = run_cli("profile", "--lock", "mcs", *SMALL)
        assert code == 0
        assert "mcs@" in out

    def test_top_controls_edge_count(self):
        code, out, _ = run_cli("profile", "--lock", "lcu", *SMALL,
                               "--top", "2")
        assert code == 0
        assert "    2. " in out and "    3. " not in out

    def test_top_must_be_positive(self):
        code, _, err = run_cli("profile", "--top", "0", *SMALL)
        assert code == 2
        assert "--top" in err

    def test_artifacts(self, tmp_path):
        folded = tmp_path / "p.folded"
        trace = tmp_path / "p.trace.json"
        rep = tmp_path / "p.json"
        code, _, _ = run_cli(
            "profile", "--lock", "lcu", *SMALL,
            "--folded-out", str(folded), "--trace-out", str(trace),
            "--json-out", str(rep),
        )
        assert code == 0
        for line in folded.read_text().strip().split("\n"):
            stack, weight = line.rsplit(" ", 1)
            assert len(stack.split(";")) == 3
            int(weight)
        validate_chrome_trace(json.loads(trace.read_text()))
        report = load_run_report(str(rep))
        assert report["version"] == 4
        assert "profile" in report
        assert report["config"]["lock"] == "lcu"

    def test_golden_folded(self, tmp_path):
        folded = tmp_path / "p.folded"
        code, _, _ = run_cli("profile", "--lock", "lcu", *SMALL,
                             "--folded-out", str(folded))
        assert code == 0

        if os.environ.get("REPRO_REGEN_GOLDEN"):
            DATA.mkdir(exist_ok=True)
            GOLDEN_FOLDED.write_text(folded.read_text())
            pytest.skip("golden folded stack regenerated")

        assert GOLDEN_FOLDED.exists(), (
            "golden file missing; run with REPRO_REGEN_GOLDEN=1"
        )
        assert folded.read_text() == GOLDEN_FOLDED.read_text()

    def test_microbench_profile_flag(self):
        code, out, _ = run_cli("microbench", "--lock", "lcu",
                               "--threads", "4", "--iters", "10",
                               "--profile")
        assert code == 0
        assert "Contention profile" in out
        assert "cyc/CS" in out

    def test_figure_profile_flag_gated(self):
        code, _, err = run_cli("figure", "fig11a", "--profile")
        assert code == 2
        assert "--profile" in err


class TestDiffVerb:
    def test_self_diff_exit_zero(self, tmp_path):
        rep = make_report(tmp_path, "a.json")
        code, out, _ = run_cli("diff", str(rep), str(rep),
                               "--fail-on-regression")
        assert code == 0
        assert "unchanged" in out
        assert "REGRESSIONS" not in out

    def test_seeded_regression_exit_one(self, tmp_path):
        old = make_report(tmp_path, "old.json", cs_cycles=40)
        new = make_report(tmp_path, "new.json", cs_cycles=80)
        code, out, err = run_cli("diff", str(old), str(new),
                                 "--fail-on-regression")
        assert code == 1
        assert "REGRESSIONS" in out
        assert "cs_cycles: 40 -> 80" in out   # config mismatch surfaced
        assert "FAIL" in err

    def test_regression_without_flag_exit_zero(self, tmp_path):
        old = make_report(tmp_path, "old.json", cs_cycles=40)
        new = make_report(tmp_path, "new.json", cs_cycles=80)
        code, out, _ = run_cli("diff", str(old), str(new))
        assert code == 0
        assert "REGRESSIONS" in out

    def test_json_out(self, tmp_path):
        rep = make_report(tmp_path, "a.json")
        out_path = tmp_path / "diff.json"
        code, _, _ = run_cli("diff", str(rep), str(rep),
                             "--json-out", str(out_path))
        assert code == 0
        d = json.loads(out_path.read_text())
        assert d["schema"] == "repro.run-report-diff"
        assert d["counts"]["regression"] == 0

    def test_missing_file_exit_two(self, tmp_path):
        rep = make_report(tmp_path, "a.json")
        code, _, err = run_cli("diff", str(tmp_path / "nope.json"),
                               str(rep))
        assert code == 2
        assert "cannot read" in err

    def test_invalid_report_exit_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong"}')
        rep = make_report(tmp_path, "a.json")
        code, _, err = run_cli("diff", str(bad), str(rep))
        assert code == 2
        assert "invalid" in err

    def test_non_json_exit_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        rep = make_report(tmp_path, "a.json")
        code, _, err = run_cli("diff", str(rep), str(bad))
        assert code == 2

    def test_negative_threshold_exit_two(self, tmp_path):
        rep = make_report(tmp_path, "a.json")
        code, _, err = run_cli("diff", str(rep), str(rep),
                               "--threshold", "-0.5")
        assert code == 2
        assert "--threshold" in err

    def test_trajectory_baseline_diffable(self, tmp_path):
        # BENCH_telemetry.json is a bench trajectory whose latest record
        # embeds a run report; the plain diff gate must keep accepting
        # it as a baseline (it stands in for the embedded report).
        bench = pathlib.Path(__file__).resolve().parent.parent / \
            "BENCH_telemetry.json"
        code, out, _ = run_cli("diff", str(bench), str(bench),
                               "--fail-on-regression")
        assert code == 0
        assert "unchanged" in out

    def test_old_version_report_still_diffable(self, tmp_path):
        # pre-v3 reports (no 'host' section) must stay accepted as diff
        # baselines forever
        rep = make_report(tmp_path, "a.json")
        old = json.loads(rep.read_text())
        old["version"] = 2
        old.pop("host", None)
        old_path = tmp_path / "old.json"
        old_path.write_text(json.dumps(old))
        code, out, _ = run_cli("diff", str(old_path), str(rep),
                               "--fail-on-regression")
        assert code == 0
        assert "unchanged" in out
