"""LCU/LRT protocol tests: ISA primitives, entry lifecycle, uncontended
locking (paper Section III-A, Figure 4a)."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.lcu.entry import ACQ, ISSUED, RCV, REL
from repro.lcu.lcu import ProtocolError
from tests.conftest import drain_and_check


@pytest.fixture
def m():
    return Machine(small_test_model())


def run_until(m, cond, limit=100_000):
    m.sim.run(until=m.sim.now + limit, stop_when=cond)
    assert cond(), "condition never became true"


class TestIsaPrimitives:
    def test_first_acq_issues_and_returns_false(self, m):
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        assert lcu.instr_acquire(tid=1, addr=addr, write=True) is False
        e = lcu.entry(1, addr)
        assert e is not None and e.status == ISSUED

    def test_grant_then_acquire_uncontended_removes_entry(self, m):
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        lcu.instr_acquire(1, addr, True)
        run_until(m, lambda: lcu.poll_ready(1, addr))
        e = lcu.entry(1, addr)
        assert e.status == RCV and e.head
        assert lcu.instr_acquire(1, addr, True) is True
        # uncontended: entry removed to leave room (paper III-A)
        assert lcu.entry(1, addr) is None
        # but the LRT still records the lock as taken
        lrt = m.lrts[m.mem.home_of(addr)]
        assert lrt.entry(addr) is not None

    def test_release_reallocates_and_clears(self, m):
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        lcu.instr_acquire(1, addr, True)
        run_until(m, lambda: lcu.poll_ready(1, addr))
        lcu.instr_acquire(1, addr, True)
        assert lcu.instr_release(1, addr, True) is True
        e = lcu.entry(1, addr)
        assert e is not None and e.status == REL
        drain_and_check(m)

    def test_release_of_never_requested_lock_is_loud(self, m):
        """Releasing a lock that was never requested is a program bug and
        must surface as a protocol error at the LRT."""
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        lcu.instr_release(1, addr, True)
        with pytest.raises(ProtocolError):
            m.sim.run()

    def test_mode_mismatch_acquire_returns_false(self, m):
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        lcu.instr_acquire(1, addr, True)
        assert lcu.instr_acquire(1, addr, False) is False

    def test_two_threads_same_core_different_entries(self, m):
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        lcu.instr_acquire(1, addr, True)
        lcu.instr_acquire(2, addr, True)
        assert lcu.entry(1, addr) is not None
        assert lcu.entry(2, addr) is not None
        assert lcu.entries_in_use == 2

    def test_enqueue_prefetch_allocates(self, m):
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        assert lcu.instr_enqueue(1, addr, True) is True
        assert lcu.entry(1, addr) is not None
        # idempotent
        assert lcu.instr_enqueue(1, addr, True) is True
        assert lcu.entries_in_use == 1


class TestUncontendedCycle:
    def test_lock_unlock_via_api(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        done = []

        def prog(thread):
            for _ in range(5):
                yield from api.lock(addr, True)
                yield ops.Compute(10)
                yield from api.unlock(addr, True)
            done.append(True)

        os_.spawn(prog)
        os_.run_all()
        assert done
        drain_and_check(m)

    def test_lrt_entry_lifecycle(self, m):
        """LRT allocates on request, frees once the lock is released."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        lrt = m.lrts[m.mem.home_of(addr)]
        observed = []

        def prog(thread):
            yield from api.lock(addr, True)
            observed.append(lrt.entry(addr) is not None)
            yield from api.unlock(addr, True)

        os_.spawn(prog)
        os_.run_all()
        m.drain()
        assert observed == [True]
        assert lrt.entry(addr) is None

    def test_many_locks_at_once(self, m):
        os_ = OS(m)
        addrs = [m.alloc.alloc_line() for _ in range(3)]

        def prog(thread):
            for a in addrs:
                yield from api.lock(a, True)
            yield ops.Compute(100)
            for a in reversed(addrs):
                yield from api.unlock(a, True)

        os_.spawn(prog)
        os_.run_all()
        drain_and_check(m)

    def test_word_granularity(self, m):
        """Two locks in the same cache line are independent locks."""
        os_ = OS(m)
        base = m.alloc.alloc_line()
        a1, a2 = base, base + 8
        order = []

        def p1(thread):
            yield from api.lock(a1, True)
            order.append("p1-has-a1")
            yield ops.Compute(2_000)
            yield from api.unlock(a1, True)

        def p2(thread):
            yield ops.Compute(200)  # ensure p1 goes first
            yield from api.lock(a2, True)
            order.append("p2-has-a2")
            yield from api.unlock(a2, True)

        os_.spawn(p1)
        os_.spawn(p2)
        os_.run_all()
        # p2 must get a2 while p1 still holds a1
        assert order == ["p1-has-a1", "p2-has-a2"]
        drain_and_check(m)


class TestGrantTimer:
    def test_unclaimed_grant_returns_to_lrt(self, m):
        """A grant that no thread collects (thread vanished) must be
        released by the timer so the lock does not wedge."""
        lcu = m.lcus[0]
        addr = m.alloc.alloc_line()
        lcu.instr_acquire(1, addr, True)   # request, then never collect
        run_until(m, lambda: lcu.poll_ready(1, addr))
        # wait out the grant timeout plus protocol slack
        m.sim.run(until=m.sim.now + m.config.lcu_grant_timeout + 10_000)
        assert lcu.entry(1, addr) is None
        lrt = m.lrts[m.mem.home_of(addr)]
        assert lrt.entry(addr) is None  # lock is free again
        assert lcu.stats["timeouts"] == 1

    def test_unclaimed_grant_forwards_to_waiter(self, m):
        """With a queue, the timer forwards the grant to the next node
        instead of releasing (paper Figure 7)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        lcu0 = m.lcus[0]
        got = []

        # tid 99's request from LCU0 goes first and is never collected.
        lcu0.instr_acquire(99, addr, True)

        def prog(thread):
            yield ops.Compute(50)  # request strictly after tid 99
            yield from api.lock(addr, True)
            got.append(m.sim.now)
            yield from api.unlock(addr, True)

        os_.spawn(prog)
        os_.run_all()
        assert got, "waiter never got the abandoned grant"
        assert got[0] >= m.config.lcu_grant_timeout
        drain_and_check(m)
