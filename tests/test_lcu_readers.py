"""Read-locking protocol tests: concurrent reader runs, the Head token,
RD_REL silent release and re-acquisition (paper Section III-B, Fig. 6)."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from repro.lcu.entry import ACQ, RD_REL
from tests.conftest import RWTracker, drain_and_check


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestConcurrentReaders:
    def test_readers_share_grant(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()

        def reader(thread):
            yield from api.lock(addr, False)
            tracker.enter(False)
            yield ops.Compute(1_000)
            tracker.exit(False)
            yield from api.unlock(addr, False)

        for _ in range(4):
            os_.spawn(reader)
        os_.run_all()
        tracker.assert_clean()
        assert tracker.max_readers == 4
        drain_and_check(m)

    def test_late_reader_joins_active_run(self, m):
        """A read request forwarded to a tail that holds in read mode gets
        a share grant immediately, without queue latency."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()

        def early(thread):
            yield from api.lock(addr, False)
            tracker.enter(False)
            yield ops.Compute(4_000)
            tracker.exit(False)
            yield from api.unlock(addr, False)

        def late(thread):
            yield ops.Compute(800)
            yield from api.lock(addr, False)
            tracker.enter(False)
            yield ops.Compute(100)
            tracker.exit(False)
            yield from api.unlock(addr, False)

        os_.spawn(early)
        os_.spawn(late)
        os_.run_all()
        tracker.assert_clean()
        assert tracker.max_readers == 2
        drain_and_check(m)

    def test_any_order_release(self, m):
        """Readers may release in any order (the RD_REL machinery)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        hold = [200, 2_000, 900, 50]  # wildly different hold times

        def reader_factory(i):
            def reader(thread):
                yield from api.lock(addr, False)
                tracker.enter(False)
                yield ops.Compute(hold[i])
                tracker.exit(False)
                yield from api.unlock(addr, False)
            return reader

        for i in range(4):
            os_.spawn(reader_factory(i))
        os_.run_all()
        tracker.assert_clean()
        drain_and_check(m)


class TestHeadTokenAndWriters:
    def test_writer_waits_for_all_readers(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        times = {}

        def reader_factory(i):
            def reader(thread):
                yield from api.lock(addr, False)
                tracker.enter(False)
                yield ops.Compute(1_000 + 500 * i)
                tracker.exit(False)
                times[f"r{i}_out"] = m.sim.now
                yield from api.unlock(addr, False)
            return reader

        def writer(thread):
            yield ops.Compute(300)  # enqueue behind the readers
            yield from api.lock(addr, True)
            tracker.enter(True)
            times["w_in"] = m.sim.now
            yield ops.Compute(100)
            tracker.exit(True)
            yield from api.unlock(addr, True)

        for i in range(3):
            os_.spawn(reader_factory(i))
        os_.spawn(writer)
        os_.run_all()
        tracker.assert_clean()
        assert times["w_in"] >= max(times[f"r{i}_out"] for i in range(3))
        drain_and_check(m)

    def test_reader_after_writer_waits(self, m):
        """FIFO: a reader that requests after a queued writer must not
        jump it (fairness — unlike reader-preference locks)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        order = []

        def first_reader(thread):
            yield from api.lock(addr, False)
            order.append("r1")
            yield ops.Compute(2_500)
            yield from api.unlock(addr, False)

        def writer(thread):
            yield ops.Compute(200)
            yield from api.lock(addr, True)
            order.append("w")
            yield ops.Compute(500)
            yield from api.unlock(addr, True)

        def second_reader(thread):
            yield ops.Compute(600)  # requests while writer is queued
            yield from api.lock(addr, False)
            order.append("r2")
            yield from api.unlock(addr, False)

        os_.spawn(first_reader)
        os_.spawn(writer)
        os_.spawn(second_reader)
        os_.run_all()
        assert order == ["r1", "w", "r2"]
        drain_and_check(m)


class TestLrtShareGrantFastPath:
    def test_reader_join_does_not_wait_for_ripple(self, m):
        """A reader joining a writer-free read phase is granted directly
        by the LRT instead of waiting for the share grant to ripple down
        the chain hop by hop (see DESIGN.md)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        join_lat = []

        def early_reader(thread):
            yield from api.lock(addr, False)
            yield ops.Compute(6_000)
            yield from api.unlock(addr, False)

        def late_reader_factory(i):
            def late_reader(thread):
                yield ops.Compute(500 + i * 37)
                t0 = m.sim.now
                yield from api.lock(addr, False)
                join_lat.append(m.sim.now - t0)
                yield ops.Compute(3_000)
                yield from api.unlock(addr, False)
            return late_reader

        os_.spawn(early_reader)
        for i in range(3):
            os_.spawn(late_reader_factory(i))
        os_.run_all()
        # every join should cost about one LRT round trip, not a chain
        # walk: bound it by ~3 hops worth of latency
        bound = 6 * m.config.intra_chip_hop + 12 * m.config.lrt_latency
        assert all(l < bound for l in join_lat), (join_lat, bound)
        drain_and_check(m)

    def test_no_share_grant_when_writer_waits(self, m):
        """The fast path must not leak read grants past a queued writer
        (fairness would break): a reader arriving after a writer waits."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        order = []

        def head_reader(thread):
            yield from api.lock(addr, False)
            order.append("r1")
            yield ops.Compute(3_000)
            yield from api.unlock(addr, False)

        def writer(thread):
            yield ops.Compute(300)
            yield from api.lock(addr, True)
            order.append("w")
            yield from api.unlock(addr, True)

        def late_reader(thread):
            yield ops.Compute(700)
            yield from api.lock(addr, False)
            order.append("r2")
            yield from api.unlock(addr, False)

        os_.spawn(head_reader)
        os_.spawn(writer)
        os_.spawn(late_reader)
        os_.run_all()
        assert order == ["r1", "w", "r2"]
        drain_and_check(m)


class TestRdRelReacquire:
    def test_intermediate_reader_reacquires_locally(self, m):
        """An RD_REL entry can be re-taken by its thread with zero remote
        messages (paper III-B)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        reacquire_msgs = []

        def long_reader(thread):
            # Head reader: holds long so the other entry stays mid-queue.
            yield from api.lock(addr, False)
            yield ops.Compute(6_000)
            yield from api.unlock(addr, False)

        def cycler(thread):
            yield ops.Compute(200)  # enqueue second (intermediate node)
            yield from api.lock(addr, False)
            yield ops.Compute(100)
            yield from api.unlock(addr, False)
            # entry should now be RD_REL; re-acquire must be local
            e = m.lcus[thread.core].entry(thread.tid, addr)
            assert e is not None and e.status == RD_REL
            before = m.net.messages_sent
            yield from api.lock(addr, False)
            assert m.net.messages_sent == before, "re-acquire went remote"
            e = m.lcus[thread.core].entry(thread.tid, addr)
            assert e.status == ACQ
            yield from api.unlock(addr, False)

        os_.spawn(long_reader)
        os_.spawn(cycler)
        os_.run_all()
        drain_and_check(m)

    def test_token_bypasses_released_intermediates(self, m):
        """Head token must skip RD_REL entries and reach a waiting
        writer."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        events = []

        def reader_factory(hold, label):
            def reader(thread):
                yield from api.lock(addr, False)
                tracker.enter(False)
                yield ops.Compute(hold)
                tracker.exit(False)
                events.append(label)
                yield from api.unlock(addr, False)
            return reader

        def writer(thread):
            yield ops.Compute(400)
            yield from api.lock(addr, True)
            tracker.enter(True)
            events.append("w")
            tracker.exit(True)
            yield from api.unlock(addr, True)

        # head holds longest; intermediates release early (become RD_REL)
        os_.spawn(reader_factory(5_000, "head"))
        os_.spawn(reader_factory(100, "mid1"))
        os_.spawn(reader_factory(150, "mid2"))
        os_.spawn(writer)
        os_.run_all()
        tracker.assert_clean()
        assert events.index("w") == 3  # after all three readers
        drain_and_check(m)
