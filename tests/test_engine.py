"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import Server, Signal, SimulationError, Simulator


class TestSimulator:
    def test_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0
        assert sim.pending_events == 0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.at(30, lambda: seen.append(30))
        sim.at(10, lambda: seen.append(10))
        sim.at(20, lambda: seen.append(20))
        sim.run()
        assert seen == [10, 20, 30]
        assert sim.now == 30

    def test_same_cycle_fifo(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.at(7, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.after(5, lambda: sim.after(5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [10]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_run_until_bounds_clock(self):
        sim = Simulator()
        fired = []
        sim.at(100, lambda: fired.append(1))
        sim.run(until=50)
        assert not fired
        assert sim.now == 50
        sim.run()
        assert fired

    def test_run_until_allows_boundary_event(self):
        sim = Simulator()
        fired = []
        sim.at(50, lambda: fired.append(1))
        sim.run(until=50)
        assert fired

    def test_stop_when(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            sim.after(1, tick)

        sim.after(1, tick)
        sim.run(stop_when=lambda: count[0] >= 10)
        assert count[0] == 10

    def test_max_events(self):
        sim = Simulator()
        for i in range(100):
            sim.at(i, lambda: None)
        n = sim.run(max_events=30)
        assert n == 30
        assert sim.pending_events == 70

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.at(i, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestSignal:
    def test_fire_wakes_all_waiters(self):
        sim = Simulator()
        sig = Signal(sim)
        got = []
        sig.wait(lambda p: got.append(("a", p)))
        sig.wait(lambda p: got.append(("b", p)))
        n = sig.fire("x")
        assert n == 2
        assert got == [("a", "x"), ("b", "x")]
        assert sig.waiter_count == 0

    def test_waiters_are_one_shot(self):
        sim = Simulator()
        sig = Signal(sim)
        got = []
        sig.wait(lambda p: got.append(p))
        sig.fire(1)
        sig.fire(2)
        assert got == [1]

    def test_cancel(self):
        sim = Simulator()
        sig = Signal(sim)
        got = []
        tok = sig.wait(lambda p: got.append(p))
        assert sig.cancel(tok) is True
        assert sig.cancel(tok) is False
        sig.fire(1)
        assert got == []

    def test_wait_during_fire_not_woken_by_same_fire(self):
        sim = Simulator()
        sig = Signal(sim)
        got = []

        def rearming(p):
            got.append(p)
            sig.wait(rearming)

        sig.wait(rearming)
        sig.fire(1)
        assert got == [1]
        sig.fire(2)
        assert got == [1, 2]


class TestServer:
    def test_uncontended_service(self):
        sim = Simulator()
        srv = Server(sim, "s")
        done = []
        srv.request(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [10]

    def test_fifo_queueing(self):
        sim = Simulator()
        srv = Server(sim, "s")
        done = []
        srv.request(10, lambda: done.append(("a", sim.now)))
        srv.request(10, lambda: done.append(("b", sim.now)))
        srv.request(10, lambda: done.append(("c", sim.now)))
        sim.run()
        assert done == [("a", 10), ("b", 20), ("c", 30)]

    def test_queue_delay(self):
        sim = Simulator()
        srv = Server(sim, "s")
        srv.request(25, lambda: None)
        assert srv.queue_delay() == 25

    def test_utilisation(self):
        sim = Simulator()
        srv = Server(sim, "s")
        srv.request(10, lambda: None)
        sim.at(40, lambda: None)
        sim.run()
        assert srv.utilisation() == pytest.approx(0.25)

    def test_negative_service_rejected(self):
        sim = Simulator()
        srv = Server(sim, "s")
        with pytest.raises(SimulationError):
            srv.request(-1, lambda: None)

    def test_idle_gap_not_counted_busy(self):
        sim = Simulator()
        srv = Server(sim, "s")
        srv.request(5, lambda: None)
        sim.run()
        sim.at(100, lambda: srv.request(5, lambda: None))
        sim.run()
        assert srv.busy_cycles == 10
