"""Smoke tests for the per-figure drivers (tiny scales).

The benchmarks exercise the real scales; these tests pin the drivers'
structure: series keys, x-axes, rendered text, and check dictionaries.
"""

import math

import pytest

from repro.harness.figures import figure9, figure10, figure11, figure12


class TestFigure9Driver:
    def test_series_structure(self):
        r = figure9("A", thread_counts=(2, 4), write_ratios=(100,),
                    iters_per_thread=10)
        assert r.figure == "fig9a"
        assert set(r.series) == {"lcu-100%w", "ssb-100%w"}
        assert all(len(v) == 2 for v in r.series.values())
        assert "Figure 9a" in r.text
        assert "lcu_beats_ssb_mutex" in r.checks

    def test_model_b_variant(self):
        r = figure9("B", thread_counts=(2,), write_ratios=(100,),
                    iters_per_thread=10)
        assert r.figure == "fig9b"
        assert "Figure 9b" in r.text


class TestFigure10Driver:
    def test_single_line_locks_skipped_when_oversubscribed(self):
        r = figure10("A", thread_counts=(2, 40), write_ratios=(100,),
                     locks=("lcu", "tas"), iters_per_thread=5,
                     quantum=50_000)
        tas = r.series["tas-100%w"]
        assert math.isnan(tas[1])
        assert not math.isnan(tas[0])
        assert not math.isnan(r.series["lcu-100%w"][1])

    def test_rw_ratios_only_for_rw_locks(self):
        r = figure10("A", thread_counts=(2,), write_ratios=(100, 25),
                     locks=("lcu", "mcs"), iters_per_thread=5)
        assert "lcu-25%w" in r.series
        assert "mcs-25%w" not in r.series


class TestFigure11Driver:
    def test_dissection_table(self):
        r = figure11("A", thread_counts=(1, 2),
                     variants=("sw-only", "lcu", "fraser"),
                     initial_size=32, txns_per_thread=6)
        assert set(r.series) == {"sw-only", "lcu", "fraser"}
        assert "app+commit" in r.text
        assert "sw_only_degrades" in r.checks

    def test_missing_variant_rejected(self):
        with pytest.raises(ValueError):
            figure11("A", thread_counts=(1,), variants=("bogus",),
                     initial_size=16, txns_per_thread=2)


class TestFigure12Driver:
    def test_structures_axis(self):
        r = figure12("A", threads=2, variants=("sw-only", "lcu"),
                     sizes={"rb": 32, "hash": 64}, txns_per_thread=5)
        assert r.xs == ["rb", "hash"]
        assert len(r.series["lcu"]) == 2
        assert "lcu_speedup_everywhere" in r.checks
