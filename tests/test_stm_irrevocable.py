"""Irrevocable transactions (Dice & Shavit's RW-lock-STM benefit)."""

import random

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.stm.core import ObjectSTM
from repro.stm.direct import run_direct
from repro.stm.structures.rbtree import RBTree


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestIrrevocable:
    def test_requires_opt_in(self, m):
        os_ = OS(m)
        stm = ObjectSTM(m, "lcu")  # support off
        failed = []

        def prog(thread):
            def body(tx):
                return 1
                yield  # pragma: no cover

            try:
                yield from stm.run_irrevocable(thread, body)
            except RuntimeError:
                failed.append(True)

        os_.spawn(prog)
        os_.run_all()
        assert failed

    def test_executes_exactly_once(self, m):
        os_ = OS(m)
        stm = ObjectSTM(m, "lcu", irrevocable_support=True)
        obj = stm.alloc(5)
        attempts = [0]

        def prog(thread):
            def body(tx):
                attempts[0] += 1
                v = yield from tx.read(obj)
                yield from tx.write(obj, v * 2)
                return v

            r = yield from stm.run_irrevocable(thread, body)
            assert r == 5

        os_.spawn(prog)
        os_.run_all()
        assert attempts[0] == 1
        assert obj.value == 10
        assert obj.version == stm.clock

    @pytest.mark.parametrize("variant", ["sw-only", "lcu"])
    def test_mixed_with_regular_transactions(self, m, variant):
        """Regular increments and irrevocable increments must all land;
        concurrent regular txns see consistent state and abort/retry
        around the irrevocable one."""
        stm = ObjectSTM(m, variant, irrevocable_support=True)
        counter = stm.alloc(0)
        os_ = OS(m)

        def regular(thread):
            for _ in range(10):
                def body(tx):
                    v = yield from tx.read(counter)
                    yield ops.Compute(15)
                    yield from tx.write(counter, v + 1)

                yield from stm.run(thread, body)

        def irrevocable(thread):
            for _ in range(10):
                def body(tx):
                    v = yield from tx.read(counter)
                    yield ops.Compute(15)
                    yield from tx.write(counter, v + 1)

                yield from stm.run_irrevocable(thread, body)
                yield ops.Compute(30)

        os_.spawn(regular)
        os_.spawn(regular)
        os_.spawn(irrevocable)
        os_.run_all(max_cycles=5_000_000_000)
        assert counter.value == 30

    def test_irrevocable_never_aborts_under_churn(self, m):
        """An irrevocable RB-tree update proceeds exactly once while
        regular transactions churn the same tree."""
        stm = ObjectSTM(m, "lcu", irrevocable_support=True)
        tree = RBTree(stm)
        for k in range(0, 60, 2):
            run_direct(stm, lambda tx, kk=k: tree.insert(tx, kk))
        os_ = OS(m)
        body_runs = [0]

        def churner(thread):
            rng = random.Random(thread.tid)
            for _ in range(15):
                key = rng.randrange(60)
                if rng.random() < 0.5:
                    yield from stm.run(
                        thread, lambda tx, k=key: tree.insert(tx, k)
                    )
                else:
                    yield from stm.run(
                        thread, lambda tx, k=key: tree.remove(tx, k)
                    )

        def irrevocable_worker(thread):
            yield ops.Compute(500)

            def body(tx):
                body_runs[0] += 1
                yield from tree.insert(tx, 999)
                found = yield from tree.contains(tx, 999)
                assert found
                return found

            ok = yield from stm.run_irrevocable(thread, body)
            assert ok

        os_.spawn(churner)
        os_.spawn(churner)
        os_.spawn(irrevocable_worker)
        os_.run_all(max_cycles=5_000_000_000)
        assert body_runs[0] == 1
        assert run_direct(stm, lambda tx: tree.contains(tx, 999))
        run_direct(stm, lambda tx: tree.check_invariants(tx))

    def test_read_only_regular_txns_share_token(self, m):
        """With irrevocable support on, concurrent regular commits must
        still overlap (the token is taken in read mode)."""
        stm = ObjectSTM(m, "lcu", irrevocable_support=True)
        objs = [stm.alloc(i) for i in range(4)]
        os_ = OS(m)
        done = [0]

        def prog(thread):
            for _ in range(8):
                def body(tx):
                    total = 0
                    for o in objs:
                        v = yield from tx.read(o)
                        total += v
                    return total

                yield from stm.run(thread, body)
                done[0] += 1

        for _ in range(4):
            os_.spawn(prog)
        os_.run_all(max_cycles=1_000_000_000)
        assert done[0] == 32
