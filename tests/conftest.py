"""Shared fixtures and helpers for the test suite.

The exclusion tracker and the post-run leak check are thin wrappers over
the production conformance subsystem (:mod:`repro.check.invariants`), so
the tests and ``python -m repro check`` share one definition of what a
correct run looks like.
"""

from __future__ import annotations

import pytest

from repro import Machine, OS, small_test_model
from repro.check.invariants import ExclusionTracker, check_quiescent
from repro.cpu import ops


@pytest.fixture
def machine() -> Machine:
    return Machine(small_test_model())


@pytest.fixture
def scheduler(machine: Machine) -> OS:
    return OS(machine)


class RWTracker(ExclusionTracker):
    """Asserts reader-writer exclusion from inside thread programs.

    Alias of the conformance subsystem's
    :class:`~repro.check.invariants.ExclusionTracker`, kept under its
    historical test-suite name."""


def cs_program(algo, handle, tracker: RWTracker, iters: int, write_of=None,
               cs_cycles: int = 25):
    """Build a worker program factory running ``iters`` critical sections.

    ``write_of(i)`` decides the mode of iteration ``i`` (default: writes).
    """
    def factory(thread):
        def program(thread=thread):
            for i in range(iters):
                write = True if write_of is None else write_of(thread, i)
                yield from algo.lock(thread, handle, write)
                tracker.enter(write)
                yield ops.Compute(cs_cycles)
                tracker.exit(write)
                yield from algo.unlock(thread, handle, write)
        return program()
    return factory


def drain_and_check(machine: Machine) -> None:
    """Settle in-flight traffic and assert no leaked hardware state
    (delegates to :func:`repro.check.invariants.check_quiescent`; an
    :class:`~repro.check.invariants.InvariantViolation` fails the test
    with the structural problems listed)."""
    check_quiescent(machine)
