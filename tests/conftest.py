"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops


@pytest.fixture
def machine() -> Machine:
    return Machine(small_test_model())


@pytest.fixture
def scheduler(machine: Machine) -> OS:
    return OS(machine)


class RWTracker:
    """Asserts reader-writer exclusion from inside thread programs."""

    def __init__(self) -> None:
        self.readers = 0
        self.writers = 0
        self.max_readers = 0
        self.total = 0
        self.violations = []

    def enter(self, write: bool) -> None:
        if write:
            if self.readers or self.writers:
                self.violations.append(
                    f"writer entered with r={self.readers} w={self.writers}"
                )
            self.writers += 1
        else:
            if self.writers:
                self.violations.append(
                    f"reader entered with w={self.writers}"
                )
            self.readers += 1
            self.max_readers = max(self.max_readers, self.readers)

    def exit(self, write: bool) -> None:
        if write:
            self.writers -= 1
        else:
            self.readers -= 1
        self.total += 1

    def assert_clean(self) -> None:
        assert not self.violations, self.violations
        assert self.readers == 0 and self.writers == 0


def cs_program(algo, handle, tracker: RWTracker, iters: int, write_of=None,
               cs_cycles: int = 25):
    """Build a worker program factory running ``iters`` critical sections.

    ``write_of(i)`` decides the mode of iteration ``i`` (default: writes).
    """
    def factory(thread):
        def program(thread=thread):
            for i in range(iters):
                write = True if write_of is None else write_of(thread, i)
                yield from algo.lock(thread, handle, write)
                tracker.enter(write)
                yield ops.Compute(cs_cycles)
                tracker.exit(write)
                yield from algo.unlock(thread, handle, write)
        return program()
    return factory


def drain_and_check(machine: Machine) -> None:
    """Settle in-flight traffic and assert no leaked hardware state."""
    machine.drain()
    machine.check_lock_invariants()
    assert machine.total_lcu_entries_in_use() == 0
    assert sum(l.live_locks for l in machine.lrts) == 0
