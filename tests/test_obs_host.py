"""Unit tests for the host-performance observatory (repro.obs.host):
host-time attribution, engine event-queue telemetry, trajectory records,
registry HostTimers, and the zero-cost-when-off overhead guard.

The golden folded-stack file pins the export format byte-for-byte for a
synthetic deterministic profile.  Regenerate after an intentional format
change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_host.py
"""

import json
import os
import pathlib

import pytest

from repro.harness.microbench import run_microbench
from repro.obs.host import (
    HostProfileError,
    HostProfiler,
    SUBSYSTEMS,
    append_record,
    classify_module,
    empty_trajectory,
    env_fingerprint,
    fingerprint_mismatches,
    is_trajectory,
    latest_record,
    load_trajectory,
    validate_host_section,
    validate_record,
    validate_trajectory,
    write_trajectory,
)
from repro.obs.registry import HostTimer, MetricsRegistry
from repro.obs.report import build_run_report, validate_run_report
from repro.params import small_test_model
from repro.sim.engine import SimulationError, Simulator

DATA = pathlib.Path(__file__).parent / "data"
GOLDEN_FOLDED = DATA / "golden_host.folded"


# --------------------------------------------------------------------- #
# classification

class TestClassify:
    def test_known_subsystems(self):
        assert classify_module("repro.sim.engine") == "engine"
        assert classify_module("repro.net.hub") == "net"
        assert classify_module("repro.lcu.unit") == "lcu"
        assert classify_module("repro.obs.registry") == "obs"

    def test_unknown_falls_back_to_other(self):
        assert classify_module("somelib.module") == "other"
        assert classify_module("") == "other"

    def test_every_target_is_a_declared_subsystem(self):
        for mod in ("repro.sim.x", "repro.net.x", "repro.mem.x",
                    "repro.lcu.x", "repro.ssb.x", "repro.stm.x",
                    "repro.locks.x", "repro.cpu.x", "repro.apps.x",
                    "repro.harness.x", "repro.obs.x", "repro.check.x",
                    "repro.faults.x"):
            assert classify_module(mod) in SUBSYSTEMS


# --------------------------------------------------------------------- #
# attribution on a real simulated run

def _profiled_run(threads=4, iters=8):
    host = HostProfiler()
    result = run_microbench(
        small_test_model(), "lcu", threads=threads, write_pct=100,
        iters_per_thread=iters, cs_cycles=10, think_cycles=0, seed=1,
        host_profiler=host,
    )
    return host, result


class TestAttribution:
    def test_subsystems_sum_exactly_to_total(self):
        # charge intervals tile the instrumented loop's wall time, so
        # the per-subsystem split sums to the total *by construction*
        # (not within rounding — exactly)
        host, _ = _profiled_run()
        d = host.to_dict()
        assert d["total_ns"] > 0
        assert sum(d["subsystems"].values()) == d["total_ns"]

    def test_handler_time_within_subsystem_time(self):
        host, _ = _profiled_run()
        d = host.to_dict()
        per_sub = {}
        for h in d["handlers"].values():
            per_sub[h["subsystem"]] = (
                per_sub.get(h["subsystem"], 0) + h["ns"]
            )
        for sub, ns in per_sub.items():
            assert ns <= d["subsystems"][sub]

    def test_simulated_results_identical_with_profiler(self):
        # the instrumented run loop must preserve event semantics
        # bit-for-bit: attribution changes host time only
        host, with_prof = _profiled_run()
        bare = run_microbench(
            small_test_model(), "lcu", threads=4, write_pct=100,
            iters_per_thread=8, cs_cycles=10, think_cycles=0, seed=1,
        )
        assert with_prof.elapsed == bare.elapsed
        assert with_prof.total_cs == bare.total_cs
        assert with_prof.cycles_per_cs == bare.cycles_per_cs

    def test_engine_stats_folded_on_detach(self):
        host, result = _profiled_run()
        eng = host.to_dict()["engine"]
        assert eng["events_processed"] > 0
        assert eng["heap_pushes"] >= eng["heap_pops"]
        assert eng["queue_depth_peak"] >= 1
        assert eng["queue_depth_mean"] > 0

    def test_host_section_validates(self):
        host, _ = _profiled_run()
        validate_host_section(host.to_dict())

    def test_embeds_in_current_run_report(self):
        host, result = _profiled_run()
        report = build_run_report(
            "microbench", {"lock": "lcu"},
            {"cycles_per_cs": result.cycles_per_cs},
            host=host.to_dict(),
        )
        assert report["version"] == 4
        validate_run_report(report)

    def test_summarize_names_top_subsystem(self):
        host, _ = _profiled_run()
        text = host.summarize()
        assert "attributed" in text


class TestSlottedDispatchClassification:
    """The engine rewrite replaced hot-path closures with slotted frame
    objects (`_Transit`), completion guards (`_Guard`) and bound
    methods.  Classification must keep attributing them to their true
    subsystems — and the tiling invariant must keep holding exactly."""

    def test_slotted_frames_classified_not_other(self):
        host, _ = _profiled_run()
        d = host.to_dict()
        handlers = d["handlers"]
        # the network's per-message frame object dispatches as net
        transits = [q for q in handlers if "_Transit" in q]
        assert transits, "no _Transit dispatches were profiled"
        assert all(handlers[q]["subsystem"] == "net" for q in transits)
        # the scheduler's completion guard dispatches as cpu
        guards = [q for q in handlers if "_Guard" in q]
        assert guards, "no _Guard dispatches were profiled"
        assert all(handlers[q]["subsystem"] == "cpu" for q in guards)
        # nothing on the hot path of a pure-repro workload is "other"
        assert d["subsystems"].get("other", 0) == 0

    def test_tiling_exact_with_slotted_dispatch(self):
        host, _ = _profiled_run(threads=6, iters=10)
        d = host.to_dict()
        assert d["subsystems"].get("net", 0) > 0
        assert sum(d["subsystems"].values()) == d["total_ns"]

    def test_bound_method_classified_by_function_module(self):
        host = HostProfiler()
        sim = Simulator()
        sim.at(0, sim.request_stop)  # bound method of a repro.sim class
        host.attach(sim)
        sim.run()
        host.detach()
        handlers = host.to_dict()["handlers"]
        (qual,) = handlers
        assert "request_stop" in qual
        assert handlers[qual]["subsystem"] == "engine"

    def test_foreign_bound_method_falls_back_to_owner_module(self):
        """A method defined outside repro but bound to a repro-owned
        object (monkeypatched handler) classifies by the owner class."""
        from repro.sim.engine import Server

        def patched(self):
            pass

        Server.test_hook = patched  # defined in tests.*, owner repro.sim
        try:
            sim = Simulator()
            srv = Server(sim, "s")
            host = HostProfiler()
            host.attach(sim)
            sim.at(0, srv.test_hook)
            sim.run()
            host.detach()
        finally:
            del Server.test_hook
        handlers = host.to_dict()["handlers"]
        (qual,) = handlers
        assert handlers[qual]["subsystem"] == "engine"

    def test_builtin_bound_method_classified_by_owner(self):
        host = HostProfiler()
        sim = Simulator()
        hits = []
        sim.at(0, hits.copy)  # builtin bound method, owner: list
        host.attach(sim)
        sim.run()
        host.detach()
        handlers = host.to_dict()["handlers"]
        (qual,) = handlers
        assert qual == "list.copy"
        assert handlers[qual]["subsystem"] == "other"
        # tiling still exact even for unclassifiable handlers
        d = host.to_dict()
        assert sum(d["subsystems"].values()) == d["total_ns"]


class TestAttachDetach:
    def test_double_attach_same_profiler_is_an_error(self):
        sim = Simulator()
        host = HostProfiler()
        other = HostProfiler()
        host.attach(sim)
        with pytest.raises(SimulationError):
            other.attach(sim)
        host.detach()
        other.attach(sim)  # free again after detach

    def test_detach_idempotent(self):
        sim = Simulator()
        host = HostProfiler()
        host.attach(sim)
        host.detach()
        host.detach()
        assert sim._host is None

    def test_accumulates_across_sims(self):
        # app runner re-attaches one profiler to each seed's fresh sim
        host = HostProfiler()
        for seed in (1, 2):
            run_microbench(
                small_test_model(), "lcu", threads=2, write_pct=100,
                iters_per_thread=3, cs_cycles=10, think_cycles=0,
                seed=seed, host_profiler=host,
            )
        eng = host.to_dict()["engine"]
        one = HostProfiler()
        run_microbench(
            small_test_model(), "lcu", threads=2, write_pct=100,
            iters_per_thread=3, cs_cycles=10, think_cycles=0, seed=1,
            host_profiler=one,
        )
        assert eng["events_processed"] > \
            one.to_dict()["engine"]["events_processed"]


# --------------------------------------------------------------------- #
# zero-cost-when-off overhead guard (satellite b)

class TestOverheadGuard:
    def test_run_loop_unchanged_without_profiler(self):
        # with --host-prof off the engine takes the plain loop: no
        # profiler object, no charge calls, just one falsy check
        sim = Simulator()
        assert sim._host is None
        fired = []
        sim.at(5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5]

    def test_simulated_cycles_bit_identical(self):
        # acceptance: instrumentation must never perturb simulated time
        kw = dict(threads=4, write_pct=100, iters_per_thread=10,
                  cs_cycles=10, think_cycles=0, seed=3)
        bare = run_microbench(small_test_model(), "lcu", **kw)
        host = HostProfiler()
        prof = run_microbench(small_test_model(), "lcu",
                              host_profiler=host, **kw)
        assert (bare.elapsed, bare.total_cs) == \
            (prof.elapsed, prof.total_cs)
        assert bare.per_thread_cs == prof.per_thread_cs

    def test_queue_counter_cost_is_integer_ops(self):
        # the always-on telemetry is a handful of integer ops per event;
        # guard the *mechanism* (no dict/list churn per event) rather
        # than asserting an unmeasurable sub-2% wall-clock bound in CI
        sim = Simulator()
        for i in range(100):
            sim.at(i, lambda: None)
        sim.run()
        assert sim.heap_pushes == 100
        assert sim.heap_pops == 100
        assert sim.queue_depth_peak == 100
        assert 0 < sim.queue_depth_mean <= 100


# --------------------------------------------------------------------- #
# folded-stack export

def _synthetic_profiler():
    """Deterministic charges — no wall clock involved."""
    host = HostProfiler()

    def handler():  # noqa: E731 - needs a qualname
        pass

    handler.__module__ = "repro.lcu.unit"
    host.charge("engine", 1000)
    host.charge("net", 250)
    host.charge_event(handler, 400)
    host.charge("lcu", 100)  # beyond the handler: subsystem overhead
    return host


class TestFolded:
    def test_rows_cover_all_charged_time(self):
        host = _synthetic_profiler()
        total = 0
        for line in host.folded().strip().split("\n"):
            path, ns = line.rsplit(" ", 1)
            root, sub, _frame = path.split(";")
            assert root == "host"
            assert sub in SUBSYSTEMS
            total += int(ns)
        assert total == host.to_dict()["total_ns"]

    def test_golden_folded(self, tmp_path):
        host = _synthetic_profiler()
        out = tmp_path / "host.folded"
        host.write_folded(str(out))

        if os.environ.get("REPRO_REGEN_GOLDEN"):
            DATA.mkdir(exist_ok=True)
            GOLDEN_FOLDED.write_text(out.read_text())
            pytest.skip("golden host folded stack regenerated")

        assert GOLDEN_FOLDED.exists(), (
            "golden file missing; run with REPRO_REGEN_GOLDEN=1"
        )
        assert out.read_text() == GOLDEN_FOLDED.read_text()


# --------------------------------------------------------------------- #
# host-section / trajectory validation

def _valid_cell():
    return {
        "lock": "lcu", "model": "A", "threads": 4, "write_pct": 100,
        "simulated_cycles": 1000, "cycles_per_host_sec": 2.0e6,
        "engine": {"events_processed": 10},
    }


def _valid_record(label=None):
    rec = {"env": env_fingerprint(), "time_utc": "2026-01-01T00:00:00Z",
           "cells": [_valid_cell()]}
    if label:
        rec["label"] = label
    return rec


class TestValidation:
    def test_valid_host_section(self):
        validate_host_section(_synthetic_profiler().to_dict())

    @pytest.mark.parametrize("mutation", [
        {"total_ns": "many"},
        {"subsystems": []},
        {"subsystems": {"engine": "x"}},
        {"handlers": 3},
    ])
    def test_bad_host_section(self, mutation):
        section = _synthetic_profiler().to_dict()
        section.update(mutation)
        with pytest.raises(HostProfileError):
            validate_host_section(section)

    def test_valid_record(self):
        validate_record(_valid_record())

    @pytest.mark.parametrize("strip", ["env", "cells"])
    def test_record_missing_key(self, strip):
        rec = _valid_record()
        del rec[strip]
        with pytest.raises(HostProfileError):
            validate_record(rec)

    @pytest.mark.parametrize("mutation", [
        {"lock": 3},
        {"threads": "four"},
        {"cycles_per_host_sec": None},
        {"engine": []},
    ])
    def test_bad_cell(self, mutation):
        rec = _valid_record()
        rec["cells"][0].update(mutation)
        with pytest.raises(HostProfileError):
            validate_record(rec)

    def test_trajectory_shape(self):
        t = empty_trajectory()
        assert is_trajectory(t)
        validate_trajectory(t)
        assert not is_trajectory({"schema": "repro.run-report"})
        with pytest.raises(HostProfileError):
            validate_trajectory({"schema": "repro.bench-trajectory",
                                 "version": 99, "records": []})


class TestTrajectoryFile:
    def test_missing_file_loads_empty(self, tmp_path):
        t = load_trajectory(str(tmp_path / "nope.json"))
        assert t["records"] == []

    def test_append_grows(self, tmp_path):
        path = str(tmp_path / "t.json")
        append_record(path, _valid_record())
        t = append_record(path, _valid_record())
        assert len(t["records"]) == 2
        validate_trajectory(load_trajectory(path))

    def test_append_same_label_replaces(self, tmp_path):
        # idempotence: re-running a labelled bench updates the record
        # in place instead of growing the trajectory forever
        path = str(tmp_path / "t.json")
        a = _valid_record("ci")
        append_record(path, a)
        b = _valid_record("ci")
        b["cells"][0]["cycles_per_host_sec"] = 9.0e6
        t = append_record(path, b)
        assert len(t["records"]) == 1
        assert t["records"][0]["cells"][0]["cycles_per_host_sec"] == 9.0e6

    def test_append_validates(self, tmp_path):
        with pytest.raises(HostProfileError):
            append_record(str(tmp_path / "t.json"), {"cells": []})

    def test_write_and_latest(self, tmp_path):
        path = str(tmp_path / "t.json")
        t = empty_trajectory()
        t["records"] = [_valid_record("a"), _valid_record("b")]
        write_trajectory(path, t)
        assert latest_record(load_trajectory(path))["label"] == "b"
        assert latest_record(t, 0)["label"] == "a"
        assert latest_record(t, -2)["label"] == "a"
        with pytest.raises(HostProfileError):
            latest_record(empty_trajectory())


class TestFingerprint:
    def test_fingerprint_keys(self):
        fp = env_fingerprint()
        for key in ("python", "implementation", "platform", "machine",
                    "cpu_count"):
            assert key in fp

    def test_mismatch_detection(self):
        a = env_fingerprint()
        b = dict(a, python="9.9.9")
        assert fingerprint_mismatches(a, a) == []
        mism = fingerprint_mismatches(a, b)
        assert mism == [("python", a["python"], "9.9.9")]


# --------------------------------------------------------------------- #
# registry HostTimer (satellite f)

class TestHostTimer:
    def test_accumulates_into_counter(self):
        reg = MetricsRegistry()
        timer = reg.timer("x.host_ns")
        timer.start()
        elapsed = timer.stop()
        assert elapsed >= 0
        assert reg.counter("x.host_ns").value == elapsed

    def test_no_per_sample_dict_churn(self):
        # the timer holds one counter reference; repeated start/stop
        # must not allocate registry entries per sample
        reg = MetricsRegistry()
        timer = reg.timer("x.host_ns")
        for _ in range(10):
            with timer:
                pass
        assert list(reg.to_dict()["counters"]) == ["x.host_ns"]
        assert reg.counter("x.host_ns").value >= 0

    def test_stop_when_idle_is_zero(self):
        timer = MetricsRegistry().timer("x.host_ns")
        assert timer.stop() == 0

    def test_fake_clock(self, monkeypatch):
        reg = MetricsRegistry()
        timer = reg.timer("x.host_ns")
        ticks = iter([100, 350])
        monkeypatch.setattr(
            HostTimer, "clock", staticmethod(lambda: next(ticks))
        )
        with timer:
            pass
        assert reg.counter("x.host_ns").value == 250
