"""Tests for the machine configurations (paper Figure 8)."""

import dataclasses

import pytest

from repro.params import figure8_rows, model_a, model_b, small_test_model


class TestModelA:
    def test_figure8_values(self):
        a = model_a()
        assert a.cores == 32
        assert a.chips == 32 and a.cores_per_chip == 1
        assert a.l1_latency == 3
        assert a.l2_latency == 10
        assert a.local_mem_latency == 186
        assert a.remote_mem_latency == 186
        assert a.lcu_ordinary_entries == 8
        assert a.lcu_latency == 3
        assert a.num_lrts == 32
        assert a.lrt_entries == 512 and a.lrt_assoc == 16
        assert a.lrt_latency == 6
        assert a.global_order


class TestModelB:
    def test_figure8_values(self):
        b = model_b()
        assert b.cores == 32
        assert b.chips == 4 and b.cores_per_chip == 8
        assert b.l2_latency == 16
        assert b.local_mem_latency == 210
        assert b.remote_mem_latency == 315
        assert b.lcu_ordinary_entries == 16
        assert b.num_lrts == 8
        assert not b.global_order

    def test_chip_of_core(self):
        b = model_b()
        assert b.chip_of_core(0) == 0
        assert b.chip_of_core(7) == 0
        assert b.chip_of_core(8) == 1
        assert b.chip_of_core(31) == 3


class TestValidation:
    def test_overrides(self):
        a = model_a(chips=4, num_lrts=4)
        assert a.cores == 4

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            model_a(line_size=48)

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            model_a(chips=0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            model_a().chips = 4  # type: ignore[misc]


class TestFigure8Table:
    def test_rows_cover_both_models(self):
        rows = figure8_rows()
        assert rows[0] == ["Parameter", "Model A", "Model B"]
        labels = [r[0] for r in rows[1:]]
        assert "LCU entries" in labels
        assert "per-LRT entries" in labels
        # every row has one value per model
        assert all(len(r) == 3 for r in rows)

    def test_known_cells(self):
        rows = {r[0]: r[1:] for r in figure8_rows()[1:]}
        assert rows["Chips"] == ["32", "4"]
        assert rows["LCU entries"] == ["8+2", "16+2"]

    def test_small_model_is_small(self):
        t = small_test_model()
        assert t.cores <= 8
