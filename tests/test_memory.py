"""Tests for the coherence/memory model."""

import pytest

from repro import Machine, small_test_model
from repro.mem.memory import READ, RMW, WRITE, Allocator


@pytest.fixture
def m():
    return Machine(small_test_model())


def access(m, core, addr, kind, **kw):
    """Synchronous wrapper: run the sim until the access completes."""
    out = []
    m.mem.access(core, addr, kind, out.append, **kw)
    m.sim.run(stop_when=lambda: bool(out))
    assert out, "access never completed"
    return out[0]


class TestAllocator:
    def test_line_alignment(self):
        a = Allocator(line_size=64)
        x, y = a.alloc_line(), a.alloc_line()
        assert x % 64 == 0 and y % 64 == 0
        assert y - x == 64

    def test_alloc_words_padded_to_lines(self):
        a = Allocator(line_size=64)
        x = a.alloc_words(3)
        y = a.alloc_line()
        assert y - x == 64  # 3 words round up to one line

    def test_alloc_words_multi_line(self):
        a = Allocator(line_size=64)
        x = a.alloc_words(9)  # 72 bytes -> 2 lines
        y = a.alloc_line()
        assert y - x == 128


class TestBasicAccess:
    def test_read_default_zero(self, m):
        addr = m.alloc.alloc_line()
        assert access(m, 0, addr, READ) == 0

    def test_write_then_read(self, m):
        addr = m.alloc.alloc_line()
        access(m, 0, addr, WRITE, value=42)
        assert access(m, 0, addr, READ) == 42
        assert m.mem.peek(addr) == 42

    def test_rmw_returns_old(self, m):
        addr = m.alloc.alloc_line()
        access(m, 0, addr, WRITE, value=5)
        old = access(m, 0, addr, RMW, rmw=lambda v: v + 1)
        assert old == 5
        assert m.mem.peek(addr) == 6

    def test_hit_faster_than_miss(self, m):
        addr = m.alloc.alloc_line()
        t0 = m.sim.now
        access(m, 0, addr, READ)
        miss_time = m.sim.now - t0
        t0 = m.sim.now
        access(m, 0, addr, READ)
        hit_time = m.sim.now - t0
        assert hit_time < miss_time
        assert hit_time == m.config.l1_latency

    def test_first_touch_charges_memory(self, m):
        a1 = m.alloc.alloc_line()
        t0 = m.sim.now
        access(m, 0, a1, READ)
        cold = m.sim.now - t0
        t0 = m.sim.now
        access(m, 1, a1, READ)  # warm at directory, still a miss for core 1
        warm = m.sim.now - t0
        assert cold > warm


class TestCoherence:
    def test_write_invalidates_sharers(self, m):
        addr = m.alloc.alloc_line()
        access(m, 0, addr, READ)
        access(m, 1, addr, READ)
        assert m.mem.has_line(0, addr) and m.mem.has_line(1, addr)
        access(m, 2, addr, WRITE, value=1)
        assert not m.mem.has_line(0, addr)
        assert not m.mem.has_line(1, addr)
        assert m.mem.has_line(2, addr)

    def test_read_downgrades_owner(self, m):
        addr = m.alloc.alloc_line()
        access(m, 0, addr, WRITE, value=7)
        assert access(m, 1, addr, READ) == 7
        # both should now share
        assert m.mem.has_line(0, addr) and m.mem.has_line(1, addr)

    def test_line_signal_fires_on_invalidation(self, m):
        addr = m.alloc.alloc_line()
        access(m, 0, addr, READ)
        fired = []
        m.mem.line_signal(0, addr).wait(lambda _: fired.append(m.sim.now))
        access(m, 1, addr, WRITE, value=1)
        assert fired

    def test_same_line_words_share_state(self, m):
        base = m.alloc.alloc_line()
        access(m, 0, base, READ)
        assert m.mem.has_line(0, base + 8)

    def test_invalidation_count(self, m):
        addr = m.alloc.alloc_line()
        for c in range(3):
            access(m, c, addr, READ)
        before = m.mem.invalidations
        access(m, 3, addr, WRITE, value=1)
        assert m.mem.invalidations == before + 3


class TestAtomicity:
    def test_concurrent_rmws_all_linearize(self, m):
        """N concurrent fetch-and-adds must each observe a distinct old
        value (regression for the commit-at-completion bug)."""
        addr = m.alloc.alloc_line()
        olds = []
        for core in range(4):
            m.mem.access(core, addr, RMW, olds.append, rmw=lambda v: v + 1)
        m.sim.run()
        assert sorted(olds) == [0, 1, 2, 3]
        assert m.mem.peek(addr) == 4

    def test_rmw_vs_hit_write_race(self, m):
        """A hit-path RMW must not interleave with a remote RMW
        (regression for the serialization-point bug)."""
        addr = m.alloc.alloc_line()
        access(m, 0, addr, WRITE, value=0)  # core 0 owns the line
        olds = []
        # core 0 issues a hit-path RMW; core 1 a miss-path RMW, same cycle
        m.mem.access(0, addr, RMW, olds.append, rmw=lambda v: v + 1)
        m.mem.access(1, addr, RMW, olds.append, rmw=lambda v: v + 1)
        m.sim.run()
        assert sorted(olds) == [0, 1]
        assert m.mem.peek(addr) == 2

    def test_read_after_write_grant_sees_data(self, m):
        """Once the directory grants a write, any later read must observe
        the written value (regression for the model-B MCS deadlock)."""
        addr = m.alloc.alloc_line()
        access(m, 1, addr, READ)  # core 1 caches the line
        vals = []
        m.mem.access(0, addr, WRITE, lambda _: None, value=9)
        # queue a read right behind the write at the directory
        m.mem.access(2, addr, READ, vals.append)
        m.sim.run()
        assert vals == [9]
