"""End-to-end telemetry smoke: a minimal figure sweep through the CLI
with ``--metrics-out`` / ``--trace-out`` must produce a schema-valid
RunReport and a Perfetto-loadable Chrome trace."""

import json

import pytest

from repro.harness import figures
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    build_run_report,
    load_run_report,
    validate_chrome_trace,
)


@pytest.mark.telemetry
class TestTelemetrySmoke:
    def test_fig9a_minimal_with_artifacts(self, tmp_path):
        registry = MetricsRegistry()
        tracer = SpanTracer()
        result = figures.figure9(
            "A", thread_counts=(2, 4), write_ratios=(100,),
            iters_per_thread=5,
            registry=registry, tracer=tracer, sample_interval=2000,
        )

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        report = build_run_report(
            "figure",
            {"figure": "fig9a", "scale": 0},
            {"figure": result.figure, "xs": result.xs,
             "series": result.series, "checks": result.checks},
            metrics=registry.to_dict(),
        )
        from repro.obs import write_run_report

        write_run_report(str(metrics_path), report)
        tracer.write_chrome_trace(str(trace_path))

        # both artifacts validate
        loaded = load_run_report(str(metrics_path))
        assert loaded["kind"] == "figure"
        assert loaded["results"]["figure"] == "fig9a"
        counters = loaded["metrics"]["counters"]
        # counters accumulated across all four runs of the sweep
        assert counters["engine.events_processed"] > 0
        assert counters["lcu.total.acquires"] > 0
        assert counters["ssb.acquires"] > 0
        assert counters["bench.total_cs"] == (2 + 4) * 5 * 2  # both locks
        # gauge time series were sampled
        assert loaded["metrics"]["series"]

        trace = json.loads(trace_path.read_text())
        validate_chrome_trace(trace)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        cats = {e["cat"] for e in xs}
        assert "lock" in cats and "net" in cats

    def test_cli_microbench_artifacts(self, tmp_path):
        from repro.__main__ import main as repro_main

        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        rc = repro_main([
            "microbench", "--lock", "lcu", "--threads", "4",
            "--iters", "10",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
            "--sample-interval", "1000",
        ])
        assert rc == 0
        report = load_run_report(str(metrics_path))
        assert report["kind"] == "microbench"
        assert report["config"]["machine"]["name"] == "A"
        assert report["results"]["total_cs"] == 40
        validate_chrome_trace(json.loads(trace_path.read_text()))

        # the report verb accepts what --metrics-out wrote
        assert repro_main(["report", str(metrics_path)]) == 0

    def test_report_verb_rejects_invalid(self, tmp_path):
        from repro.__main__ import main as repro_main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert repro_main(["report", str(bad)]) == 1
        assert repro_main(["report", str(tmp_path / "missing.json")]) == 2
