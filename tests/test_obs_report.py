"""Unit + golden-file tests for run reports (repro.obs.report).

The golden files pin the exported JSON byte-for-byte for a small,
deterministic run.  If the schema or exporters change intentionally,
regenerate with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_report.py
"""

import json
import os
import pathlib

import pytest

from repro.harness.microbench import run_microbench
from repro.obs import (
    MetricsRegistry,
    ReportValidationError,
    SpanTracer,
    build_run_report,
    load_run_report,
    summarize_run_report,
    validate_chrome_trace,
    validate_run_report,
    write_run_report,
)
from repro.params import small_test_model

DATA = pathlib.Path(__file__).parent / "data"
GOLDEN_REPORT = DATA / "golden_run_report.json"
GOLDEN_TRACE = DATA / "golden_trace.json"


class TestBuildValidate:
    def test_roundtrip(self, tmp_path):
        report = build_run_report(
            "microbench",
            {"lock": "lcu", "threads": 2},
            {"cycles_per_cs": 81.5, "nan_field": float("nan")},
        )
        assert report["results"]["nan_field"] is None  # JSON has no NaN
        path = tmp_path / "r.json"
        write_run_report(str(path), report)
        assert load_run_report(str(path)) == report

    def test_dataclass_coercion(self):
        import dataclasses

        @dataclasses.dataclass
        class R:
            x: int
            ys: tuple

        report = build_run_report("stm", {"a": 1}, R(3, (1, 2)))
        assert report["results"] == {"x": 3, "ys": [1, 2]}

    @pytest.mark.parametrize(
        "mutation",
        [
            {"schema": "other"},
            {"version": 99},
            {"kind": "nope"},
            {"config": []},
            {"results": 3},
            {"metrics": {"counters": {"c": "NaN"}, "gauges": {},
                         "histograms": {}, "series": {}}},
            {"metrics": {"counters": {}, "gauges": {},
                         "histograms": {"h": {"count": 1}}, "series": {}}},
            {"metrics": {"counters": {}, "gauges": {}, "histograms": {},
                         "series": {"s": [[1]]}}},
        ],
    )
    def test_validation_failures(self, mutation):
        report = build_run_report("app", {}, {})
        report.update(mutation)
        with pytest.raises(ReportValidationError):
            validate_run_report(report)

    def test_error_lists_every_problem(self):
        bad = {"schema": "x", "version": 0, "kind": "y",
               "config": 1, "results": 2, "metrics": 3}
        with pytest.raises(ReportValidationError) as exc:
            validate_run_report(bad)
        assert len(exc.value.errors) >= 5

    def test_summarize(self):
        reg = MetricsRegistry()
        reg.counter("net.messages_sent").inc(7)
        report = build_run_report(
            "microbench", {"lock": "lcu", "threads": 4},
            {"cycles_per_cs": 80.0}, metrics=reg.to_dict(),
        )
        text = summarize_run_report(report)
        assert "kind=microbench" in text
        assert "lock=lcu" in text
        assert "cycles_per_cs = 80" in text
        assert "net.messages_sent = 7" in text


def _golden_run():
    """One tiny, fully deterministic instrumented run."""
    registry = MetricsRegistry()
    tracer = SpanTracer()
    result = run_microbench(
        small_test_model(), "lcu", threads=2, write_pct=100,
        iters_per_thread=3, cs_cycles=10, think_cycles=0, seed=1,
        registry=registry, tracer=tracer, sample_interval=200,
    )
    report = build_run_report(
        "microbench",
        {"lock": "lcu", "model": "T", "threads": 2, "write_pct": 100,
         "iters_per_thread": 3, "seed": 1},
        result,
        metrics=registry.to_dict(),
    )
    return report, tracer


class TestGolden:
    def test_golden_files(self, tmp_path):
        report, tracer = _golden_run()
        report_path = tmp_path / "report.json"
        trace_path = tmp_path / "trace.json"
        write_run_report(str(report_path), report)
        tracer.write_chrome_trace(str(trace_path))

        if os.environ.get("REPRO_REGEN_GOLDEN"):
            DATA.mkdir(exist_ok=True)
            GOLDEN_REPORT.write_text(report_path.read_text())
            GOLDEN_TRACE.write_text(trace_path.read_text())
            pytest.skip("golden files regenerated")

        assert GOLDEN_REPORT.exists(), (
            "golden file missing; run with REPRO_REGEN_GOLDEN=1"
        )
        assert report_path.read_text() == GOLDEN_REPORT.read_text()
        assert trace_path.read_text() == GOLDEN_TRACE.read_text()

    def test_golden_artifacts_valid(self):
        validate_run_report(json.loads(GOLDEN_REPORT.read_text()))
        validate_chrome_trace(json.loads(GOLDEN_TRACE.read_text()))
