"""Tests for the interconnect model."""

import pytest

from repro.net.network import Network
from repro.params import model_a, model_b, small_test_model
from repro.sim.engine import Simulator


def make_net(config):
    sim = Simulator()
    chips = {}

    def chip_of(ep):
        kind, idx = ep
        if kind == "core":
            return config.chip_of_core(idx)
        return idx * config.chips // config.num_lrts

    net = Network(sim, config, chip_of)
    return sim, net


class TestDelivery:
    def test_basic_delivery(self):
        sim, net = make_net(small_test_model())
        got = []
        net.register(("core", 0), lambda src, p: got.append((src, p)))
        net.register(("core", 1), lambda src, p: got.append((src, p)))
        net.send(("core", 0), ("core", 1), "hello")
        sim.run()
        assert got == [(("core", 0), "hello")]

    def test_self_send_fast(self):
        sim, net = make_net(small_test_model())
        got = []
        net.register(("core", 0), lambda src, p: got.append(sim.now))
        net.send(("core", 0), ("core", 0), "x")
        sim.run()
        assert got == [1]

    def test_unregistered_destination_raises(self):
        sim, net = make_net(small_test_model())
        net.register(("core", 0), lambda s, p: None)
        with pytest.raises(KeyError):
            net.send(("core", 0), ("core", 5), "x")

    def test_duplicate_registration_rejected(self):
        _sim, net = make_net(small_test_model())
        net.register(("core", 0), lambda s, p: None)
        with pytest.raises(ValueError):
            net.register(("core", 0), lambda s, p: None)

    def test_on_deliver_runs_after_handler(self):
        sim, net = make_net(small_test_model())
        order = []
        net.register(("core", 0), lambda s, p: None)
        net.register(("core", 1), lambda s, p: order.append("handler"))
        net.send(("core", 0), ("core", 1), "x",
                 on_deliver=lambda: order.append("cb"))
        sim.run()
        assert order == ["handler", "cb"]


class TestOrdering:
    def test_per_pair_fifo(self):
        """The LCU/LRT protocol relies on src->dst FIFO delivery."""
        sim, net = make_net(model_b(chips=2, num_lrts=2))
        got = []
        net.register(("core", 0), lambda s, p: None)
        net.register(("core", 9), lambda s, p: got.append(p))
        for i in range(20):
            net.send(("core", 0), ("core", 9), i)
        sim.run()
        assert got == list(range(20))


class TestLatency:
    def test_intra_vs_inter_chip(self):
        cfg = model_b()
        sim, net = make_net(cfg)
        assert net.latency_estimate(("core", 0), ("core", 1)) == cfg.intra_chip_hop
        assert net.latency_estimate(("core", 0), ("core", 9)) == cfg.inter_chip_hop

    def test_model_a_flat(self):
        cfg = model_a()
        _sim, net = make_net(cfg)
        assert net.latency_estimate(("core", 0), ("core", 31)) == cfg.intra_chip_hop

    def test_inter_chip_slower_end_to_end(self):
        cfg = model_b()
        sim, net = make_net(cfg)
        times = {}
        net.register(("core", 0), lambda s, p: None)
        net.register(("core", 1), lambda s, p: times.__setitem__("near", sim.now))
        net.register(("core", 30), lambda s, p: times.__setitem__("far", sim.now))
        net.send(("core", 0), ("core", 1), "x")
        net.send(("core", 0), ("core", 30), "y")
        sim.run()
        assert times["far"] > times["near"]


class TestContention:
    def test_hub_links_saturate(self):
        """Flooding inter-chip traffic must queue on the hub links —
        the mechanism behind the paper's Figure 9b SSB collapse."""
        cfg = model_b()
        sim, net = make_net(cfg)
        deliveries = []
        net.register(("core", 0), lambda s, p: None)
        net.register(("core", 31), lambda s, p: deliveries.append(sim.now))
        n = 50
        for _ in range(n):
            net.send(("core", 0), ("core", 31), "x")
        sim.run()
        assert len(deliveries) == n
        # queueing spreads deliveries by at least the hub service time
        gaps = [b - a for a, b in zip(deliveries, deliveries[1:])]
        assert min(gaps) >= cfg.inter_chip_link_service
        assert net.hub_utilisation() > 0
        assert net.inter_chip_messages == n

    def test_intra_chip_not_throttled_by_hubs(self):
        cfg = model_b()
        sim, net = make_net(cfg)
        net.register(("core", 0), lambda s, p: None)
        net.register(("core", 1), lambda s, p: None)
        for _ in range(10):
            net.send(("core", 0), ("core", 1), "x")
        sim.run()
        assert net.inter_chip_messages == 0
        assert net.hub_utilisation() == 0.0
