"""Differential equivalence: calendar queue vs the reference scheduler.

The engine-speed overhaul replaced the single-heapq event store with a
calendar/bucketed queue (`repro.sim.engine.CalendarQueue`).  The entire
reproduction's determinism contract rides on one property: *the new
store dispatches exactly the same events at exactly the same cycles in
exactly the same order as the old one*.  These tests prove it two ways:

* differentially — run seeded full-stack workloads (locks x models x
  fault plans) twice, once per store, capturing every dispatch through
  ``Simulator.event_hook``, and demand bit-identical event sequences,
  final clocks and results;
* by property — hammer the `CalendarQueue` itself with seeded random
  push/pop interleavings against a sorted-by-(time, seq) oracle.

Everything here carries the ``engine`` marker (CI runs it as its own
gate).
"""

from __future__ import annotations

import random

import pytest

from repro.cpu.machine import Machine
from repro.cpu.os_sched import OS
from repro.faults.injector import FaultInjector
from repro.faults.plan import generate_plan
from repro.locks.base import get_algorithm
from repro.params import model_a, model_b, small_test_model
from repro.sim.engine import CalendarQueue, ReferenceScheduler, Signal, Simulator

from .conftest import RWTracker, cs_program

pytestmark = pytest.mark.engine


# --------------------------------------------------------------------- #
# event-order capture


def _label(fn) -> str:
    """Stable identity of an event callable across two separate machine
    builds: the qualified name of the underlying function (closures,
    bound methods) or of the callable's class (slotted frame objects)."""
    func = getattr(fn, "__func__", fn)
    qual = getattr(func, "__qualname__", None)
    if qual is None:
        qual = type(fn).__qualname__
    return qual


def _run_workload(scheduler, config_factory, lock_name, seed,
                  fault_classes=None, threads=5, iters=12):
    """Run one seeded workload on the given event store and return the
    captured ``(cycle, handler)`` dispatch sequence plus end-state."""
    machine = Machine(config_factory(), scheduler=scheduler)
    os_ = OS(machine)
    algo = get_algorithm(lock_name)(machine)
    handle = algo.make_lock()
    tracker = RWTracker()

    def write_of(thread, i):
        # pure function of (tid, iteration, seed): identical mode choices
        # on both stores without sharing RNG state across runs
        return (thread.tid * 2654435761 + i * 40503 + seed) % 100 < 60

    if fault_classes:
        plan = generate_plan(seed=seed, classes=fault_classes,
                             horizon=30_000)
        FaultInjector(machine, os_, plan).arm()

    trace = []
    machine.sim.event_hook = lambda t, fn: trace.append((t, _label(fn)))
    for _ in range(threads):
        os_.spawn(cs_program(algo, handle, tracker, iters,
                             write_of=write_of))
    elapsed = os_.run_all(max_cycles=5_000_000)
    machine.sim.event_hook = None
    machine.drain()
    return {
        "trace": trace,
        "elapsed": elapsed,
        "now": machine.sim.now,
        "events": machine.sim.events_processed,
        "cs": tracker.total,
        "violations": tracker.violations,
    }


WORKLOADS = [
    # (config, lock, seed, fault classes)
    (small_test_model, "lcu", 11, None),
    (small_test_model, "mcs", 23, None),
    (small_test_model, "mrsw", 37, None),
    (model_a, "lcu", 5, None),
    (model_b, "lcu", 7, None),
    (model_b, "ticket", 13, None),
    (small_test_model, "lcu", 41, ["preempt"]),
    (small_test_model, "lcu", 43, ["capacity", "evict"]),
]


@pytest.mark.parametrize(
    "config_factory,lock,seed,faults", WORKLOADS,
    ids=[f"{c.__name__}-{l}-s{s}-{'+'.join(f) if f else 'clean'}"
         for c, l, s, f in WORKLOADS],
)
def test_calendar_matches_reference(config_factory, lock, seed, faults):
    """Same workload, both stores: bit-identical dispatch sequence,
    final cycle count and critical-section tally."""
    cal = _run_workload(None, config_factory, lock, seed, faults)
    ref = _run_workload("reference", config_factory, lock, seed, faults)
    assert cal["events"] == ref["events"]
    assert cal["elapsed"] == ref["elapsed"]
    assert cal["now"] == ref["now"]
    assert cal["cs"] == ref["cs"]
    # the load-bearing assertion: event-by-event order parity
    assert cal["trace"] == ref["trace"]


def test_microbench_metrics_match_reference():
    """RunReport-level simulated metrics agree between the stores."""
    from repro.harness.microbench import run_microbench

    kw = dict(threads=6, write_pct=40, iters_per_thread=20, seed=9)
    a = run_microbench(small_test_model(), "lcu", **kw)

    import repro.harness.microbench as mb
    import repro.cpu.machine as machine_mod

    class RefMachine(machine_mod.Machine):
        def __init__(self, config, tiebreak_seed=None, scheduler=None):
            super().__init__(config, tiebreak_seed, scheduler="reference")

    orig = mb.Machine
    mb.Machine = RefMachine
    try:
        b = run_microbench(small_test_model(), "lcu", **kw)
    finally:
        mb.Machine = orig
    assert a.elapsed == b.elapsed
    assert a.total_cs == b.total_cs
    assert a.per_thread_cs == b.per_thread_cs
    assert a.acquire_latency_mean == b.acquire_latency_mean
    assert a.fairness == b.fairness


def test_tiebreak_still_perturbs_order():
    """The schedule fuzzer's perturbation survives the rewrite: a
    tiebreak seed selects the reference store and produces a different
    (but internally deterministic) interleaving."""
    base = _run_workload(None, small_test_model, "lcu", 3, threads=6)
    tb = []
    for _ in range(2):
        machine = Machine(small_test_model(), tiebreak_seed=99)
        os_ = OS(machine)
        algo = get_algorithm("lcu")(machine)
        handle = algo.make_lock()
        tracker = RWTracker()
        trace = []
        machine.sim.event_hook = lambda t, fn: trace.append((t, _label(fn)))
        for _ in range(6):
            os_.spawn(cs_program(algo, handle, tracker, 12))
        os_.run_all(max_cycles=5_000_000)
        machine.sim.event_hook = None
        machine.drain()
        tb.append(trace)
    assert tb[0] == tb[1], "tiebreak runs must replay exactly"
    assert tb[0] != base["trace"], "tiebreak must actually perturb order"


# --------------------------------------------------------------------- #
# calendar-queue property tests (seeded in-repo generators)


def _oracle_order(pushes):
    """Expected dispatch order: by time, then push sequence (FIFO)."""
    return [fn for _t, _seq, fn in
            sorted(((t, i, fn) for i, (t, fn) in enumerate(pushes)),
                   key=lambda x: (x[0], x[1]))]


@pytest.mark.parametrize("seed", range(8))
def test_push_pop_monotone_and_fifo(seed):
    """Random interleavings of pushes and pops: pops come out in
    nondecreasing time order, same-cycle pops in push (FIFO) order, and
    ``size`` tracks exactly."""
    rng = random.Random(seed * 7919 + 1)
    q = CalendarQueue()
    pushed = []           # (time, tag) in push order
    popped = []
    clock = 0
    next_tag = 0
    for _ in range(600):
        if q.size and rng.random() < 0.4:
            t, fn = q.pop()
            assert t >= clock, "pop must never go backwards in time"
            clock = t
            popped.append((t, fn))
        else:
            t = clock + rng.randrange(0, 12)
            tag = next_tag
            next_tag += 1
            q.push(t, ("ev", t, tag))
            pushed.append((t, ("ev", t, tag)))
        assert len(q) == len(pushed) - len(popped)
    while q.size:
        t, fn = q.pop()
        assert t >= clock
        clock = t
        popped.append((t, fn))
    assert [fn for _t, fn in popped] == _oracle_order(pushed)


@pytest.mark.parametrize("seed", range(4))
def test_calendar_agrees_with_reference_store(seed):
    """Drain both stores over an identical random push schedule."""
    rng = random.Random(seed * 104729 + 3)
    q = CalendarQueue()
    ref = ReferenceScheduler()
    for i in range(500):
        t = rng.randrange(0, 64)
        q.push(t, i)
        ref.push(t, i)
    out_q = [q.pop() for _ in range(500)]
    out_ref = [ref.pop() for _ in range(500)]
    assert out_q == out_ref


def test_bucket_pool_rollover_and_cap():
    """Drained bucket lists recycle through the pool; the pool never
    exceeds its cap; recycled buckets come back empty."""
    q = CalendarQueue(pool_cap=4)
    for round_ in range(10):
        for t in range(8):
            q.push(round_ * 100 + t, ("e", round_, t))
        while q.size:
            q.pop()
        assert len(q.pool) <= 4
        assert all(b == [] for b in q.pool)
        assert not q.buckets and not q.times


def test_batched_advance_skips_empty_cycles():
    """The clock jumps straight across arbitrarily long empty gaps."""
    sim = Simulator()
    hits = []
    sim.at(5, lambda: hits.append(sim.now))
    sim.at(1_000_000_007, lambda: hits.append(sim.now))
    n = sim.run()
    assert n == 2
    assert hits == [5, 1_000_000_007]
    assert sim.now == 1_000_000_007


def test_signal_cancel_and_rearm():
    """Signal wait / cancel / re-arm keep working over the calendar
    store: a cancelled waiter never fires, a re-armed one fires once."""
    sim = Simulator()
    fired = []
    sig = Signal(sim)
    token = sig.wait(lambda _p: fired.append("a"))
    sig.cancel(token)
    sig.wait(lambda _p: fired.append("b"))
    sim.at(10, sig.fire)
    sim.run()
    assert fired == ["b"]
    # re-arm after a fire: next fire resumes the new waiter only
    sig.wait(lambda _p: fired.append("c"))
    sim.at(20, sig.fire)
    sim.run()
    assert fired == ["b", "c"]


def test_same_cycle_appends_dispatch_this_cycle():
    """An event scheduled *for the current cycle* from inside a handler
    joins the tail of the live bucket and runs before time advances —
    on both stores."""
    for scheduler in (None, "reference"):
        sim = Simulator(scheduler=scheduler)
        order = []

        def first():
            order.append("first")
            sim.at(sim.now, lambda: order.append("chained"))

        sim.at(7, first)
        sim.at(7, lambda: order.append("second"))
        sim.at(8, lambda: order.append("later"))
        sim.run()
        assert order == ["first", "second", "chained", "later"]


def test_raise_mid_bucket_keeps_store_consistent():
    """A handler raising mid-bucket must leave the queue resumable:
    already-dispatched events gone, the rest still queued — including
    the corner case where the raiser was the bucket's last event."""
    for position in ("middle", "last"):
        sim = Simulator()
        ran = []
        sim.at(5, lambda: ran.append("a"))
        if position == "middle":
            sim.at(5, self_destruct := _raiser())
            sim.at(5, lambda: ran.append("b"))
        else:
            sim.at(5, self_destruct := _raiser())
        sim.at(9, lambda: ran.append("tail"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        # resumable: remaining events drain cleanly
        sim.run()
        expect = ["a", "b", "tail"] if position == "middle" else ["a", "tail"]
        assert ran == expect


def _raiser():
    def boom():
        raise RuntimeError("boom")
    return boom
