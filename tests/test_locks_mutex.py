"""Correctness tests for every mutual-exclusion-capable lock algorithm."""

import random

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.locks import all_algorithms, get_algorithm
from tests.conftest import RWTracker, cs_program

MUTEX_LOCKS = [
    "tas", "tatas", "ticket", "mcs", "clh", "tpmcs", "hbo", "mao", "mrsw", "snzi",
    "pthread",
    "lcu", "ssb",
]
TRYLOCK_LOCKS = [
    n for n in MUTEX_LOCKS if all_algorithms()[n].trylock_support
]
FAIR_LOCKS = [n for n in MUTEX_LOCKS if all_algorithms()[n].fair]


def build(lock_name, **cfg_overrides):
    m = Machine(small_test_model(**cfg_overrides))
    algo = get_algorithm(lock_name)(m)
    return m, algo


@pytest.mark.parametrize("lock_name", MUTEX_LOCKS)
class TestMutualExclusion:
    def test_exclusion_matched_cores(self, lock_name):
        m, algo = build(lock_name)
        os_ = OS(m)
        tracker = RWTracker()
        h = algo.make_lock()
        for _ in range(4):
            os_.spawn(cs_program(algo, h, tracker, iters=15))
        os_.run_all(max_cycles=500_000_000)
        tracker.assert_clean()
        assert tracker.total == 4 * 15

    def test_exclusion_oversubscribed(self, lock_name):
        m, algo = build(lock_name)
        os_ = OS(m, quantum=2_000)
        tracker = RWTracker()
        h = algo.make_lock()
        for _ in range(10):
            os_.spawn(cs_program(algo, h, tracker, iters=10))
        os_.run_all(max_cycles=500_000_000)
        tracker.assert_clean()
        assert tracker.total == 100

    def test_two_independent_locks(self, lock_name):
        m, algo = build(lock_name)
        os_ = OS(m)
        t1, t2 = RWTracker(), RWTracker()
        h1, h2 = algo.make_lock(), algo.make_lock()
        os_.spawn(cs_program(algo, h1, t1, iters=10))
        os_.spawn(cs_program(algo, h1, t1, iters=10))
        os_.spawn(cs_program(algo, h2, t2, iters=10))
        os_.spawn(cs_program(algo, h2, t2, iters=10))
        os_.run_all(max_cycles=500_000_000)
        t1.assert_clean()
        t2.assert_clean()

    def test_handoff_advances_data(self, lock_name):
        """Use the lock to protect a shared counter in simulated memory."""
        m, algo = build(lock_name)
        os_ = OS(m)
        h = algo.make_lock()
        counter = m.alloc.alloc_line()

        def prog(thread):
            for _ in range(20):
                yield from algo.lock(thread, h, True)
                v = yield ops.Load(counter)
                yield ops.Compute(5)
                yield ops.Store(counter, v + 1)
                yield from algo.unlock(thread, h, True)

        for _ in range(4):
            os_.spawn(prog)
        os_.run_all(max_cycles=500_000_000)
        assert m.mem.peek(counter) == 80


@pytest.mark.parametrize("lock_name", TRYLOCK_LOCKS)
class TestTrylock:
    def test_trylock_uncontended_succeeds(self, lock_name):
        m, algo = build(lock_name)
        os_ = OS(m)
        h = algo.make_lock()
        results = []

        def prog(thread):
            ok = yield from algo.trylock(thread, h, True, retries=20)
            results.append(ok)
            if ok:
                yield ops.Compute(10)
                yield from algo.unlock(thread, h, True)

        os_.spawn(prog)
        os_.run_all(max_cycles=100_000_000)
        assert results == [True]

    def test_trylock_contended_can_fail(self, lock_name):
        m, algo = build(lock_name)
        os_ = OS(m)
        h = algo.make_lock()
        results = []

        def holder(thread):
            yield from algo.lock(thread, h, True)
            yield ops.Compute(200_000)  # hold a long time
            yield from algo.unlock(thread, h, True)

        def contender(thread):
            yield ops.Compute(2_000)  # let the holder get it first
            ok = yield from algo.trylock(thread, h, True, retries=2)
            results.append(ok)
            if ok:
                yield from algo.unlock(thread, h, True)

        os_.spawn(holder)
        os_.spawn(contender)
        os_.run_all(max_cycles=100_000_000)
        assert results == [False]

    def test_lock_usable_after_failed_trylock(self, lock_name):
        """An abandoned trylock must not wedge the lock."""
        m, algo = build(lock_name)
        os_ = OS(m)
        h = algo.make_lock()
        tracker = RWTracker()

        def holder(thread):
            yield from algo.lock(thread, h, True)
            tracker.enter(True)
            yield ops.Compute(50_000)
            tracker.exit(True)
            yield from algo.unlock(thread, h, True)

        def try_then_lock(thread):
            yield ops.Compute(1_000)
            ok = yield from algo.trylock(thread, h, True, retries=2)
            assert not ok
            yield ops.Compute(500)
            yield from algo.lock(thread, h, True)  # now block properly
            tracker.enter(True)
            yield ops.Compute(10)
            tracker.exit(True)
            yield from algo.unlock(thread, h, True)

        os_.spawn(holder)
        os_.spawn(try_then_lock)
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert tracker.total == 2


@pytest.mark.parametrize("lock_name", FAIR_LOCKS)
class TestFairness:
    def test_roughly_fifo_service(self, lock_name):
        """Fair locks: under symmetric load, acquisition counts should be
        close to uniform."""
        m, algo = build(lock_name)
        os_ = OS(m)
        h = algo.make_lock()
        counts = {}
        deadline = 200_000

        def prog(thread):
            while m.sim.now < deadline:
                yield from algo.lock(thread, h, True)
                yield ops.Compute(30)
                counts[thread.tid] = counts.get(thread.tid, 0) + 1
                yield from algo.unlock(thread, h, True)

        for _ in range(4):
            os_.spawn(prog)
        os_.run_all(max_cycles=500_000_000)
        vals = list(counts.values())
        assert len(vals) == 4
        assert min(vals) > 0.6 * max(vals), vals


class TestUnknownAlgorithm:
    def test_get_algorithm_raises_with_known_names(self):
        with pytest.raises(KeyError) as exc:
            get_algorithm("nope")
        assert "mcs" in str(exc.value)
