"""Gray failures: asymmetric partitions, zombie cores, slow cores, fences.

Crash-stop recovery (PR 7, test_faults_crash.py) assumes a dead core
stays dead.  A *gray* failure breaks that assumption: a zombie core is
stalled past its lease but still alive and resumes later; a slow core
keeps answering, just late; an asymmetric partition blackholes one
direction of a link while the reverse path stays clean.  Coverage here
mirrors the crash suite's three layers:

* OS / machine choreography — ``stall_core`` composes with
  ``crash_core`` (a core stalled at crash time dies exactly once and
  the pending unfreeze cannot resurrect it) and ``set_core_slowdown``
  keeps the core executing.
* The fencing proof — with fencing armed every gray cell recovers;
  with ``fencing=False`` (the ``--no-fencing`` sabotage) the healed
  zombie's stale hold is never rejected and the monitor's
  ``zombie_writer`` check provably fires, PR 7-style.  The minimized
  sabotage run is pinned as a corpus reproducer.
* The failure detector — a zombie (heartbeats blackholed) is reclaimed
  by the lease machinery, while a slow core (heartbeats late but
  flowing) is probed and waited out: zero reclaims.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro import Machine, OS, small_test_model
from repro.check.fuzz import FuzzCase, load_case, run_case
from repro.cpu import ops
from repro.cpu.os_sched import CRASHED, DONE
from repro.faults.nemesis import (
    DEFAULT_ALGOS,
    DEFAULT_MODELS,
    _cell_specs,
    classes_for,
    run_cell,
    run_matrix,
)
from repro.faults.plan import ALL_CLASSES, GRAY_CLASSES

pytestmark = pytest.mark.faults

DATA = Path(__file__).parent / "data"


@pytest.fixture
def m():
    return Machine(small_test_model(), tiebreak_seed=1)


@pytest.fixture
def machine_spy(monkeypatch):
    """Capture every Machine a replay builds so tests can inspect the
    hardware stats afterwards."""
    import repro.cpu.machine as mach

    captured = []
    orig = mach.Machine.__init__

    def spy(self, *args, **kwargs):
        orig(self, *args, **kwargs)
        captured.append(self)

    monkeypatch.setattr(mach.Machine, "__init__", spy)
    return captured


def lrt_stats(machine):
    agg = {}
    for lrt in machine.lrts:
        for k, v in lrt.stats.items():
            agg[k] = agg.get(k, 0) + v
    return agg


class TestStallCrashComposition:
    """Satellite regression: ``zombie_core`` (stall) must compose with
    PR 7 crash bookkeeping — stall → crash → restart, in that order."""

    def test_stalled_core_crashes_exactly_once(self, m):
        os_ = OS(m)
        reported = []
        os_.crash_hooks.append(lambda t: reported.append(t.tid))

        def prog(thread):
            yield ops.Compute(10_000)

        threads = [os_.spawn(prog) for _ in range(m.config.cores)]
        m.sim.at(300, lambda: os_.stall_core(0, 5_000))
        m.sim.at(800, lambda: os_.crash_core(0))      # mid-stall
        m.sim.at(1_200, lambda: os_.restart_core(0))  # before stall end
        os_.run_all()
        victims = [t for t in threads if t.state == CRASHED]
        assert len(victims) == 1, "one thread was on the stalled core"
        assert reported == [victims[0].tid], (
            "crash hooks must fire exactly once for the stalled victim"
        )
        assert all(t.state == DONE for t in threads if t is not victims[0])

    def test_stall_unfreeze_cannot_resurrect_a_crash_victim(self, m):
        """The stall schedules an unfreeze at window end; a crash during
        the window stales it (epoch bump).  When the window closes the
        victim must still be CRASHED — frozen state must not leak back
        into RUNNING."""
        os_ = OS(m)

        def prog(thread):
            yield ops.Compute(10_000)

        threads = [os_.spawn(prog) for _ in range(m.config.cores)]
        victim = {}
        m.sim.at(300, lambda: os_.stall_core(0, 2_000))

        def crash():
            victim["t"] = next(t for t in threads if t.core == 0)
            os_.crash_core(0)

        m.sim.at(800, crash)

        def after_window():
            assert victim["t"].state == CRASHED
            assert not victim["t"].frozen

        m.sim.at(2_400, after_window)  # past the stall's unfreeze point
        os_.run_all()
        assert victim["t"].state == CRASHED
        assert os_.crashes == 1

    def test_slowdown_keeps_the_core_executing(self, m):
        os_ = OS(m)
        done_at = {}

        def prog(thread):
            yield ops.Compute(1_000)
            done_at[thread.tid] = m.sim.now

        t = os_.spawn(prog)
        os_.set_core_slowdown(0, 3.0)
        os_.run_all()
        assert t.state == DONE, "a slow core still finishes its work"
        assert done_at[t.tid] >= 3_000, "compute must stretch by the factor"


class TestGrayCells:
    def test_gray_classes_are_universal(self):
        assert set(GRAY_CLASSES) <= set(ALL_CLASSES)
        for algo in ("lcu", "lcu_fb", "mcs", "clh", "ticket", "mrsw"):
            assert set(GRAY_CLASSES) <= set(classes_for(algo, None))

    def test_matrix_axis_meets_the_growth_bar(self):
        specs = _cell_specs(DEFAULT_ALGOS, DEFAULT_MODELS, None,
                            0, 6, 30, 12_000, True)
        assert len(specs) >= 132, (
            "the gray classes must grow the default matrix to >= 132 "
            f"cells (got {len(specs)})"
        )

    @pytest.mark.parametrize("algo", ["lcu", "mcs"])
    @pytest.mark.parametrize("fault", list(GRAY_CLASSES))
    def test_gray_cells_recover(self, algo, fault):
        cell = run_cell(algo, "A", fault, seed=0)
        assert cell.outcome in ("recovered", "degraded"), cell.detail
        if algo == "lcu":
            assert cell.injected >= 1, "the fault must actually land"


class TestFailureDetector:
    def test_zombie_holder_is_reclaimed_and_fenced(self, machine_spy):
        """A zombie stalls past its lease with heartbeats blackholed:
        suspicion climbs, the watchdog reclaims the lease, and the
        healed zombie's stale release is answered with a
        FencedOperation instead of silent success."""
        cell = run_cell("lcu", "A", "zombie_core", seed=0)
        assert cell.outcome == "recovered", cell.detail
        stats = lrt_stats(machine_spy[-1])
        assert stats.get("reclaims_lease", 0) >= 1, (
            "the lease machinery must revoke the zombie's hold"
        )
        fenced = sum(
            lcu.stats.get("fenced_ops", 0) for lcu in machine_spy[-1].lcus
        )
        assert fenced >= 1, "the healed zombie must hit the fence"

    def test_slow_core_is_probed_not_reclaimed(self, machine_spy):
        """A slow core keeps executing and its heartbeats keep flowing
        (late, not lost): the suspicion-level detector must wait it out
        — a live holder is never reclaimed for being slow."""
        cell = run_cell("lcu", "A", "slow_core", seed=0)
        assert cell.outcome == "recovered", cell.detail
        stats = lrt_stats(machine_spy[-1])
        assert stats.get("reclaims", 0) == 0, (
            f"slow-but-alive core was reclaimed: {stats}"
        )


class TestFencingSabotage:
    """PR 7-style proof that the fences earn their keep: the same
    zombie plan recovers with fencing armed and provably violates the
    zombie-writer invariant with fencing disarmed."""

    def test_sabotage_trips_the_zombie_writer_check(self):
        cell = run_cell("lcu", "A", "zombie_core", seed=0, fencing=False)
        assert cell.outcome == "violated"
        assert "zombie_writer" in cell.detail, cell.detail

    def test_fencing_prevents_the_violation(self):
        cell = run_cell("lcu", "A", "zombie_core", seed=0, fencing=True)
        assert cell.outcome == "recovered", cell.detail

    def test_sabotage_violation_is_deterministic(self):
        a = run_cell("lcu", "A", "zombie_core", seed=0, fencing=False)
        b = run_cell("lcu", "A", "zombie_core", seed=0, fencing=False)
        assert a.detail == b.detail
        assert a.elapsed == b.elapsed

    def test_unfenced_zombie_corpus_case_still_violates(self):
        """The minimized sabotage run is pinned as a corpus reproducer:
        it must keep violating ``zombie_writer`` (and carry the
        sabotage flag), or the fence proof has silently drifted."""
        case = load_case(DATA / "check_repro_unfenced_zombie.json")
        assert case.fencing is False
        assert len(case.note) > 40
        outcome = run_case(case)
        assert not outcome.ok
        assert outcome.violation.invariant == "zombie_writer"

    def test_shrinker_probes_the_sabotage_axis(self):
        """Format-4 shrinking: for a no-fencing failure the shrinker
        must try re-arming the fences — the reduction that tells a
        sabotage-only failure from a real bug."""
        from repro.check.fuzz import _candidates

        case = load_case(DATA / "check_repro_unfenced_zombie.json")
        variants = _candidates(case)
        assert any(v.fencing for v in variants), (
            "no fencing=True candidate proposed for a no-fencing case"
        )
        # and never the other way around: armed cases stay armed
        armed = dataclasses.replace(case, fencing=True)
        assert all(v.fencing for v in _candidates(armed))


class TestGrayMatrixWorkers:
    def test_gray_worker_pool_report_is_byte_identical_to_serial(self):
        """The CI gray smoke gate in test form: two new-class cells,
        serial vs pooled, byte-identical reports."""
        kwargs = dict(
            algos=("lcu",), models=("A",),
            classes=("zombie_core", "partition_links"), seed=0,
        )
        serial = run_matrix(workers=0, **kwargs)
        pooled = run_matrix(workers=2, **kwargs)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(pooled.to_dict(), sort_keys=True)
        assert serial.ok, [c.detail for c in serial.violated()]
        assert len(serial.cells) == 2
