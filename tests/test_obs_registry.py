"""Unit tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.cpu.machine import Machine
from repro.cpu.os_sched import OS
from repro.harness.microbench import run_microbench
from repro.obs import MetricError, MetricsRegistry
from repro.params import small_test_model
from repro.sim.engine import Simulator


class TestNames:
    def test_valid_hierarchical_names(self):
        reg = MetricsRegistry()
        for name in ("a", "lcu.core3.enqueue", "net.hub-out.bytes", "x_1.y"):
            reg.counter(name)
        assert reg.names == sorted(
            ["a", "lcu.core3.enqueue", "net.hub-out.bytes", "x_1.y"]
        )

    @pytest.mark.parametrize(
        "bad", ["", ".", "a..b", ".a", "a.", "a b", "a/b", "é"]
    )
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(MetricError):
            MetricsRegistry().counter(bad)

    def test_cross_kind_collision(self):
        reg = MetricsRegistry()
        reg.counter("x.count")
        with pytest.raises(MetricError):
            reg.gauge("x.count")
        with pytest.raises(MetricError):
            reg.histogram("x.count")
        reg.gauge("x.level")
        with pytest.raises(MetricError):
            reg.counter("x.level")

    def test_same_kind_is_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = MetricsRegistry().counter("c")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(MetricError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_callback_and_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", lambda: 7)
        assert g.read() == 7.0
        g.set(3)
        assert g.read() == 3.0  # set() overrides the callback

    def test_gauge_rebind(self):
        reg = MetricsRegistry()
        reg.gauge("g", lambda: 1)
        reg.gauge("g", lambda: 2)  # second machine re-binds
        assert reg.gauge("g").read() == 2.0

    def test_histogram_width_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", bucket_width=10)
        with pytest.raises(MetricError):
            reg.histogram("h", bucket_width=20)


class TestSampling:
    def test_periodic_sampling(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.gauge("clock", lambda: sim.now)
        reg.start_sampling(sim, 10)
        sim.at(35, lambda: None)
        sim.run(until=35)
        reg.stop_sampling()
        assert reg.series["clock"] == [(10, 10.0), (20, 20.0), (30, 30.0)]

    def test_stop_sampling_halts_ticks(self):
        sim = Simulator()
        reg = MetricsRegistry()
        reg.gauge("g", lambda: 1)
        reg.start_sampling(sim, 10)
        sim.at(15, reg.stop_sampling)
        sim.at(100, lambda: None)
        sim.run(until=100)
        assert reg.series["g"] == [(10, 1.0)]

    def test_interval_must_be_positive(self):
        with pytest.raises(MetricError):
            MetricsRegistry().start_sampling(Simulator(), 0)

    def test_sampling_deterministic_across_runs(self):
        """Same seed + same interval -> bit-identical gauge time series."""

        def one_run():
            reg = MetricsRegistry()
            run_microbench(
                small_test_model(), "lcu", threads=3, write_pct=50,
                iters_per_thread=10, seed=7,
                registry=reg, sample_interval=500,
            )
            return reg.to_dict()

        assert one_run() == one_run()


class TestExport:
    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bucket_width=10).add(42)
        reg.series["g"] = [(0, 0.0), (10, 1.5)]
        d = reg.to_dict()
        assert d["counters"] == {"c": 5}
        assert d["gauges"] == {"g": 1.5}
        assert d["histograms"]["h"]["count"] == 1
        assert d["series"] == {"g": [[0, 0.0], [10, 1.5]]}


class TestHarvest:
    def test_harvest_small_machine(self):
        """attach + harvest fills the engine/net/mem/lcu/lrt sections."""
        from repro.obs import attach_machine_metrics, finish_run

        config = small_test_model()
        machine = Machine(config)
        os_ = OS(machine)
        reg = MetricsRegistry()
        attach_machine_metrics(machine, reg)

        from repro.locks.base import get_algorithm

        algo = get_algorithm("lcu")(machine)
        handle = algo.make_lock()

        def worker(thread):
            yield from algo.lock(thread, handle, True)
            yield from algo.unlock(thread, handle, True)

        os_.spawn(worker)
        os_.run_all()
        finish_run(machine, reg)

        d = reg.to_dict()
        assert d["counters"]["engine.events_processed"] > 0
        assert d["counters"]["net.messages_sent"] > 0
        assert d["counters"]["lcu.total.acquires"] >= 1
        assert any(n.startswith("lrt.") for n in d["counters"])
        assert d["gauges"]["lcu.core0.entries_highwater"] >= 1
