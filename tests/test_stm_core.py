"""Tests for the STM engine: isolation, atomicity, opacity, variants."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.stm.core import AbortTx, ObjectSTM, TooManyRetries
from repro.stm.direct import DirectTx, populate, run_direct
from repro.stm.structures.rbtree import RBTree


@pytest.fixture
def m():
    return Machine(small_test_model())


def make(m, variant="lcu"):
    return ObjectSTM(m, variant)


class TestBasicTransactions:
    def test_read_write_commit(self, m):
        os_ = OS(m)
        stm = make(m)
        obj = stm.alloc(10)
        out = []

        def prog(thread):
            def body(tx):
                v = yield from tx.read(obj)
                yield from tx.write(obj, v + 5)
                return v

            r = yield from stm.run(thread, body)
            out.append(r)

        os_.spawn(prog)
        os_.run_all()
        assert out == [10]
        assert obj.value == 15
        assert stm.stats.commits == 1

    def test_read_only_txn_commits_without_clock_bump(self, m):
        os_ = OS(m)
        stm = make(m)
        obj = stm.alloc(1)

        def prog(thread):
            def body(tx):
                v = yield from tx.read(obj)
                return v

            yield from stm.run(thread, body)

        os_.spawn(prog)
        os_.run_all()
        assert stm.clock == 0
        assert obj.version == 0

    def test_own_writes_visible(self, m):
        os_ = OS(m)
        stm = make(m)
        obj = stm.alloc(1)
        seen = []

        def prog(thread):
            def body(tx):
                yield from tx.write(obj, 99)
                v = yield from tx.read(obj)
                seen.append(v)

            yield from stm.run(thread, body)

        os_.spawn(prog)
        os_.run_all()
        assert seen == [99]

    def test_unknown_variant_rejected(self, m):
        with pytest.raises(ValueError):
            ObjectSTM(m, "nope")

    def test_explicit_abort_retries(self, m):
        os_ = OS(m)
        stm = make(m)
        attempts = [0]

        def prog(thread):
            def body(tx):
                attempts[0] += 1
                if attempts[0] < 3:
                    raise AbortTx()
                return "done"
                yield  # pragma: no cover

            r = yield from stm.run(thread, body)
            assert r == "done"

        os_.spawn(prog)
        os_.run_all()
        assert attempts[0] == 3
        assert stm.stats.aborts == 2

    def test_retry_budget_exhausted(self, m):
        os_ = OS(m)
        stm = make(m)
        failed = []

        def prog(thread):
            def body(tx):
                raise AbortTx()
                yield  # pragma: no cover

            try:
                yield from stm.run(thread, body, max_retries=3)
            except TooManyRetries:
                failed.append(True)

        os_.spawn(prog)
        os_.run_all()
        assert failed


@pytest.mark.parametrize("variant", ["sw-only", "lcu", "ssb", "fraser"])
class TestIsolation:
    def test_concurrent_increments_are_atomic(self, m, variant):
        os_ = OS(m)
        stm = make(m, variant)
        counter = stm.alloc(0)
        per_thread = 15

        def prog(thread):
            for _ in range(per_thread):
                def body(tx):
                    v = yield from tx.read(counter)
                    yield ops.Compute(20)  # widen the conflict window
                    yield from tx.write(counter, v + 1)

                yield from stm.run(thread, body)

        n = 4
        for _ in range(n):
            os_.spawn(prog)
        os_.run_all(max_cycles=5_000_000_000)
        assert counter.value == n * per_thread

    def test_consistent_two_object_snapshot(self, m, variant):
        """Invariant x + y == 0 must hold in every successful read txn
        even while writers move value between x and y."""
        os_ = OS(m)
        stm = make(m, variant)
        x = stm.alloc(0)
        y = stm.alloc(0)
        bad = []

        def mover(thread):
            for i in range(20):
                def body(tx, i=i):
                    vx = yield from tx.read(x)
                    vy = yield from tx.read(y)
                    yield from tx.write(x, vx + 1)
                    yield ops.Compute(15)
                    yield from tx.write(y, vy - 1)

                yield from stm.run(thread, body)

        def checker(thread):
            for _ in range(25):
                def body(tx):
                    vx = yield from tx.read(x)
                    yield ops.Compute(10)
                    vy = yield from tx.read(y)
                    return vx + vy

                s = yield from stm.run(thread, body)
                if s != 0:
                    bad.append(s)

        os_.spawn(mover)
        os_.spawn(mover)
        os_.spawn(checker)
        os_.spawn(checker)
        os_.run_all(max_cycles=5_000_000_000)
        assert not bad, f"inconsistent snapshots: {bad}"


class TestDirectSetup:
    def test_run_direct_returns_value(self, m):
        stm = make(m)
        tree = RBTree(stm)
        assert run_direct(stm, lambda tx: tree.insert(tx, 5)) is True
        assert run_direct(stm, lambda tx: tree.insert(tx, 5)) is False
        assert run_direct(stm, lambda tx: tree.contains(tx, 5)) is True

    def test_populate_builds_valid_tree(self, m):
        stm = make(m)
        tree = RBTree(stm)
        populate(stm, tree, range(0, 200, 2))
        keys = run_direct(stm, lambda tx: tree.snapshot_keys(tx))
        assert keys == list(range(0, 200, 2))
        run_direct(stm, lambda tx: tree.check_invariants(tx))

    def test_direct_rejects_simulation_ops(self, m):
        stm = make(m)

        def body(tx):
            yield ops.Compute(1)

        with pytest.raises(RuntimeError):
            run_direct(stm, body)
