"""Cross-algorithm conformance matrix (the ``repro.check`` oracle tests).

Every registered lock algorithm — software baselines and hardware units
alike — is run through the schedule fuzzer under the full invariant
monitor (exclusion tracker, structural queue audit, reference oracle,
quiescence) on both paper machine models.  A new algorithm added to the
registry is picked up automatically and has to pass the same bar.
"""

import pytest

from repro.check import (
    ExclusionTracker,
    FuzzCase,
    InvariantMonitor,
    InvariantViolation,
    RWLockOracle,
    fuzz,
    run_case,
    shrink,
)
from repro.locks import all_algorithms, get_algorithm

pytestmark = pytest.mark.check

ALGOS = sorted(all_algorithms())
MODELS = ["A", "B"]


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("algo", ALGOS)
def test_conformance(algo, model):
    outcomes = fuzz(algo, model=model, runs=3, seed=41)
    bad = [o for o in outcomes if not o.ok]
    assert not bad, bad[0].summary()
    assert sum(o.total_cs for o in outcomes) > 0


def test_registry_covers_known_algorithms():
    """The matrix really is cross-algorithm: the paper's Figure 1
    baselines must all be registered (a rename would silently shrink
    the matrix otherwise)."""
    expected = {
        "tas", "tatas", "ticket", "mcs", "mrsw", "pthread", "lcu", "ssb",
        "clh", "hbo", "snzi", "mao", "tpmcs",
    }
    assert expected <= set(ALGOS)


def test_rw_algorithms_share_read_sections():
    """Read-heavy fuzz cases on rw-capable locks must actually exhibit
    reader sharing — otherwise the exclusion check is vacuous."""
    case = FuzzCase(
        algo="lcu", model="T", seed=7, threads=6, iters=8, write_pct=10,
        cs_cycles=40,
    )
    outcome = run_case(case)
    assert outcome.ok, outcome.summary()
    assert outcome.total_cs == 6 * 8


def test_oversubscribed_case_completes():
    """More threads than cores with a short timeslice: preemption and
    migration mid-queue must not lose wakeups."""
    case = FuzzCase(
        algo="lcu", model="T", seed=3, threads=8, iters=5, write_pct=50,
        cores=2, timeslice=800,
    )
    outcome = run_case(case)
    assert outcome.ok, outcome.summary()


def test_tiebreak_seed_changes_schedule_not_verdict():
    """Tie-break perturbation explores different interleavings (same
    program, different elapsed time is the common signature) and every
    one of them must pass."""
    elapsed = set()
    for tb in (None, 1, 2, 3, 4, 5, 6, 7):
        case = FuzzCase(
            algo="lcu", model="T", seed=5, threads=5, iters=6,
            write_pct=30, tiebreak_seed=tb,
        )
        outcome = run_case(case)
        assert outcome.ok, f"tb={tb}: {outcome.summary()}"
        elapsed.add(outcome.elapsed)
    assert len(elapsed) > 1, "tie-break seeds never changed the schedule"


def test_run_case_is_deterministic():
    case = FuzzCase(
        algo="lcu", model="T", seed=9, threads=5, iters=6, write_pct=50,
        trylock_pct=30, tiebreak_seed=12,
    )
    a, b = run_case(case), run_case(case)
    assert (a.ok, a.elapsed, a.total_cs) == (b.ok, b.elapsed, b.total_cs)
    assert a.monitor_stats == b.monitor_stats


# --------------------------------------------------------------------- #
# the monitor and oracle must actually *reject* broken behaviour


def test_monitor_catches_corrupted_queue_link(monkeypatch):
    """Sabotage: during a queue transfer, point the released entry's
    ``next`` link back at itself.  The monitor (structural audit or the
    protocol's own defensive checks) must flag the run; shrinking must
    then produce a smaller failing case."""
    from repro.lcu.lcu import LockControlUnit
    from repro.lcu.messages import Who

    orig = LockControlUnit._transfer

    def corrupt(self, e):
        if e.next is not None:
            e.next = Who(e.tid, self.lcu_id, e.write)
        return orig(self, e)

    monkeypatch.setattr(LockControlUnit, "_transfer", corrupt)
    case = FuzzCase(
        algo="lcu", model="T", seed=3, threads=4, iters=6, write_pct=50,
    )
    outcome = run_case(case)
    assert not outcome.ok
    assert outcome.violation.invariant in ("queue_shape", "protocol")
    assert outcome.violation.events, "violation carries no trace window"

    small = shrink(outcome.case)
    assert not small.ok
    assert small.case.threads <= case.threads
    assert small.case.iters <= case.iters


def test_oracle_rejects_exclusion_breach():
    oracle = RWLockOracle()
    oracle.request(1, True, 0)
    oracle.request(2, True, 0)
    oracle.acquire(1, True, 5)
    oracle.acquire(2, True, 6)      # second writer while first holds
    assert oracle.violations
    assert "while held" in oracle.violations[0]


def test_oracle_rejects_reader_during_write():
    oracle = RWLockOracle()
    oracle.request(1, True, 0)
    oracle.acquire(1, True, 1)
    oracle.request(2, False, 2)
    oracle.acquire(2, False, 3)
    assert any("during a write hold" in v for v in oracle.violations)


def test_oracle_accepts_reader_sharing():
    oracle = RWLockOracle()
    for tid in (1, 2, 3):
        oracle.request(tid, False, 0)
    for tid in (1, 2, 3):
        oracle.acquire(tid, False, 1)
    for tid in (1, 2, 3):
        oracle.release(tid, False, 2)
    assert not oracle.violations
    assert not oracle.end_state_problems()


def test_oracle_bounded_overtake():
    """A fair lock may not starve an early requester indefinitely."""
    oracle = RWLockOracle(fair=True, overtake_bound=3)
    oracle.request(99, True, 0)     # the starved waiter
    for i, tid in enumerate(range(100, 110)):
        oracle.request(tid, True, i + 1)
        oracle.acquire(tid, True, i + 2)
        oracle.release(tid, True, i + 3)
        if oracle.violations:
            break
    assert any("overtaken" in v for v in oracle.violations)


def test_oracle_timeout_credits_widen_bound():
    """Grant-timer forwarding legitimately skips absent waiters: each
    reported timeout buys one extra overtake before the oracle objects."""
    strict = RWLockOracle(fair=True, overtake_bound=2)
    credited = RWLockOracle(fair=True, overtake_bound=2)
    for oracle in (strict, credited):
        oracle.request(99, True, 0)
    credited.grant_timeout()
    for oracle in (strict, credited):
        for i, tid in enumerate(range(100, 103)):
            oracle.request(tid, True, i + 1)
            oracle.acquire(tid, True, i + 2)
            oracle.release(tid, True, i + 3)
    assert strict.violations
    assert not credited.violations


def test_oracle_excused_waiters_not_overtaken():
    """A waiter frozen by an injected core stall cannot consume a grant:
    passing it is the designed behaviour, so excused tids accrue no
    overtake count at all (unlike timeout credits, which only widen the
    bound by one per skip)."""
    strict = RWLockOracle(fair=True, overtake_bound=2)
    excusing = RWLockOracle(fair=True, overtake_bound=2)
    for oracle in (strict, excusing):
        oracle.request(99, True, 0)
    for i, tid in enumerate(range(100, 110)):
        for oracle in (strict, excusing):
            oracle.request(tid, True, i + 1)
        strict.acquire(tid, True, i + 2)
        excusing.acquire(tid, True, i + 2, excused={99})
        for oracle in (strict, excusing):
            oracle.release(tid, True, i + 3)
        if strict.violations:
            break
    assert strict.violations
    assert not excusing.violations
    assert excusing.overtaken.get(99, 0) == 0


def test_oracle_flags_lost_wakeup_at_end():
    oracle = RWLockOracle()
    oracle.request(1, True, 0)
    problems = oracle.end_state_problems()
    assert any("still waiting" in p for p in problems)


def test_exclusion_tracker_counts_and_violations():
    t = ExclusionTracker()
    t.enter(False)
    t.enter(False)
    assert t.max_readers == 2
    t.enter(True)                   # writer barges into readers
    assert t.violations
    t.exit(True)
    t.exit(False)
    t.exit(False)
    assert t.total == 3
    with pytest.raises(AssertionError):
        t.assert_clean()


def test_monitor_violation_is_structured():
    """InvariantViolation carries invariant name, time, details and the
    recent-event window, and serializes for reproducer JSONs."""
    v = InvariantViolation(
        "rw_exclusion", "boom", time=42, details={"handle": 7},
        events=["e1", "e2"],
    )
    assert "rw_exclusion" in str(v) and "cycle 42" in str(v)
    d = v.to_dict()
    assert d["invariant"] == "rw_exclusion"
    assert d["time"] == 42
    assert d["events"] == ["e1", "e2"]


def test_observed_wrappers_emit_lifecycle_events(machine):
    events = []
    algo = get_algorithm("tas")(machine)
    h = algo.make_lock()
    algo.add_observer(lambda ev, th, hd, w: events.append(ev))

    from repro.cpu.os_sched import OS
    os_ = OS(machine)

    def prog(thread):
        yield from algo.acquire(thread, h, True)
        yield from algo.release(thread, h, True)
        ok = yield from algo.try_acquire(thread, h, True)
        assert ok
        yield from algo.release(thread, h, True)

    os_.spawn(lambda t: prog(t))
    os_.run_all()
    assert events == [
        "request", "acquire", "release", "request", "acquire", "release",
    ]
    assert algo.remove_observer(events.append) is False


def test_cli_check_matrix_smoke(capsys):
    """``python -m repro check --all --runs 5`` — the tier-1 smoke the
    CI baseline (BENCH_check.json) mirrors — must exit 0."""
    from repro.__main__ import main

    rc = main(["check", "--all", "--runs", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    for algo in ALGOS:
        assert algo in out
    assert "FAIL" not in out
