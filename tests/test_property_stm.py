"""Property-based STM tests: random concurrent histories must be
explainable (membership conservation), opaque (snapshots consistent) and
leak-free, across variants, with irrevocable transactions mixed in."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.stm.core import ObjectSTM
from repro.stm.direct import run_direct
from repro.stm.structures.hashtable import HashTable
from repro.stm.structures.skiplist import SkipList
from tests.conftest import drain_and_check

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def stm_workload(draw):
    return dict(
        seed=draw(st.integers(0, 2**16)),
        variant=draw(st.sampled_from(["sw-only", "lcu", "fraser", "ssb"])),
        nthreads=draw(st.integers(2, 5)),
        steps=draw(st.integers(4, 15)),
        key_range=draw(st.sampled_from([8, 30])),
        structure=draw(st.sampled_from([SkipList, HashTable])),
        use_irrevocable=draw(st.booleans()),
    )


class TestStmProperties:
    @settings(**_SETTINGS)
    @given(stm_workload())
    def test_history_is_explainable(self, p):
        m = Machine(small_test_model())
        stm = ObjectSTM(m, p["variant"],
                        irrevocable_support=p["use_irrevocable"])
        s = p["structure"](stm)
        os_ = OS(m)
        results = []

        def factory(i):
            def prog(thread):
                rng = random.Random(p["seed"] * 131 + i)
                for _ in range(p["steps"]):
                    key = rng.randrange(p["key_range"])
                    insert = rng.random() < 0.5
                    body = (
                        (lambda tx, k=key: s.insert(tx, k)) if insert
                        else (lambda tx, k=key: s.remove(tx, k))
                    )
                    if p["use_irrevocable"] and rng.random() < 0.25:
                        ok = yield from stm.run_irrevocable(thread, body)
                    else:
                        ok = yield from stm.run(thread, body)
                    results.append(("i" if insert else "r", key, ok))
                    yield ops.Compute(rng.randint(1, 40))
            return prog

        for i in range(p["nthreads"]):
            os_.spawn(factory(i))
        os_.run_all(max_cycles=20_000_000_000)

        net = {}
        for op, k, ok in results:
            if ok:
                net[k] = net.get(k, 0) + (1 if op == "i" else -1)
        assert all(v in (0, 1) for v in net.values()), net
        expected = sorted(k for k, v in net.items() if v == 1)
        assert run_direct(stm, lambda tx: s.snapshot_keys(tx)) == expected

    @settings(**_SETTINGS)
    @given(stm_workload())
    def test_no_leaked_lock_state(self, p):
        m = Machine(small_test_model())
        stm = ObjectSTM(m, p["variant"])
        s = p["structure"](stm)
        os_ = OS(m)

        def factory(i):
            def prog(thread):
                rng = random.Random(p["seed"] * 17 + i)
                for _ in range(p["steps"]):
                    key = rng.randrange(p["key_range"])
                    yield from stm.run(
                        thread, lambda tx, k=key: s.insert(tx, k)
                    )
            return prog

        for i in range(p["nthreads"]):
            os_.spawn(factory(i))
        os_.run_all(max_cycles=20_000_000_000)
        drain_and_check(m)
