"""Unit tests for the contention profiler (repro.obs.profile)."""

import pytest

from repro.harness.microbench import run_microbench
from repro.obs import validate_chrome_trace
from repro.obs.profile import (
    ACQUIRE_PHASES,
    ALL_PHASES,
    Acquisition,
    ContentionProfiler,
    ProfileError,
    validate_profile,
)
from repro.params import model_a, small_test_model


def profiled_run(lock="lcu", threads=8, write_pct=100, iters=30,
                 model=None, **kw):
    prof = ContentionProfiler()
    result = run_microbench(
        model if model is not None else small_test_model(),
        lock, threads, write_pct,
        iters_per_thread=iters, seed=1, profiler=prof, **kw,
    )
    return prof, result


class TestPhaseAlgebra:
    def test_full_skeleton_telescopes(self):
        a = Acquisition("l", 1, True, t_request=100, t_enqueue=110,
                        t_grant_sent=150, t_grant_recv=160, t_acquired=170)
        p = a.phases()
        assert p == {"enqueue": 10, "queue_wait": 40,
                     "transfer": 10, "handoff": 10}
        assert sum(p.values()) == a.acquire_latency == 70

    def test_missing_interior_timestamps_default_safely(self):
        # software locks / FLT hits: no grant messages at all
        a = Acquisition("l", 1, False, t_request=100, t_acquired=130)
        p = a.phases()
        assert sum(p.values()) == 30
        assert p["enqueue"] == 0 and p["transfer"] == 0

    def test_out_of_window_timestamps_clamped(self):
        # a grant_sent recorded after the acquire (e.g. a stale retry)
        # must not produce negative phases
        a = Acquisition("l", 1, True, t_request=100, t_enqueue=90,
                        t_grant_sent=500, t_grant_recv=120, t_acquired=140)
        p = a.phases()
        assert all(v >= 0 for v in p.values())
        assert sum(p.values()) == 40

    def test_cs_cycles(self):
        a = Acquisition("l", 1, True, t_request=0, t_acquired=10,
                        t_released=25)
        assert a.cs_cycles == 15
        a2 = Acquisition("l", 1, True, t_request=0, t_acquired=10)
        assert a2.cs_cycles is None


class TestProfiledMicrobench:
    @pytest.mark.parametrize("lock", ["lcu", "ssb", "mcs", "mrsw", "clh",
                                      "ticket", "tpmcs", "tas"])
    def test_phase_sum_equals_acquire_latency(self, lock):
        prof, result = profiled_run(lock=lock, threads=6, iters=20)
        d = prof.to_dict()
        assert len(d["locks"]) == 1
        (ld,) = d["locks"].values()
        assert ld["acquisitions"] == result.total_cs
        phase_sum = sum(ld["phases"][p]["total"] for p in ACQUIRE_PHASES)
        assert phase_sum == ld["acquire_latency_total"]

    def test_profiled_latency_matches_histogram_exactly(self):
        prof, result = profiled_run(lock="lcu", threads=8, iters=25)
        (ld,) = prof.to_dict()["locks"].values()
        mean = ld["acquire_latency_total"] / ld["acquisitions"]
        assert mean == pytest.approx(result.acquire_latency_mean, rel=1e-12)

    def test_lcu_decomposition_attributes_interior_phases(self):
        # Under write contention, the LCU pipeline must attribute real
        # time to queue_wait and transfer (grant messages in flight).
        prof, _ = profiled_run(lock="lcu", threads=8, iters=30,
                               model=model_a())
        (ld,) = prof.to_dict()["locks"].values()
        assert ld["phases"]["queue_wait"]["total"] > 0
        assert ld["phases"]["transfer"]["total"] > 0

    def test_reader_writer_modes_split(self):
        prof, result = profiled_run(lock="lcu", threads=8, write_pct=50,
                                    iters=30)
        (ld,) = prof.to_dict()["locks"].values()
        assert ld["reads"] == result.reader_cs > 0
        assert ld["writes"] == result.writer_cs > 0
        by_mode = ld["by_mode"]
        assert (by_mode["read"]["critical_section"]["count"]
                == ld["reads"])
        assert (by_mode["write"]["critical_section"]["count"]
                == ld["writes"])

    def test_per_thread_accounting(self):
        threads = 5
        prof, result = profiled_run(lock="mcs", threads=threads, iters=12)
        (ld,) = prof.to_dict()["locks"].values()
        assert len(ld["per_thread"]) == threads
        assert (sum(t["acquisitions"] for t in ld["per_thread"].values())
                == result.total_cs)

    def test_queue_depth_timeline(self):
        prof, _ = profiled_run(lock="lcu", threads=8, iters=20)
        (ld,) = prof.to_dict()["locks"].values()
        q = ld["queue_depth"]
        assert q["max_waiting_writers"] >= 1
        assert 0 < q["mean_waiting_writers"] <= q["max_waiting_writers"]
        times = [p[0] for p in q["timeline"]]
        assert times == sorted(times)
        assert q["dropped_points"] == 0

    def test_message_attribution_lcu_vs_software(self):
        prof_hw, _ = profiled_run(lock="lcu", threads=6, iters=15)
        (hw,) = prof_hw.to_dict()["locks"].values()
        assert hw["messages"]["total"] > 0
        assert "Grant" in hw["messages"]["by_type"]
        prof_sw, _ = profiled_run(lock="mcs", threads=6, iters=15)
        (sw,) = prof_sw.to_dict()["locks"].values()
        assert sw["messages"]["total"] == 0

    def test_critical_path_covers_all_acquisitions(self):
        prof, result = profiled_run(lock="lcu", threads=8, iters=20)
        (ld,) = prof.to_dict(top=3)["locks"].values()
        cp = ld["critical_path"]
        assert cp["links"] == result.total_cs
        assert cp["length"] == cp["cs_total"] + cp["handoff_total"]
        assert len(cp["top_edges"]) == 3
        durs = [e["duration"] for e in cp["top_edges"]]
        assert durs == sorted(durs, reverse=True)

    def test_no_unmatched_probes_on_clean_run(self):
        prof, _ = profiled_run(lock="lcu", threads=8, iters=20)
        assert prof.unmatched_probes == 0

    def test_detach_restores_machine(self):
        prof = ContentionProfiler()
        run_microbench(small_test_model(), "lcu", 4,
                       iters_per_thread=10, seed=1, profiler=prof)
        # finish_run detaches: no probes or observers left behind
        assert prof._machine is None
        assert prof._algos == []


class TestExports:
    def test_folded_format(self):
        prof, _ = profiled_run(lock="lcu", threads=6, write_pct=50,
                               iters=20)
        folded = prof.folded()
        assert folded.endswith("\n")
        lines = folded.strip().split("\n")
        assert lines == sorted(lines)
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            lock, mode, phase = stack.split(";")
            assert lock.startswith("lcu@")
            assert mode in ("read", "write")
            assert phase in ALL_PHASES
            assert int(weight) >= 0

    def test_folded_weights_match_phase_totals(self):
        prof, _ = profiled_run(lock="lcu", threads=6, iters=20)
        (ld,) = prof.to_dict()["locks"].values()
        weights = {}
        for line in prof.folded().strip().split("\n"):
            stack, weight = line.rsplit(" ", 1)
            phase = stack.split(";")[2]
            weights[phase] = weights.get(phase, 0) + int(weight)
        for p in ALL_PHASES:
            assert weights.get(p, 0) == ld["phases"][p]["total"]

    def test_chrome_trace_validates_and_is_contiguous(self):
        prof, result = profiled_run(lock="lcu", threads=6, iters=15)
        trace = prof.to_chrome_trace()
        validate_chrome_trace(trace)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # 4 acquire phases + critical_section per acquisition
        assert len(spans) == 5 * result.total_cs
        assert all(e["dur"] >= 0 for e in spans)

    def test_chrome_trace_capacity_cap(self):
        prof, _ = profiled_run(lock="lcu", threads=6, iters=15)
        trace = prof.to_chrome_trace(capacity=7)
        assert len([e for e in trace["traceEvents"]
                    if e["ph"] == "X"]) == 7

    def test_summarize_mentions_phase_sum(self):
        prof, _ = profiled_run(lock="lcu", threads=6, iters=15)
        text = prof.summarize()
        assert "100.00% of end-to-end acquire latency" in text
        assert "critical path" in text


class TestValidateProfile:
    def test_roundtrip_validates(self):
        prof, _ = profiled_run(lock="lcu", threads=4, iters=10)
        validate_profile(prof.to_dict())    # must not raise

    def test_rejects_non_dict(self):
        with pytest.raises(ProfileError):
            validate_profile([])

    def test_rejects_bad_schema(self):
        prof, _ = profiled_run(lock="lcu", threads=4, iters=10)
        d = prof.to_dict()
        d["schema"] = "nope"
        with pytest.raises(ProfileError, match="schema"):
            validate_profile(d)

    def test_rejects_phase_sum_mismatch(self):
        prof, _ = profiled_run(lock="lcu", threads=4, iters=10)
        d = prof.to_dict()
        (ld,) = d["locks"].values()
        ld["acquire_latency_total"] += 1
        with pytest.raises(ProfileError, match="sum"):
            validate_profile(d)

    def test_rejects_negative_edge(self):
        prof, _ = profiled_run(lock="lcu", threads=4, iters=10)
        d = prof.to_dict()
        (ld,) = d["locks"].values()
        ld["critical_path"]["top_edges"][0]["duration"] = -5
        with pytest.raises(ProfileError, match="negative"):
            validate_profile(d)
