"""Unit tests for span tracing (repro.obs.spans) and the Tracer
attach/detach discipline fix (repro.sim.trace)."""

import pytest

from repro.cpu.machine import Machine
from repro.cpu.os_sched import OS
from repro.locks.base import get_algorithm
from repro.obs import SpanError, SpanTracer, validate_chrome_trace
from repro.params import small_test_model
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class TestSpanProtocol:
    def test_begin_end(self):
        sim = Simulator()
        t = SpanTracer(sim)
        sid = t.begin("work", cat="test", track="t0", key=1)
        sim.at(50, lambda: None)
        sim.run()
        span = t.end(sid, extra=2)
        assert span.start == 0 and span.end == 50 and span.duration == 50
        assert span.args == {"key": 1, "extra": 2}
        assert t.spans == [span]

    def test_end_unknown_id(self):
        t = SpanTracer(Simulator())
        with pytest.raises(SpanError):
            t.end(99)

    def test_double_end(self):
        t = SpanTracer(Simulator())
        sid = t.begin("x")
        t.end(sid)
        with pytest.raises(SpanError):
            t.end(sid)

    def test_check_closed_detects_leaks(self):
        t = SpanTracer(Simulator())
        t.begin("leaky")
        assert t.open_count == 1
        with pytest.raises(SpanError, match="leaky"):
            t.check_closed()
        assert t.abandon_open() == 1
        t.check_closed()  # now clean

    def test_flush_open_keeps_spans(self):
        t = SpanTracer(Simulator())
        t.begin("interrupted", ts=3)
        t.begin("late", ts=10)
        assert t.flush_open(ts=7, reason="fault") == 2
        assert t.open_count == 0
        t.check_closed()
        by_name = {s.name: s for s in t.spans}
        assert by_name["interrupted"].duration == 4
        # a span "opened after" the flush instant is clamped, not negative
        assert by_name["late"].duration == 0
        for s in t.spans:
            assert s.args["flushed"] is True
            assert s.args["reason"] == "fault"
        assert t.flush_open(ts=8) == 0

    def test_duration_of_open_span_raises(self):
        t = SpanTracer(Simulator())
        sid = t.begin("x")
        with pytest.raises(SpanError):
            _ = t._open[sid].duration

    def test_no_sim_requires_explicit_ts(self):
        t = SpanTracer()
        with pytest.raises(SpanError):
            t.begin("x")
        sid = t.begin("x", ts=5)
        span = t.end(sid, ts=9)
        assert span.duration == 4

    def test_capacity_drops(self):
        t = SpanTracer(Simulator(), capacity=1)
        t.end(t.begin("a"))
        t.end(t.begin("b"))
        assert len(t.spans) == 1 and t.dropped == 1


class TestChromeExport:
    def test_export_structure(self):
        t = SpanTracer(Simulator())
        t.end(t.begin("op", cat="lock", track="thread 0"))
        t.instant("mark", track="thread 1")
        obj = t.to_chrome_trace()
        validate_chrome_trace(obj)
        phases = [e["ph"] for e in obj["traceEvents"]]
        # process_name + two thread_name metadata + two X events
        assert phases.count("M") == 3 and phases.count("X") == 2
        names = {
            e["args"]["name"]
            for e in obj["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"thread 0", "thread 1"}

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "pid": 0, "tid": 1}]}
            )


def _run_one_cs(machine):
    os_ = OS(machine)
    algo = get_algorithm("lcu")(machine)
    handle = algo.make_lock()

    def worker(thread):
        yield from algo.lock(thread, handle, True)
        yield from algo.unlock(thread, handle, True)

    os_.spawn(worker)
    os_.run_all()


class TestMessageSpans:
    def test_attach_records_message_spans(self):
        machine = Machine(small_test_model())
        t = SpanTracer()
        t.attach(machine)
        _run_one_cs(machine)
        machine.drain()
        t.abandon_open()
        t.detach()
        net_spans = [s for s in t.spans if s.cat == "net"]
        assert net_spans, "no message spans recorded"
        assert all(s.duration >= 0 for s in net_spans)
        validate_chrome_trace(t.to_chrome_trace())

    def test_detach_restores_send(self):
        machine = Machine(small_test_model())
        original = machine.net.send
        t = SpanTracer()
        t.attach(machine)
        assert machine.net.send != original
        t.detach()
        assert machine.net.send == original
        t.detach()  # idempotent

    def test_detach_out_of_order_raises(self):
        machine = Machine(small_test_model())
        t1, t2 = SpanTracer(), SpanTracer()
        t1.attach(machine)
        t2.attach(machine)
        with pytest.raises(RuntimeError, match="LIFO"):
            t1.detach()
        t2.detach()
        t1.detach()


class TestTracerDetachFix:
    """The satellite fix: repro.sim.trace.Tracer used to restore a
    captured ``send`` unconditionally, silently dropping any wrapper
    stacked on top and double-restoring on repeat calls."""

    def test_detach_is_idempotent(self):
        machine = Machine(small_test_model())
        original = machine.net.send
        tr = Tracer.attach(machine)
        assert tr.attached
        tr.detach()
        assert not tr.attached
        assert machine.net.send == original
        tr.detach()  # second call is a no-op, not a double-restore
        assert machine.net.send == original

    def test_nested_tracers_lifo(self):
        machine = Machine(small_test_model())
        original = machine.net.send
        outer = Tracer.attach(machine)
        inner = Tracer.attach(machine)
        with pytest.raises(RuntimeError, match="LIFO"):
            outer.detach()
        inner.detach()
        outer.detach()
        assert machine.net.send == original

    def test_nested_tracers_both_record(self):
        machine = Machine(small_test_model())
        outer = Tracer.attach(machine)
        inner = Tracer.attach(machine)
        _run_one_cs(machine)
        assert len(outer) > 0 and len(inner) > 0
        inner.detach()
        outer.detach()

    def test_mixed_stack_with_span_tracer(self):
        machine = Machine(small_test_model())
        original = machine.net.send
        tr = Tracer.attach(machine)
        spans = SpanTracer()
        spans.attach(machine)
        with pytest.raises(RuntimeError):
            tr.detach()
        spans.detach()
        tr.detach()
        assert machine.net.send == original
