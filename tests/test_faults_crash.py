"""Crash-stop faults and lease-based recovery.

Three layers of coverage:

* OS / machine choreography — ``crash_core`` kills the right threads,
  reports them to crash hooks, and ``restart_core`` returns the core to
  service without resurrecting the dead.
* The liveness oracle — recovered cells pass it, and a *sabotage* run
  (``crash_policy="any"``, which removes the idle-victim gate so the
  crash lands on a lock holder a software lock cannot recover from)
  provably trips it: the silent hang surfaces as a structured
  :class:`LivenessViolation` instead of a timed-out run.
* The nemesis matrix — crash classes recover for every algorithm
  family, the two known-degraded evict cells stay root-caused, and the
  worker-pool fan-out is byte-identical to the serial run.
"""

import json

import pytest

from repro import Machine, OS, small_test_model
from repro.check.fuzz import FuzzCase, run_case
from repro.check.invariants import LivenessViolation
from repro.cpu import ops
from repro.cpu.os_sched import CRASHED, DONE
from repro.faults.nemesis import classes_for, run_cell, run_matrix
from repro.faults.plan import ALL_CLASSES, CRASH_CLASSES, generate_plan

pytestmark = pytest.mark.faults


@pytest.fixture
def m():
    return Machine(small_test_model(), tiebreak_seed=1)


def crash_plan(seed, *, classes=("crash_core",), horizon=12_000):
    return generate_plan(seed=seed, classes=list(classes),
                         horizon=horizon, cores=4)


def crash_case(algo, seed, *, classes=("crash_core",), **overrides):
    kw = dict(
        algo=algo, model="A", seed=seed, threads=6, locks=1, iters=30,
        write_pct=100, cs_cycles=400, think_cycles=20, cores=4,
        tiebreak_seed=seed,
        faults=crash_plan(seed, classes=classes).to_dict(),
    )
    kw.update(overrides)
    return FuzzCase(**kw)


class TestOsCrashStop:
    def test_crash_kills_the_cores_thread_and_reports_it(self, m):
        os_ = OS(m)
        reported = []
        os_.crash_hooks.append(lambda t: reported.append(t.tid))

        def prog(thread):
            yield ops.Compute(10_000)

        threads = [os_.spawn(prog) for _ in range(m.config.cores)]
        m.sim.at(500, lambda: os_.crash_core(0))
        os_.run_all()
        victims = [t for t in threads if t.state == CRASHED]
        assert len(victims) == 1
        assert reported == [victims[0].tid]
        assert all(t.state == DONE for t in threads if t is not victims[0])

    def test_extra_tids_die_wherever_they_run(self, m):
        """The caller passes the tids whose lock state was homed on the
        dead LCU — they die even if migration moved them elsewhere."""
        os_ = OS(m)

        def prog(thread):
            yield ops.Compute(10_000)

        threads = [os_.spawn(prog) for _ in range(m.config.cores)]
        chosen = []

        def crash():
            # cores are assigned at dispatch, so pick the core-1 thread
            # at crash time, not spawn time
            migrant = next(t for t in threads if t.core == 1)
            chosen.append(migrant)
            os_.crash_core(0, extra_tids=(migrant.tid,))

        m.sim.at(500, crash)
        os_.run_all()
        assert chosen[0].state == CRASHED
        assert sum(t.state == CRASHED for t in threads) == 2

    def test_crash_is_idempotent(self, m):
        os_ = OS(m)

        def prog(thread):
            yield ops.Compute(2_000)

        os_.spawn(prog)
        m.sim.at(100, lambda: os_.crash_core(0))
        os_.run_all()
        assert os_.crash_core(0) == [], "second crash of a dead core"
        assert os_.crashes == 1

    def test_restart_returns_core_to_service_without_resurrection(self, m):
        os_ = OS(m)

        def prog(thread):
            yield ops.Compute(1_000)

        first = [os_.spawn(prog) for _ in range(m.config.cores)]
        m.sim.at(100, lambda: os_.crash_core(0))
        m.sim.at(200, lambda: os_.restart_core(0))
        os_.run_all()
        cores_used = set()

        def late(thread):
            yield ops.Compute(10)
            cores_used.add(thread.core)

        for _ in range(m.config.cores):
            os_.spawn(late)
        os_.run_all()
        assert 0 in cores_used, "restarted core must run new threads"
        dead = [t for t in first if t.state == CRASHED]
        assert len(dead) == 1, "crash-stop: the killed thread stays dead"
        assert not os_.restart_core(1), "restart of a live core is a no-op"


class TestMachineCrash:
    def test_crash_notifies_every_lrt_and_restart_rejoins(self, m):
        m.harden()
        homed = m.crash_core(0)
        assert homed == set(), "idle LCU: no lock state was homed there"
        for lrt in m.lrts:
            assert 0 in lrt._dead_cores
            assert lrt.stats["dead_core_notes"] >= 1
        m.restart_core(0)
        for lrt in m.lrts:
            assert 0 not in lrt._dead_cores

    def test_purge_dead_tids_noop_on_empty(self, m):
        m.purge_dead_tids(set())
        m.purge_dead_tids({99})  # unknown tid at idle LCUs: nothing to do


class TestLivenessOracle:
    def test_recovered_crash_run_passes_the_oracle(self):
        # LCU lock, "busy" victim policy: the crash lands on live
        # hardware lock state and the lease machinery must recover it
        # within the liveness bound
        outcome = run_case(crash_case("lcu", seed=0))
        assert outcome.ok, outcome.summary()
        assert outcome.total_cs > 0

    def test_sabotage_trips_the_oracle(self):
        """Remove the idle-victim gate and crash a software lock's
        holder: MCS spins on the dead node forever.  The oracle must
        convert that silent hang into a structured LivenessViolation —
        this is the seeded deadlock the liveness bound exists to catch."""
        outcome = run_case(crash_case("mcs", seed=0, crash_policy="any"))
        assert not outcome.ok
        assert isinstance(outcome.violation, LivenessViolation)
        assert outcome.violation.invariant == "liveness"

    def test_sabotage_violation_is_deterministic(self):
        a = run_case(crash_case("mcs", seed=0, crash_policy="any"))
        b = run_case(crash_case("mcs", seed=0, crash_policy="any"))
        assert (not a.ok) and (not b.ok)
        assert a.violation.time == b.violation.time
        assert a.violation.message == b.violation.message

    def test_unknown_crash_policy_rejected(self):
        with pytest.raises(ValueError, match="crash_policy"):
            run_case(crash_case("mcs", seed=0, crash_policy="volcano"))


class TestCrashCells:
    @pytest.mark.parametrize("algo", ["lcu", "lcu_fb", "mcs", "mrsw"])
    @pytest.mark.parametrize("fault", list(CRASH_CLASSES))
    def test_crash_cells_recover(self, algo, fault):
        cell = run_cell(algo, "A", fault, seed=0)
        assert cell.outcome in ("recovered", "degraded"), cell.detail
        assert cell.injected >= 1, "the crash must actually land"

    def test_crash_classes_are_universal(self):
        assert set(CRASH_CLASSES) <= set(ALL_CLASSES)
        for algo in ("lcu", "lcu_fb", "mcs", "clh", "ticket", "mrsw"):
            assert set(CRASH_CLASSES) <= set(classes_for(algo, None))

    def test_degraded_evict_cells_stay_root_caused(self):
        """Regression for the two known-degraded matrix cells: forced
        eviction of lcu_fb's own LCU entries makes the fallback lock
        engage by design (that *is* the degradation path working), so
        the cell must classify as degraded — never violated — and the
        detail must carry the root cause."""
        for model in ("A", "B"):
            cell = run_cell("lcu_fb", model, "evict", seed=0)
            assert cell.outcome == "degraded", cell.detail
            assert "fallback lock engaged" in cell.detail
            assert "(inherent under forced eviction)" in cell.detail


class TestMatrixWorkers:
    def test_worker_pool_report_is_byte_identical_to_serial(self):
        kwargs = dict(
            algos=("lcu", "mcs"), models=("A",),
            classes=("crash_core", "drop"), seed=0,
        )
        serial = run_matrix(workers=0, **kwargs)
        pooled = run_matrix(workers=2, **kwargs)
        assert json.dumps(serial.to_dict(), sort_keys=True) == \
            json.dumps(pooled.to_dict(), sort_keys=True)
        assert serial.ok, [c.detail for c in serial.violated()]
        assert len(serial.cells) == 4
