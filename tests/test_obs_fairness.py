"""Tests for the fairness observatory (:mod:`repro.obs.fairness`).

Covers the overtake ledger on hand-built schedules (exact attribution),
the starvation watchdog (fires on the reader-preferring SSB, silent on
the LCU at the same bound), flight-recorder ring bounds, RunReport v4
round-trips with v3 back-compat, the zero-overhead contract
(bit-identical simulated cycles with the observatory attached), gauge
merge policies in the sweep path, and the ``repro fairness`` CLI verb.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.harness.microbench import run_microbench
from repro.obs import MetricsRegistry, build_run_report
from repro.obs.fairness import (
    FairnessError,
    FairnessObservatory,
    OvertakeLedger,
    summarize_fairness,
    validate_fairness,
)
from repro.obs.registry import MetricError
from repro.obs.report import ReportValidationError, validate_run_report
from repro.params import model_a, small_test_model

pytestmark = pytest.mark.fairness


# --------------------------------------------------------------------- #
# ledger exactness on hand-built schedules


class TestOvertakeLedger:
    def test_exact_attribution(self):
        """Grant order 3, 2, 1 over arrival order 1, 2, 3: every charge,
        pair, and mode bucket is predictable by hand."""
        led = OvertakeLedger()
        for tid in (1, 2, 3):
            led.note_request(tid)
        # writer 3 (arrived 3rd) granted over readers 1 and 2
        inc = led.note_grant(3, 3, True, [(1, 1, False), (2, 2, False)])
        assert inc == [(1, 1), (2, 1)]
        led.clear(3)
        # reader 2 granted over reader 1: second overtake for tid 1
        inc = led.note_grant(2, 2, False, [(1, 1, False)])
        assert inc == [(1, 2)]
        led.clear(2)
        # tid 1 finally granted, nobody left to overtake
        assert led.note_grant(1, 1, False, []) == []
        led.clear(1)

        assert led.total == 3
        assert led.max_overtake == 2
        assert led.exempted == 0
        assert led.per_victim_max == {1: 2, 2: 1}
        assert led.pairs == {(1, 3): 1, (2, 3): 1, (1, 2): 1}
        assert led.by_mode == {
            "reader_by_reader": 1, "reader_by_writer": 2,
            "writer_by_reader": 0, "writer_by_writer": 0,
        }

    def test_later_arrivals_never_charged(self):
        """A grant only overtakes waiters that arrived *earlier*."""
        led = OvertakeLedger()
        led.note_request(1)
        assert led.note_grant(1, 1, True, [(2, 2, False), (3, 5, True)]) == []
        assert led.total == 0

    def test_excused_waiters_skipped(self):
        """The oracle excuses crashed holders' victims; the ledger must
        not charge an excused waiter."""
        led = OvertakeLedger()
        led.note_request(1)
        led.note_request(2)
        inc = led.note_grant(3, 3, True, [(1, 1, False), (2, 2, False)],
                             excused={1})
        assert inc == [(2, 1)]
        assert led.counts.get(1, 0) == 0
        assert led.total == 1

    def test_reader_batch_exemption(self):
        """With the exemption on, a reader joining an active read batch
        past a waiting *writer* is recorded but not charged; waiting
        readers are still charged, and without a read holder the writer
        is charged too."""
        led = OvertakeLedger(reader_batch_exempt=True)
        waiting = [(1, 1, True), (2, 2, False)]
        inc = led.note_grant(3, 3, False, waiting, read_held=True)
        assert inc == [(2, 1)]
        assert led.exempted == 1
        assert led.by_mode["writer_by_reader"] == 0
        # same grant with no read holder: the writer is a real victim
        inc = led.note_grant(4, 4, False, waiting, read_held=False)
        assert [v for v, _ in inc] == [1, 2]
        assert led.by_mode["writer_by_reader"] == 1

    def test_top_pairs_ranked_by_count(self):
        led = OvertakeLedger()
        for _ in range(3):
            led.note_grant(9, 100, True, [(1, 1, False)])
        led.note_grant(8, 100, True, [(2, 2, False)])
        assert led.top_pairs(2) == [(1, 9, 3), (2, 8, 1)]
        d = led.to_dict()
        assert d["total"] == 4 and d["max"] == 3
        assert d["top_pairs"][0] == [1, 9, 3]


# --------------------------------------------------------------------- #
# scripted observatory: deterministic event replay, no simulator


class _Sim:
    def __init__(self):
        self.now = 0


class _Machine:
    def __init__(self):
        self.sim = _Sim()


class _Thread:
    def __init__(self, tid):
        self.tid = tid


class _ScriptedLock:
    """Minimal observed lock: replays a hand-built event schedule."""

    name = "scripted"

    def __init__(self):
        self.machine = _Machine()
        self._observers = []

    def lock_id(self, handle):
        return handle

    def add_observer(self, fn):
        self._observers.append(fn)

    def remove_observer(self, fn):
        self._observers.remove(fn)

    def emit(self, t, event, tid, write, handle=0x40):
        self.machine.sim.now = t
        for fn in list(self._observers):
            fn(event, _Thread(tid), handle, write)


def _scripted(obs=None):
    algo = _ScriptedLock()
    obs = obs if obs is not None else FairnessObservatory()
    obs.attach_algorithm(algo)
    return algo, obs


class TestScriptedObservatory:
    def test_hand_built_schedule_summary_is_exact(self):
        algo, obs = _scripted()
        algo.emit(0, "request", 2, True)
        algo.emit(1, "request", 1, False)
        algo.emit(2, "request", 3, False)
        # reader 3 (arrived last) granted first: charges writer 2
        # (w-by-r) and reader 1 (r-by-r) — the lock was free, so no
        # batch exemption applies
        algo.emit(3, "acquire", 3, False)
        # reader 1 joins the active read batch past writer 2: legal on
        # reader-preference designs, so recorded as exempted
        algo.emit(4, "acquire", 1, False)
        algo.emit(5, "release", 3, False)
        algo.emit(6, "release", 1, False)
        algo.emit(9, "acquire", 2, True)
        algo.emit(10, "release", 2, True)

        s = obs.lock_summary(0x40)
        assert s is not None
        assert s["grants"] == {"read": 2, "write": 1}
        ot = s["overtakes"]
        assert ot["total"] == 2 and ot["max"] == 1 and ot["exempted"] == 1
        assert ot["by_mode"] == {
            "reader_by_reader": 1, "reader_by_writer": 0,
            "writer_by_reader": 1, "writer_by_writer": 0,
        }
        assert sorted(ot["top_pairs"]) == [[1, 3, 1], [2, 3, 1]]
        # waits: tid3 = 3-2 = 1, tid1 = 4-1 = 3, tid2 = 9-0 = 9
        assert s["wait"]["read"]["count"] == 2
        assert s["wait"]["read"]["max"] == 3
        assert s["wait"]["write"]["count"] == 1
        assert s["wait"]["write"]["max"] == 9
        assert s["longest_wait"] == 9
        assert s["writer_share"] == pytest.approx(1 / 3)
        assert s["per_thread"]["2"] == {
            "grants": 1, "wait_total": 9, "wait_max": 9, "overtaken_max": 1,
        }
        assert s["starvation"]["alerts"] == 0

        # the whole section round-trips the validator
        validate_fairness(obs.to_dict())
        assert "scripted@0x40" in obs.to_dict()["locks"]

    def test_watchdog_one_alert_per_request(self):
        algo, obs = _scripted(FairnessObservatory(starvation_bound=5))
        algo.emit(0, "request", 1, True)
        algo.emit(10, "request", 2, False)   # any event runs the check
        assert len(obs.alerts) == 1
        a = obs.alerts[0]
        assert (a.lock, a.tid, a.write) == ("scripted@0x40", 1, True)
        assert a.waited == 10 and a.t == 10 and a.bound == 5
        # tid 2 crosses the bound too, but tid 1 is never re-alerted
        algo.emit(50, "release", 9, False)
        assert [al.tid for al in obs.alerts] == [1, 2]
        # both still starving at t=90: one alert per request, no churn
        algo.emit(90, "release", 9, False)
        assert len(obs.alerts) == 2
        s = obs.lock_summary(0x40)
        assert s["starvation"]["alerts"] == 2
        assert len(s["starvation"]["alerts_detail"]) == 2

    def test_alert_detail_cap(self):
        obs = FairnessObservatory(starvation_bound=5, max_alert_details=1)
        algo, _ = _scripted(obs)
        for tid in (1, 2, 3):
            algo.emit(tid, "request", tid, True)
        algo.emit(100, "request", 9, False)
        s = obs.lock_summary(0x40)
        assert s["starvation"]["alerts"] == 3
        assert len(s["starvation"]["alerts_detail"]) == 1

    def test_slo_violation_accounting(self):
        algo, obs = _scripted(FairnessObservatory(slo=2))
        algo.emit(0, "request", 1, True)
        algo.emit(1, "acquire", 1, True)     # wait 1: within SLO
        algo.emit(2, "release", 1, True)
        algo.emit(2, "request", 2, True)
        algo.emit(12, "acquire", 2, True)    # wait 10: violation
        s = obs.lock_summary(0x40)
        assert s["slo"] == {
            "target": 2, "checked": 2, "violations": 1,
            "excess_cycles": 8, "time_in_violation": 8,
        }

    def test_abandon_closes_the_waiter(self):
        algo, obs = _scripted()
        algo.emit(0, "request", 1, True)
        algo.emit(1, "request", 2, False)
        algo.emit(2, "abandon", 1, True)
        algo.emit(3, "acquire", 2, False)    # must not charge tid 1
        s = obs.lock_summary(0x40)
        assert s["abandoned"] == 1
        assert s["overtakes"]["total"] == 0

    def test_detach_removes_observer(self):
        algo, obs = _scripted()
        algo.emit(0, "request", 1, True)
        obs.detach()
        assert algo._observers == []
        algo.emit(5, "acquire", 1, True)
        assert obs.lock_summary(0x40)["grants"]["write"] == 0

    def test_constructor_validation(self):
        with pytest.raises(FairnessError):
            FairnessObservatory(slo=0)
        with pytest.raises(FairnessError):
            FairnessObservatory(slo=-10)
        with pytest.raises(FairnessError):
            FairnessObservatory(starvation_bound=0)

    def test_window_gauges(self):
        algo, obs = _scripted(FairnessObservatory(window=100))
        reg = MetricsRegistry()
        obs.attach_registry(reg)
        for t, tid, write in ((0, 1, False), (1, 2, False), (2, 3, True)):
            algo.emit(t, "request", tid, write)
            algo.emit(t, "acquire", tid, write)
            algo.emit(t, "release", tid, write)
        assert reg.gauge("fairness.window.jain").read() == pytest.approx(1.0)
        assert reg.gauge("fairness.window.writer_share").read() == (
            pytest.approx(1 / 3))
        # events age out of the window
        algo.emit(500, "request", 1, True)
        algo.emit(500, "acquire", 1, True)
        assert reg.gauge("fairness.window.writer_share").read() == 1.0


# --------------------------------------------------------------------- #
# real runs: watchdog discrimination, ring bounds, zero overhead


def _observed_run(lock, obs, seed=1, **kw):
    kwargs = dict(threads=8, write_pct=20, fixed_roles=True,
                  mode="duration", duration=40_000, seed=seed)
    kwargs.update(kw)
    return run_microbench(model_a(), lock, fairness=obs, **kwargs)


class TestWatchdogOnRealLocks:
    BOUND = 4_000

    def test_fires_on_ssb_reader_preference(self):
        obs = FairnessObservatory(starvation_bound=self.BOUND,
                                  ring_capacity=8)
        _observed_run("ssb", obs)
        (s,) = obs.to_dict()["locks"].values()
        assert s["starvation"]["alerts"] > 0
        # every carried alert snapshots the flight recorder, bounded by
        # the configured ring depth
        for detail in s["starvation"]["alerts_detail"]:
            assert 0 < len(detail["events"]) <= 8

    def test_silent_on_lcu_at_same_bound(self):
        obs = FairnessObservatory(starvation_bound=self.BOUND)
        _observed_run("lcu", obs)
        (s,) = obs.to_dict()["locks"].values()
        assert s["starvation"]["alerts"] == 0
        # and the fair lock's worst waiter stayed far under the bound
        assert s["longest_wait"] < self.BOUND


class TestZeroOverhead:
    @pytest.mark.parametrize("lock", ["lcu", "ssb", "mcs", "ticket"])
    def test_observatory_never_moves_simulated_time(self, lock):
        kw = dict(threads=6, write_pct=30, iters_per_thread=30, seed=7)
        ref = run_microbench(small_test_model(), lock, **kw)
        obs = FairnessObservatory()
        instr = run_microbench(small_test_model(), lock, fairness=obs, **kw)
        assert instr.elapsed == ref.elapsed
        assert instr.total_cs == ref.total_cs


# --------------------------------------------------------------------- #
# RunReport v4 round-trip and v3 back-compat


class TestReportIntegration:
    def _report(self):
        obs = FairnessObservatory()
        registry = MetricsRegistry()
        r = run_microbench(small_test_model(), "lcu", registry=registry,
                           fairness=obs, threads=4, write_pct=50,
                           iters_per_thread=25)
        return build_run_report(
            "microbench",
            {"lock": "lcu", "threads": r.threads},
            {"total_cs": r.total_cs},
            metrics=registry.to_dict(),
            fairness=obs.to_dict(),
        )

    def test_v4_round_trip(self):
        report = self._report()
        assert report["version"] == 4
        validate_run_report(report)
        reloaded = json.loads(json.dumps(report))
        validate_run_report(reloaded)
        assert reloaded["fairness"] == report["fairness"]
        text = summarize_fairness(reloaded["fairness"])
        assert "jain" in text and "overtakes" in text

    def test_v3_without_fairness_still_validates(self):
        report = self._report()
        del report["fairness"]
        report["version"] = 3
        validate_run_report(report)

    def test_fairness_section_requires_v4(self):
        report = self._report()
        report["version"] = 3
        with pytest.raises(ReportValidationError,
                           match="requires version 4"):
            validate_run_report(report)

    def test_validator_rejects_malformed_section(self):
        with pytest.raises(FairnessError):
            validate_fairness(["not", "a", "dict"])
        with pytest.raises(FairnessError):
            validate_fairness({"locks": {"x": {"grants": "nope"}}})


# --------------------------------------------------------------------- #
# sweep merge: byte-identical for any worker count, gauge policies


class TestSweepFairness:
    def _specs(self):
        from repro.harness.bench import BenchCellSpec
        return [
            BenchCellSpec("lcu", "A", 4, iters=25),
            BenchCellSpec("ssb", "A", 4, iters=25),
        ]

    @pytest.mark.slow
    def test_parallel_merge_matches_serial_bytes(self):
        from repro.harness.parallel import run_sweep

        serial = run_sweep(self._specs(), seeds=[1, 2], workers=0,
                           fairness=True)
        parallel = run_sweep(self._specs(), seeds=[1, 2], workers=2,
                             fairness=True)
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(parallel, sort_keys=True))
        validate_run_report(serial)
        # the observatory's metrics actually made it into the merge
        counters = serial["metrics"]["counters"]
        assert any(k.startswith("fairness.") for k in counters)

    def test_fairness_flag_never_moves_simulated_time(self):
        from repro.harness.parallel import run_sweep

        plain = run_sweep(self._specs(), seeds=[1], workers=0)
        fair = run_sweep(self._specs(), seeds=[1], workers=0,
                         fairness=True)
        for a, b in zip(plain["results"]["cells"],
                        fair["results"]["cells"]):
            assert a["result"]["elapsed"] == b["result"]["elapsed"]
            assert a["result"]["total_cs"] == b["result"]["total_cs"]


class TestGaugeMergePolicies:
    def _state(self, last, mx, mn, sm, skip):
        reg = MetricsRegistry()
        reg.gauge("g.last", lambda: last)
        reg.gauge("g.max", lambda: mx, merge="max")
        reg.gauge("g.min", lambda: mn, merge="min")
        reg.gauge("g.sum", lambda: sm, merge="sum")
        reg.gauge("g.skip", lambda: skip, merge="skip")
        return reg.to_state()

    def test_policies_apply_across_shards(self):
        merged = MetricsRegistry()
        merged.merge_state(self._state(1.0, 10.0, 5.0, 2.0, 99.0))
        merged.merge_state(self._state(3.0, 7.0, 2.0, 2.5, 99.0))
        assert merged.gauge("g.last").read() == 3.0
        assert merged.gauge("g.max").read() == 10.0
        assert merged.gauge("g.min").read() == 2.0
        assert merged.gauge("g.sum").read() == 4.5
        assert "g.skip" not in self._state(1, 1, 1, 1, 1)["gauges"]
        assert merged.gauge("g.skip").read() == 0.0

    def test_merge_order_independent_for_commutative_policies(self):
        a, b = self._state(1, 4, 3, 1, 0), self._state(2, 9, 1, 2, 0)
        r1 = MetricsRegistry().merge_state(a).merge_state(b)
        r2 = MetricsRegistry().merge_state(b).merge_state(a)
        for name in ("g.max", "g.min", "g.sum"):
            assert r1.gauge(name).read() == r2.gauge(name).read()

    def test_unknown_policy_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError, match="merge policy"):
            reg.gauge("g.bad", lambda: 0.0, merge="average")

    def test_legacy_state_without_gauges_merges(self):
        state = {"counters": {"c": 3}, "histograms": {}, "series": {}}
        reg = MetricsRegistry().merge_state(state)
        assert reg.counter("c").value == 3


# --------------------------------------------------------------------- #
# CLI: the fairness verb and the trajectory diff gate


def _run_cli(*argv):
    from repro.__main__ import main
    out = io.StringIO()
    with redirect_stdout(out):
        code = main(list(argv))
    return code, out.getvalue()


class TestFairnessCli:
    def test_fairness_verb_emits_scorecard_and_trajectory(self, tmp_path):
        out_file = tmp_path / "BENCH_fairness.json"
        for label in ("t0", "t1"):
            code, out = _run_cli(
                "fairness", "--quick", "--locks", "lcu,ssb",
                "--models", "A", "--out", str(out_file), "--label", label,
            )
            assert code == 0
        assert "jain" in out and "lcu" in out and "ssb" in out
        doc = json.loads(out_file.read_text())
        cells = doc["records"][-1]["cells"]
        assert {(c["lock"], c["model"]) for c in cells} == {
            ("lcu", "A"), ("ssb", "A"),
        }
        for c in cells:
            assert c["zero_overhead"] is True
            assert 0.0 < c["jain"] <= 1.0

        # same trajectory diffed against itself: no regressions
        code, out = _run_cli(
            "diff", str(out_file), str(out_file), "--fail-on-regression",
        )
        assert code == 0

    def test_microbench_fairness_flag(self):
        code, out = _run_cli(
            "microbench", "--threads", "4", "--iters", "30",
            "--lock", "lcu", "--fairness",
        )
        assert code == 0
        assert "fairness" in out

    def test_fairness_rejects_unknown_lock(self):
        code, _ = _run_cli("fairness", "--quick", "--locks", "nosuch")
        assert code == 2
