"""Thread suspension, migration and remote-release tests (paper III-C,
Figure 7)."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from tests.conftest import RWTracker, drain_and_check


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestRemoteRelease:
    def test_release_from_other_lcu_write(self, m):
        """Acquire on core 0, release via core 2's LCU (models a migrated
        owner): the LRT forwards the release to the recorded head."""
        lcu0, lcu2 = m.lcus[0], m.lcus[2]
        addr = m.alloc.alloc_line()
        lcu0.instr_acquire(1, addr, True)
        m.sim.run(until=m.sim.now + 5_000,
                  stop_when=lambda: lcu0.poll_ready(1, addr))
        assert lcu0.instr_acquire(1, addr, True) is True
        # "migrate": the release arrives at a different LCU
        assert lcu2.instr_release(1, addr, True) is True
        m.drain()
        lrt = m.lrts[m.mem.home_of(addr)]
        assert lrt.entry(addr) is None, "lock not freed by remote release"
        assert m.total_lcu_entries_in_use() == 0

    def test_release_from_other_lcu_with_queue(self, m):
        """Remote release of a contended lock: the head node must hand the
        lock to the waiting thread."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        lcu0 = m.lcus[0]
        got = []

        # tid 50 acquires via LCU0 directly
        lcu0.instr_acquire(50, addr, True)
        m.sim.run(until=m.sim.now + 5_000,
                  stop_when=lambda: lcu0.poll_ready(50, addr))
        assert lcu0.instr_acquire(50, addr, True)

        def waiter(thread):
            yield from api.lock(addr, True)
            got.append(m.sim.now)
            yield from api.unlock(addr, True)

        os_.spawn(waiter)
        # let the waiter enqueue, then release tid 50's lock from LCU 3
        m.sim.run(until=m.sim.now + 2_000)
        assert m.lcus[3].instr_release(50, addr, True)
        os_.run_all()
        assert got
        drain_and_check(m)

    def test_remote_read_release_walks_queue(self, m):
        """A migrated *reader* may not be the head: the release message is
        forwarded along the queue until the right node is found."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()

        def head_reader(thread):
            yield from api.lock(addr, False)
            tracker.enter(False)
            yield ops.Compute(4_000)
            tracker.exit(False)
            yield from api.unlock(addr, False)

        # tid 60 becomes the second reader via LCU1, then "migrates" and
        # releases from LCU3.
        def migrating_reader(thread):
            lcu1 = m.lcus[1]
            yield ops.Compute(300)
            while not lcu1.instr_acquire(60, addr, False):
                yield ops.Compute(20)
            tracker.enter(False)
            yield ops.Compute(200)
            tracker.exit(False)
            while not m.lcus[3].instr_release(60, addr, False):
                yield ops.Compute(20)

        def writer(thread):
            yield ops.Compute(600)
            yield from api.lock(addr, True)
            tracker.enter(True)
            tracker.exit(True)
            yield from api.unlock(addr, True)

        os_.spawn(head_reader)
        os_.spawn(migrating_reader)
        os_.spawn(writer)
        os_.run_all(max_cycles=50_000_000)
        tracker.assert_clean()
        drain_and_check(m)

    def test_borrowed_threadid_release(self, m):
        """A thread may release a lock acquired by a different thread by
        borrowing its threadid (paper III-C)."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        released = []

        def owner(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(100)
            # never releases: thread 2 will do it with tid borrowed

        def releaser(thread):
            yield ops.Compute(2_000)
            owner_tid = 1  # first spawned thread's tid
            lcu = m.lcus[thread.core]
            while not lcu.instr_release(owner_tid, addr, True):
                yield ops.Compute(20)
            released.append(True)

        os_.spawn(owner)
        os_.spawn(releaser)
        os_.run_all()
        m.drain()
        assert released
        lrt = m.lrts[m.mem.home_of(addr)]
        assert lrt.entry(addr) is None


class TestMigrationUnderPreemption:
    def test_oversubscribed_migrating_threads_complete(self, m):
        """Threads bounce between cores mid-wait; duplicate queue entries
        with the same tid must pass through harmlessly (paper III-C)."""
        os_ = OS(m, quantum=1_200, prefer_affinity=False)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        done = [0]

        def prog(thread):
            for i in range(8):
                write = i % 3 == 0
                yield from api.lock(addr, write)
                tracker.enter(write)
                yield ops.Compute(150)
                tracker.exit(write)
                yield from api.unlock(addr, write)
            done[0] += 1

        n = m.config.cores * 3
        for _ in range(n):
            os_.spawn(prog)
        threads = os_.threads
        os_.run_all(max_cycles=500_000_000)
        tracker.assert_clean()
        assert done[0] == n
        assert sum(t.migrations for t in threads) > 0, (
            "test did not exercise migration"
        )
        drain_and_check(m)

    def test_suspension_hands_lock_over(self, m):
        """A thread preempted while spinning receives its grant via the
        timer path; others make progress meanwhile."""
        os_ = OS(m, quantum=800)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        done = [0]

        def spin_heavy(thread):
            for _ in range(6):
                yield from api.lock(addr, True)
                tracker.enter(True)
                yield ops.Compute(700)  # nearly a whole quantum
                tracker.exit(True)
                yield from api.unlock(addr, True)
            done[0] += 1

        n = m.config.cores * 2
        for _ in range(n):
            os_.spawn(spin_heavy)
        os_.run_all(max_cycles=500_000_000)
        tracker.assert_clean()
        assert done[0] == n
        timeouts = sum(l.stats["timeouts"] for l in m.lcus)
        # with this much preemption some grants must have been forwarded
        assert timeouts >= 0  # informational; correctness is the point
        drain_and_check(m)
