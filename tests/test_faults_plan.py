"""Fault plans: validation, JSON round-trips, seeded generation, and the
injector's arming/classification behaviour."""

import pytest

from repro.cpu.machine import Machine
from repro.cpu.os_sched import OS
from repro.faults.injector import FaultInjector, FaultOutcome
from repro.faults.plan import (
    ALL_CLASSES,
    LINK_SETS,
    FaultEvent,
    FaultPlan,
    generate_plan,
)
from repro.params import small_test_model

pytestmark = pytest.mark.faults


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            FaultEvent(kind="meteor", at=100)

    def test_rejects_unknown_link_set(self):
        with pytest.raises(ValueError, match="unknown link set"):
            FaultEvent(kind="drop", at=100, links="wifi")

    def test_point_event_window(self):
        e = FaultEvent(kind="evict", at=500)
        assert e.end == 500
        w = FaultEvent(kind="drop", at=500, duration=200, prob=0.5)
        assert w.end == 700

    def test_round_trip(self):
        e = FaultEvent(kind="delay", at=10, duration=99, prob=0.25,
                       links="inter_chip", max_delay=400)
        assert FaultEvent.from_dict(e.to_dict()) == e

    def test_from_dict_rejects_unknown_fields(self):
        doc = FaultEvent(kind="evict", at=5).to_dict()
        doc["severity"] = "bad"
        with pytest.raises(ValueError, match="unknown FaultEvent fields"):
            FaultEvent.from_dict(doc)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = generate_plan(seed=42, horizon=50_000)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.to_json() == plan.to_json()

    def test_from_dict_rejects_unknown_fields(self):
        doc = generate_plan(seed=1, classes=["evict"]).to_dict()
        doc["comment"] = "hello"
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict(doc)

    def test_from_dict_rejects_future_format(self):
        doc = generate_plan(seed=1, classes=["evict"]).to_dict()
        doc["format"] = 99
        with pytest.raises(ValueError, match="unsupported FaultPlan format"):
            FaultPlan.from_dict(doc)

    def test_classes_and_needs_reliable(self):
        plan = generate_plan(seed=3, classes=["stall", "drop"])
        assert set(plan.classes) == {"stall", "drop"}
        assert plan.needs_reliable()
        sched_only = generate_plan(seed=3, classes=["preempt"])
        assert not sched_only.needs_reliable()


class TestGeneration:
    def test_same_seed_same_plan(self):
        assert generate_plan(seed=7) == generate_plan(seed=7)

    def test_different_seed_different_plan(self):
        assert generate_plan(seed=7) != generate_plan(seed=8)

    def test_covers_requested_classes(self):
        plan = generate_plan(seed=0, classes=ALL_CLASSES)
        assert set(plan.classes) == set(ALL_CLASSES)

    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError, match="unknown fault classes"):
            generate_plan(seed=0, classes=["drop", "gamma_ray"])

    def test_events_land_inside_horizon(self):
        horizon = 40_000
        plan = generate_plan(seed=11, horizon=horizon)
        for e in plan.events:
            assert horizon // 10 <= e.at < (horizon * 8) // 10

    def test_link_sets_respected(self):
        for links in LINK_SETS:
            plan = generate_plan(seed=5, classes=["drop"], links=links)
            assert all(e.links == links for e in plan.events)


class TestInjector:
    def _machine(self):
        machine = Machine(small_test_model(), tiebreak_seed=1)
        return machine, OS(machine)

    def test_arm_hardens_and_installs_reliable(self):
        machine, os_ = self._machine()
        plan = generate_plan(seed=2, classes=["drop", "evict"],
                             horizon=10_000)
        inj = FaultInjector(machine, os_, plan)
        inj.arm()
        assert machine.lcus[0].hardened
        assert machine.lrts[0].hardened
        assert inj.reliable is not None
        assert machine.net.fault_filter is not None

    def test_sched_only_plan_skips_reliable(self):
        machine, os_ = self._machine()
        plan = generate_plan(seed=2, classes=["preempt"], horizon=10_000)
        inj = FaultInjector(machine, os_, plan)
        inj.arm()
        assert inj.reliable is None
        assert machine.net.fault_filter is None

    def test_arming_twice_rejected(self):
        machine, os_ = self._machine()
        inj = FaultInjector(
            machine, os_, generate_plan(seed=2, classes=["evict"]),
        )
        inj.arm()
        with pytest.raises(AssertionError):
            inj.arm()

    def test_capacity_window_lifts(self):
        machine, os_ = self._machine()
        plan = FaultPlan(seed=1, events=(
            FaultEvent(kind="capacity", at=100, duration=200, limit=0),
        ))
        inj = FaultInjector(machine, os_, plan)
        inj.arm()
        machine.sim.run(until=150)
        assert all(
            lcu._forced_capacity == 0 for lcu in machine.lcus
        ), "window open: capacity clamped"
        machine.sim.run(until=1_000)
        assert all(
            lcu._forced_capacity is None for lcu in machine.lcus
        ), "window closed: capacity restored"

    def test_classify_taxonomy(self):
        machine, os_ = self._machine()
        plan = generate_plan(seed=2, classes=["evict"], horizon=10_000)
        inj = FaultInjector(machine, os_, plan)
        inj.arm()
        machine.sim.run(until=20_000)
        clean = inj.classify(violation=None)
        assert [o.outcome for o in clean] == ["recovered"]
        assert isinstance(clean[0], FaultOutcome)
        bad = inj.classify(violation="rw_exclusion: two writers")
        assert [o.outcome for o in bad] == ["violated"]
        assert "two writers" in bad[0].detail
