"""Lifecycle hardening for the telemetry layer.

Two historically sharp edges, now specified:

* :class:`MetricsRegistry` sampling — double-start, stop mid-run,
  restart on a fresh simulator, and the generation bump that makes any
  in-flight tick inert after ``stop_sampling``.
* :class:`Histogram` percentiles on empty histograms — raising instead
  of returning silent garbage, with every serialization path
  (``summary``, run reports) degrading explicitly.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.stats import Histogram


class TestSamplingLifecycle:
    def _registry_with_gauge(self):
        reg = MetricsRegistry()
        state = {"v": 0}
        reg.gauge("g", lambda: state["v"])
        return reg, state

    def test_is_sampling_tracks_start_stop(self):
        reg, _ = self._registry_with_gauge()
        sim = Simulator()
        assert not reg.is_sampling
        reg.start_sampling(sim, interval=10)
        assert reg.is_sampling
        reg.stop_sampling()
        assert not reg.is_sampling

    def test_stop_before_start_is_idempotent(self):
        reg, _ = self._registry_with_gauge()
        reg.stop_sampling()
        reg.stop_sampling()
        assert not reg.is_sampling
        assert reg.series == {}

    def test_sampling_records_series(self):
        reg, state = self._registry_with_gauge()
        sim = Simulator()
        reg.start_sampling(sim, interval=10)
        state["v"] = 3
        sim.run(until=35)
        assert [t for t, _ in reg.series["g"]] == [10, 20, 30]
        assert all(v == 3 for _, v in reg.series["g"])

    def test_stop_mid_run_makes_inflight_tick_inert(self):
        reg, _ = self._registry_with_gauge()
        sim = Simulator()
        reg.start_sampling(sim, interval=10)
        sim.run(until=25)              # samples at 10 and 20; tick queued at 30
        reg.stop_sampling()
        sim.run(until=100)             # the queued tick fires but must no-op
        assert [t for t, _ in reg.series["g"]] == [10, 20]

    def test_double_start_single_cadence(self):
        # Restarting sampling must not leave two live tick chains behind:
        # the generation bump kills the first chain's self-reschedule.
        reg, _ = self._registry_with_gauge()
        sim = Simulator()
        reg.start_sampling(sim, interval=10)
        reg.start_sampling(sim, interval=7)
        sim.run(until=30)
        times = [t for t, _ in reg.series["g"]]
        # one stale tick from the first chain may fire (queued before the
        # restart), but it must not re-arm: only the 7-cycle cadence lives
        assert times.count(10) <= 1
        assert [t for t in times if t % 7 == 0] == [7, 14, 21, 28]

    def test_restart_on_fresh_simulator(self):
        reg, _ = self._registry_with_gauge()
        sim1 = Simulator()
        reg.start_sampling(sim1, interval=10)
        sim1.run(until=15)
        reg.stop_sampling()
        sim2 = Simulator()
        reg.start_sampling(sim2, interval=5)
        sim2.run(until=12)
        sim1.run(until=200)            # stale sim1 tick stays inert
        times = [t for t, _ in reg.series["g"]]
        assert times == [10, 5, 10]    # one from sim1, two from sim2
        assert reg.is_sampling

    def test_bad_interval_rejected(self):
        from repro.obs import MetricError

        reg, _ = self._registry_with_gauge()
        with pytest.raises(MetricError):
            reg.start_sampling(Simulator(), interval=0)
        assert not reg.is_sampling


class TestEmptyHistogram:
    def test_empty_property(self):
        h = Histogram(bucket_width=8)
        assert h.empty
        h.add(3)
        assert not h.empty

    def test_percentile_on_empty_raises(self):
        h = Histogram(bucket_width=8)
        with pytest.raises(ValueError, match="empty histogram"):
            h.percentile(50)

    @pytest.mark.parametrize("p", [-1, -0.001, 100.001, 200])
    def test_percentile_out_of_range_raises(self, p):
        h = Histogram(bucket_width=8)
        h.add(1)
        with pytest.raises(ValueError, match="percentile"):
            h.percentile(p)

    def test_percentile_bounds_ok_when_nonempty(self):
        h = Histogram(bucket_width=8)
        for v in (1, 2, 3):
            h.add(v)
        assert h.percentile(0) <= h.percentile(100)

    def test_summary_of_empty_has_no_percentiles(self):
        s = Histogram(bucket_width=8).summary()
        assert s["count"] == 0
        assert s["percentiles"] == {}

    def test_registry_dump_with_empty_histogram_validates(self):
        from repro.obs import build_run_report

        reg = MetricsRegistry()
        reg.histogram("h", bucket_width=8)   # never adds a sample
        report = build_run_report("microbench", {}, {},
                                  metrics=reg.to_dict())
        assert report["metrics"]["histograms"]["h"]["percentiles"] == {}
