"""Tests for the OS scheduling model: dispatch, preemption, migration,
futexes, sleep, yield."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.cpu.os_sched import DONE, DeadlockError


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestBasicExecution:
    def test_single_thread_computes(self, m):
        os_ = OS(m)

        def prog(thread):
            yield ops.Compute(100)
            yield ops.Compute(50)

        t = os_.spawn(prog)
        end = os_.run_all()
        assert t.state == DONE
        assert end >= 150

    def test_return_values_flow_back(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        seen = []

        def prog(thread):
            yield ops.Store(addr, 7)
            v = yield ops.Load(addr)
            seen.append(v)
            old = yield ops.Rmw(addr, lambda x: x * 2)
            seen.append(old)

        os_.spawn(prog)
        os_.run_all()
        assert seen == [7, 7]
        assert m.mem.peek(addr) == 14

    def test_threads_fill_cores(self, m):
        os_ = OS(m)
        cores_used = set()

        def prog(thread):
            yield ops.Compute(10)
            cores_used.add(thread.core)

        for _ in range(m.config.cores):
            os_.spawn(prog)
        os_.run_all()
        assert cores_used == set(range(m.config.cores))

    def test_spawn_inside_program(self, m):
        os_ = OS(m)
        ran = []

        def child(thread):
            yield ops.Compute(1)
            ran.append("child")

        def parent(thread):
            yield ops.Compute(1)
            os_.spawn(child)
            ran.append("parent")

        os_.spawn(parent)
        os_.run_all()
        assert sorted(ran) == ["child", "parent"]


class TestPreemption:
    def test_oversubscription_round_robins(self, m):
        """More threads than cores: everyone still finishes."""
        os_ = OS(m, quantum=500)
        finished = []

        def prog(thread):
            for _ in range(10):
                yield ops.Compute(200)
            finished.append(thread.tid)

        n = m.config.cores * 3
        for _ in range(n):
            os_.spawn(prog)
        os_.run_all()
        assert len(finished) == n

    def test_preemption_counted(self, m):
        os_ = OS(m, quantum=300)

        def prog(thread):
            for _ in range(20):
                yield ops.Compute(100)

        threads = [os_.spawn(prog) for _ in range(m.config.cores * 2)]
        os_.run_all()
        assert sum(t.preemptions for t in threads) > 0

    def test_no_preemption_when_cores_free(self, m):
        os_ = OS(m, quantum=100)

        def prog(thread):
            for _ in range(20):
                yield ops.Compute(100)

        threads = [os_.spawn(prog) for _ in range(m.config.cores)]
        os_.run_all()
        assert all(t.preemptions == 0 for t in threads)

    def test_spinning_thread_is_preempted(self, m):
        """A thread stuck in WaitLine must lose the core at quantum end."""
        os_ = OS(m, quantum=400)
        addr = m.alloc.alloc_line()
        log = []

        def spinner(thread):
            yield ops.Load(addr)
            yield ops.WaitLine(addr)   # nobody will ever write: spins
            log.append("spinner-resumed")

        def workers(thread):
            yield ops.Compute(50)
            log.append("worker")

        for _ in range(m.config.cores):
            os_.spawn(spinner)
        for _ in range(m.config.cores):
            os_.spawn(workers)
        # run long enough for the quantum to expire and workers to run
        m.sim.run(until=5_000)
        assert log.count("worker") == m.config.cores


class TestMigration:
    def test_migration_happens_under_oversubscription(self, m):
        os_ = OS(m, quantum=200, prefer_affinity=False)

        def prog(thread):
            for _ in range(30):
                yield ops.Compute(80)

        threads = [os_.spawn(prog) for _ in range(m.config.cores * 2)]
        os_.run_all()
        assert sum(t.migrations for t in threads) > 0

    def test_affinity_keeps_core_when_free(self, m):
        os_ = OS(m, quantum=100, prefer_affinity=True)

        def prog(thread):
            for _ in range(10):
                yield ops.Compute(120)

        threads = [os_.spawn(prog) for _ in range(m.config.cores)]
        os_.run_all()
        assert all(t.migrations == 0 for t in threads)


class TestBlocking:
    def test_sleep_releases_core(self, m):
        os_ = OS(m)
        order = []

        def sleeper(thread):
            order.append(("sleep-start", m.sim.now))
            yield ops.SleepFor(1000)
            order.append(("sleep-end", m.sim.now))

        os_.spawn(sleeper)
        os_.run_all()
        start = dict(order)["sleep-start"]
        end = dict(order)["sleep-end"]
        assert end - start >= 1000

    def test_futex_wait_wake(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        m.mem.poke(addr, 1)
        events = []

        def waiter(thread):
            slept = yield ops.FutexWait(addr, 1)
            events.append(("woke", slept))

        def waker(thread):
            yield ops.Compute(500)
            yield ops.Store(addr, 0)
            n = yield ops.FutexWake(addr, 1)
            events.append(("woken", n))

        os_.spawn(waiter)
        os_.spawn(waker)
        os_.run_all()
        assert ("woke", True) in events
        assert ("woken", 1) in events

    def test_futex_wait_value_mismatch_returns_immediately(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        m.mem.poke(addr, 5)
        res = []

        def prog(thread):
            slept = yield ops.FutexWait(addr, 1)
            res.append(slept)

        os_.spawn(prog)
        os_.run_all()
        assert res == [False]

    def test_yield_cpu(self, m):
        os_ = OS(m, quantum=10**9)
        order = []

        def a(thread):
            order.append("a1")
            yield ops.YieldCPU()
            order.append("a2")
            yield ops.Compute(1)

        # saturate all cores so the yield actually hands over
        def filler(thread):
            yield ops.Compute(5000)

        for _ in range(m.config.cores - 1):
            os_.spawn(filler)
        os_.spawn(a)
        os_.spawn(a)
        os_.run_all()
        assert order.count("a2") == 2


class TestDeadlockDetection:
    def test_stuck_thread_raises(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def prog(thread):
            yield ops.FutexWait(addr, 0)  # never woken

        os_.spawn(prog)
        with pytest.raises(DeadlockError):
            os_.run_all()
