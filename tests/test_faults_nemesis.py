"""The nemesis matrix: recovery verdicts, replayability, and the
zero-overhead guarantee when no plan is armed."""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main
from repro.check.fuzz import FuzzCase, run_case
from repro.faults.nemesis import (
    NemesisResult,
    _cell_seed,
    classes_for,
    run_cell,
    run_matrix,
)
from repro.faults.plan import LCU_ONLY_CLASSES, generate_plan

pytestmark = pytest.mark.faults


class TestCellSeeding:
    def test_cell_seed_stable_and_distinct(self):
        a = _cell_seed(0, "lcu", "A", "drop")
        assert a == _cell_seed(0, "lcu", "A", "drop")
        others = {
            _cell_seed(0, "lcu", "A", "dup"),
            _cell_seed(0, "mcs", "A", "drop"),
            _cell_seed(0, "lcu", "B", "drop"),
            _cell_seed(1, "lcu", "A", "drop"),
        }
        assert a not in others

    def test_classes_for_skips_hw_classes_on_sw_locks(self):
        assert set(LCU_ONLY_CLASSES) <= set(classes_for("lcu", None))
        assert set(LCU_ONLY_CLASSES) <= set(classes_for("lcu_fb", None))
        for cls in LCU_ONLY_CLASSES:
            assert cls not in classes_for("mcs", None)
            assert cls not in classes_for("mcs", ["drop", cls])


class TestSingleCells:
    @pytest.mark.parametrize("fault", ["drop", "evict", "preempt"])
    def test_lcu_cell_survives(self, fault):
        cell = run_cell("lcu", "A", fault, seed=0)
        assert cell.outcome in ("recovered", "degraded"), cell.detail
        assert cell.total_cs == 6 * 30, "every critical section ran"

    def test_stall_frozen_waiter_is_excused(self):
        """Regression: at seed 3 a core stall froze one waiter for
        thousands of cycles; every other thread lapped it while the
        grant timer credited only a single skip, tripping the
        bounded-overtake oracle.  Frozen waiters are now excused from
        overtake accounting instead."""
        cell = run_cell("lcu", "A", "stall", seed=3)
        assert cell.outcome == "recovered", cell.detail

    def test_sw_lock_survives_message_faults(self):
        cell = run_cell("mcs", "A", "drop", seed=0)
        assert cell.outcome == "recovered", cell.detail

    def test_cell_embeds_full_reproducer(self):
        cell = run_cell("lcu", "A", "evict", seed=0)
        # the cell's plan + case dicts are a complete reproducer: running
        # the case standalone gives the same elapsed cycle count
        case = FuzzCase.from_dict(dict(cell.case))
        outcome = run_case(case)
        assert outcome.elapsed == cell.elapsed


class TestMatrix:
    def test_small_matrix_recovers_and_replays(self):
        kwargs = dict(
            algos=("lcu", "mcs"), models=("A",),
            classes=("drop", "evict", "stall"), seed=0,
        )
        res = run_matrix(**kwargs)
        assert isinstance(res, NemesisResult)
        # mcs skips the LCU-only evict class: 3 + 2 cells
        assert len(res.cells) == 5
        assert res.ok, [c.detail for c in res.violated()]
        assert res.counts["violated"] == 0
        # bit-identical replay: same seed, same report
        again = run_matrix(**kwargs)
        assert json.dumps(res.to_dict(), sort_keys=True) == \
            json.dumps(again.to_dict(), sort_keys=True)

    def test_report_is_json_serializable(self):
        res = run_matrix(algos=("ticket",), models=("A",),
                         classes=("preempt",), seed=3)
        doc = json.loads(json.dumps(res.to_dict()))
        assert doc["ok"] is True
        assert doc["cells"][0]["fault"] == "preempt"
        assert doc["cells"][0]["plan"]["events"]


class TestZeroOverhead:
    def test_unarmed_run_is_bit_identical(self):
        """A workload without a fault plan must simulate the exact same
        cycle count as before the faults subsystem existed — arming is
        the only thing that changes behaviour."""
        base = FuzzCase(algo="lcu", model="A", seed=5, threads=4, locks=2,
                        iters=10, tiebreak_seed=9)
        a, b = run_case(base), run_case(base)
        assert a.elapsed == b.elapsed
        assert a.ok and b.ok

    def test_armed_empty_window_changes_nothing_but_completes(self):
        plan = generate_plan(seed=1, classes=["preempt"], horizon=8_000)
        case = FuzzCase(algo="lcu", model="A", seed=5, threads=4, locks=2,
                        iters=10, tiebreak_seed=9, faults=plan.to_dict())
        outcome = run_case(case)
        assert outcome.ok
        assert outcome.fault_outcomes is not None


class TestCliVerb:
    def run_cli(self, *argv):
        out = io.StringIO()
        with redirect_stdout(out):
            code = main(list(argv))
        return code, out.getvalue()

    def test_faults_verb_smoke(self, tmp_path):
        report = tmp_path / "nemesis.json"
        code, out = self.run_cli(
            "faults", "--algos", "lcu", "--models", "A",
            "--classes", "evict,preempt", "--out", str(report),
        )
        assert code == 0, out
        assert "2 cells" in out
        assert "0 violated" in out
        doc = json.loads(report.read_text())
        assert doc["ok"] is True
        assert len(doc["cells"]) == 2

    def test_faults_verb_rejects_unknown_class(self):
        code, out = self.run_cli("faults", "--classes", "gamma_ray")
        assert code == 2
        assert "unknown fault class" in out

    def test_faults_verb_workers_matches_serial(self, tmp_path):
        argv = ["faults", "--algos", "lcu", "--models", "A",
                "--classes", "crash_core,preempt"]
        serial, pooled = tmp_path / "serial.json", tmp_path / "pooled.json"
        code, _ = self.run_cli(*argv, "--out", str(serial))
        assert code == 0
        code, _ = self.run_cli(*argv, "--workers", "2",
                               "--out", str(pooled))
        assert code == 0
        assert serial.read_text() == pooled.read_text(), \
            "worker fan-out must write a byte-identical report"
