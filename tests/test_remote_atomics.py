"""Tests for remote atomics (MAOs) and the MAO lock."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.locks import get_algorithm


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestRemoteRmw:
    def test_basic_semantics(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        olds = []

        def prog(thread):
            old = yield ops.RemoteRmw(addr, lambda v: v + 7)
            olds.append(old)
            old = yield ops.RemoteRmw(addr, lambda v: v + 7)
            olds.append(old)

        os_.spawn(prog)
        os_.run_all()
        assert olds == [0, 7]
        assert m.mem.peek(addr) == 14

    def test_concurrent_remote_rmws_linearize(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        olds = []

        def prog(thread):
            for _ in range(10):
                old = yield ops.RemoteRmw(addr, lambda v: v + 1)
                olds.append(old)

        for _ in range(4):
            os_.spawn(prog)
        os_.run_all()
        assert sorted(olds) == list(range(40))
        assert m.mem.peek(addr) == 40

    def test_no_line_left_cached(self, m):
        """MAOs do not install the line in any L1."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def prog(thread):
            yield ops.RemoteRmw(addr, lambda v: v + 1)

        os_.spawn(prog)
        os_.run_all()
        for core in range(m.config.cores):
            assert not m.mem.has_line(core, addr)

    def test_invalidates_cached_copies(self, m):
        """A remote atomic must invalidate stale cached copies so later
        coherent loads see its effect."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        seen = []

        def prog(thread):
            v = yield ops.Load(addr)          # caches the line (0)
            yield ops.RemoteRmw(addr, lambda x: 42)
            v = yield ops.Load(addr)          # must re-fetch
            seen.append(v)

        os_.spawn(prog)
        os_.run_all()
        assert seen == [42]

    def test_mixed_with_coherent_rmw(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def remote(thread):
            for _ in range(10):
                yield ops.RemoteRmw(addr, lambda v: v + 1)

        def coherent(thread):
            for _ in range(10):
                yield ops.Rmw(addr, lambda v: v + 1)

        os_.spawn(remote)
        os_.spawn(coherent)
        os_.run_all()
        assert m.mem.peek(addr) == 20


class TestMaoLock:
    def test_fifo_order(self, m):
        algo = get_algorithm("mao")(m)
        os_ = OS(m)
        h = algo.make_lock()
        order = []

        def factory(i):
            def prog(thread):
                yield ops.Compute(1 + i * 200)
                yield from algo.lock(thread, h, True)
                order.append(i)
                yield ops.Compute(500)
                yield from algo.unlock(thread, h, True)
            return prog

        for i in range(4):
            os_.spawn(factory(i))
        os_.run_all(max_cycles=100_000_000)
        assert order == [0, 1, 2, 3]

    def test_uses_no_l1_for_the_lock(self, m):
        algo = get_algorithm("mao")(m)
        os_ = OS(m)
        h = algo.make_lock()

        def prog(thread):
            for _ in range(5):
                yield from algo.lock(thread, h, True)
                yield ops.Compute(20)
                yield from algo.unlock(thread, h, True)

        os_.spawn(prog)
        os_.run_all(max_cycles=100_000_000)
        for core in range(m.config.cores):
            assert not m.mem.has_line(core, h.ticket)
            assert not m.mem.has_line(core, h.serving)
