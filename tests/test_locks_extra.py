"""Behavioural tests specific to the CLH and HBO baselines."""

import pytest

from repro import Machine, OS, model_b, small_test_model
from repro.cpu import ops
from repro.locks import get_algorithm
from tests.conftest import RWTracker, cs_program


class TestClh:
    def test_fifo_order(self):
        m = Machine(small_test_model())
        algo = get_algorithm("clh")(m)
        os_ = OS(m)
        h = algo.make_lock()
        order = []

        def factory(i):
            def prog(thread):
                yield ops.Compute(1 + i * 150)
                yield from algo.lock(thread, h, True)
                order.append(i)
                yield ops.Compute(400)
                yield from algo.unlock(thread, h, True)
            return prog

        for i in range(4):
            os_.spawn(factory(i))
        os_.run_all()
        assert order == [0, 1, 2, 3]

    def test_node_recycling_many_rounds(self):
        """The CLH adopt-predecessor discipline must survive many rounds
        without corrupting the queue."""
        m = Machine(small_test_model())
        algo = get_algorithm("clh")(m)
        os_ = OS(m)
        h = algo.make_lock()
        tracker = RWTracker()
        for _ in range(4):
            os_.spawn(cs_program(algo, h, tracker, iters=25))
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert tracker.total == 100


class TestHbo:
    def test_less_cross_chip_traffic_than_tatas(self):
        """HBO's long remote backoffs must cut inter-chip message traffic
        per critical section versus TATAS under cross-chip contention
        (its NUMA-awareness; see the module docstring for why full lock
        capture does not emerge in this behavioral model)."""
        def traffic_per_cs(lock_name):
            cfg = model_b()
            m = Machine(cfg)
            algo = get_algorithm(lock_name)(m)
            os_ = OS(m)
            h = algo.make_lock()
            count = [0]

            def factory(i):
                def prog(thread):
                    while m.sim.now < 120_000:
                        yield from algo.lock(thread, h, True)
                        count[0] += 1
                        yield ops.Compute(40)
                        yield from algo.unlock(thread, h, True)
                        yield ops.Compute(10)
                return prog

            # 16 threads fill cores 0-15 = chips 0 and 1
            for i in range(16):
                os_.spawn(factory(i))
            os_.run_all(max_cycles=500_000_000)
            return m.net.inter_chip_messages / max(1, count[0])

        assert traffic_per_cs("hbo") < traffic_per_cs("tatas")

    def test_hbo_exclusion_small_model(self):
        m = Machine(small_test_model())
        algo = get_algorithm("hbo")(m)
        os_ = OS(m)
        h = algo.make_lock()
        tracker = RWTracker()
        for _ in range(5):
            os_.spawn(cs_program(algo, h, tracker, iters=12))
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert tracker.total == 60
