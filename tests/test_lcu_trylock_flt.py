"""Trylock semantics and the Free Lock Table extension."""

import pytest

from repro import Machine, OS, small_test_model
from repro.cpu import ops
from repro.lcu import api
from tests.conftest import RWTracker, drain_and_check


@pytest.fixture
def m():
    return Machine(small_test_model())


class TestTrylock:
    def test_trylock_free_lock_succeeds_fast(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        out = []

        def prog(thread):
            ok = yield from api.trylock(addr, True, retries=8)
            out.append((ok, m.sim.now))
            if ok:
                yield from api.unlock(addr, True)

        os_.spawn(prog)
        os_.run_all()
        assert out[0][0] is True
        drain_and_check(m)

    def test_trylock_read_mode(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        results = []

        def holder(thread):
            yield from api.lock(addr, False)
            yield ops.Compute(5_000)
            yield from api.unlock(addr, False)

        def trier(thread):
            yield ops.Compute(500)
            ok = yield from api.trylock(addr, False, retries=8)
            results.append(ok)
            if ok:
                yield from api.unlock(addr, False)

        os_.spawn(holder)
        os_.spawn(trier)
        os_.run_all()
        # read trylock on a read-held lock succeeds (sharing)
        assert results == [True]
        drain_and_check(m)

    def test_abandoned_trylock_entry_self_heals(self, m):
        """The queue node left by an expired trylock receives its grant
        later and passes it on via the timer, leaving no residue."""
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        failed = []

        def holder(thread):
            yield from api.lock(addr, True)
            yield ops.Compute(8_000)
            yield from api.unlock(addr, True)

        def trier(thread):
            yield ops.Compute(200)
            ok = yield from api.trylock(addr, True, retries=2)
            failed.append(ok)
            # walks away; does something else entirely
            yield ops.Compute(50)

        os_.spawn(holder)
        os_.spawn(trier)
        os_.run_all()
        assert failed == [False]
        m.drain()
        drain_and_check(m)

    def test_many_triers_one_winner_at_a_time(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()
        tracker = RWTracker()
        wins = [0]

        def trier(thread):
            for _ in range(10):
                ok = yield from api.trylock(addr, True, retries=4)
                if ok:
                    tracker.enter(True)
                    yield ops.Compute(100)
                    tracker.exit(True)
                    wins[0] += 1
                    yield from api.unlock(addr, True)
                yield ops.Compute(50)

        for _ in range(4):
            os_.spawn(trier)
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert wins[0] > 0
        m.drain()
        drain_and_check(m)


class TestFreeLockTable:
    def test_biased_reacquire_is_message_free(self):
        mm = Machine(small_test_model(flt_entries=4))
        os_ = OS(mm)
        addr = mm.alloc.alloc_line()
        msg_delta = []

        def prog(thread):
            yield from api.lock(addr, True)
            yield from api.unlock(addr, True)
            yield ops.Compute(200)
            before = mm.net.messages_sent
            for _ in range(20):
                yield from api.lock(addr, True)
                yield ops.Compute(10)
                yield from api.unlock(addr, True)
            msg_delta.append(mm.net.messages_sent - before)

        os_.spawn(prog)
        os_.run_all()
        assert msg_delta == [0]
        lcu = mm.lcus[0]
        assert lcu.stats.get("flt_hits", 0) == 20

    def test_parked_lock_recoverable_by_remote_requestor(self):
        mm = Machine(small_test_model(flt_entries=4))
        addr = mm.alloc.alloc_line()
        order = []

        def owner(thread):
            yield from api.lock(addr, True)
            order.append("owner")
            yield from api.unlock(addr, True)  # parks in FLT
            yield ops.Compute(3_000)

        def thief(thread):
            yield ops.Compute(1_000)
            yield from api.lock(addr, True)
            order.append("thief")
            yield from api.unlock(addr, True)

        os_ = OS(mm)
        os_.spawn(owner)
        os_.spawn(thief)
        os_.run_all(max_cycles=100_000_000)
        assert order == ["owner", "thief"]

    def test_flt_respects_capacity(self):
        mm = Machine(small_test_model(flt_entries=2))
        os_ = OS(mm)
        addrs = [mm.alloc.alloc_line() for _ in range(4)]

        def prog(thread):
            for a in addrs:
                yield from api.lock(a, True)
                yield from api.unlock(a, True)

        os_.spawn(prog)
        os_.run_all()
        mm.drain()
        assert len(mm.lcus[0]._flt) <= 2

    def test_flt_disabled_by_default(self, m):
        os_ = OS(m)
        addr = m.alloc.alloc_line()

        def prog(thread):
            yield from api.lock(addr, True)
            yield from api.unlock(addr, True)

        os_.spawn(prog)
        os_.run_all()
        m.drain()
        assert not m.lcus[0]._flt
        drain_and_check(m)

    def test_flt_mutual_exclusion_under_contention(self):
        """FLT parking/stealing must preserve exclusion."""
        mm = Machine(small_test_model(flt_entries=4))
        os_ = OS(mm)
        addr = mm.alloc.alloc_line()
        tracker = RWTracker()

        def prog(thread):
            for _ in range(25):
                yield from api.lock(addr, True)
                tracker.enter(True)
                yield ops.Compute(30)
                tracker.exit(True)
                yield from api.unlock(addr, True)
                yield ops.Compute(100)  # idle gaps invite parking

        for _ in range(4):
            os_.spawn(prog)
        os_.run_all(max_cycles=100_000_000)
        tracker.assert_clean()
        assert tracker.total == 100
