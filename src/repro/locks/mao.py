"""MAO lock: remote atomics at the memory controller (paper related
work: SGI Origin's MAOs [22], Cray T3E [35], AMO [42]).

Every lock operation is a fetch-and-theta executed *at the home memory
controller*: constant latency, no coherence line bouncing, zero L1
footprint — but also no local spinning (each retry is a remote round
trip, like the SSB) and no queue (no fairness, longer transfers).
Implemented as a remote ticket lock so it is fair despite being remote:
that is the T3E's actual idiom (fetch&inc ticket counters in memory).
"""

from __future__ import annotations

from typing import Generator, NamedTuple

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.base import LockAlgorithm, register


class MaoHandle(NamedTuple):
    ticket: int
    serving: int


@register
class MaoTicketLock(LockAlgorithm):
    """Remote-atomic ticket lock (MAO / T3E style)."""

    name = "mao"
    hardware = True
    local_spin = False          # polls the serving counter remotely
    fair = True                 # ticket order
    scalability = "good (no bouncing), remote polling"
    memory_overhead = "2 words (no L1 use)"
    transfer_messages = "2+ (remote poll round trips)"

    poll_backoff = 120

    def make_lock(self) -> MaoHandle:
        alloc = self.machine.alloc
        return MaoHandle(alloc.alloc_line(), alloc.alloc_line())

    def lock(self, thread: SimThread, handle: MaoHandle, write: bool) -> Generator:
        ticket = yield ops.RemoteRmw(handle.ticket, lambda v: v + 1)
        self.notify("enqueued", thread, handle, write)
        attempt = 0
        while True:
            serving = yield ops.RemoteRmw(handle.serving, lambda v: v)
            if serving == ticket:
                return
            attempt += 1
            # back off proportionally to the queue ahead of us
            gap = max(1, ticket - serving)
            yield ops.Compute(
                self.poll_backoff * min(gap, 8) + (attempt % 5) * 17
            )

    def unlock(self, thread: SimThread, handle: MaoHandle, write: bool) -> Generator:
        yield ops.RemoteRmw(handle.serving, lambda v: v + 1)
