"""Time-published MCS lock (He, Scherer & Scott, HPC'05 — paper [15]).

The software answer to the queue-lock preemption anomaly, cited directly
by the paper: waiters *publish timestamps* while spinning, and a releaser
skips any waiter whose timestamp has gone stale (presumed preempted)
instead of handing it the lock.  A skipped waiter notices on reschedule
and re-enqueues with a fresh node.

This is the head-to-head software competitor of the LCU's grant timer in
the Figure 10 oversubscription experiment: it bounds the anomaly (a
handoff can stall at most one staleness threshold) at the cost of
periodic timestamp stores while waiting and slower handoffs (polling
instead of invalidation-triggered wake-up).

Simplifications vs the published algorithm (noted in DESIGN.md): skipped
nodes are abandoned rather than recycled through the time-based reuse
pool — safe because a node's state word is written exactly once by
exactly one releaser — and waiters poll at a fixed publish period.
"""

from __future__ import annotations

from typing import Dict, Generator, NamedTuple, Tuple

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import compare_and_swap, swap
from repro.locks.base import LockAlgorithm, register

_WAITING = 1
_GRANTED = 0
_SKIPPED = 2


class TpHandle(NamedTuple):
    tail: int


class _Node(NamedTuple):
    base: int

    @property
    def next(self) -> int:
        return self.base

    @property
    def state(self) -> int:
        return self.base + 8

    @property
    def time(self) -> int:
        return self.base + 16


@register
class TpMcsLock(LockAlgorithm):
    """Time-published MCS queue lock (preemption-adaptive)."""

    name = "tpmcs"
    local_spin = True            # publishes, but on its own line
    fair = True                  # FIFO among live waiters
    queue_eviction_detection = True
    scalability = "very good"
    memory_overhead = "O(n) nodes (+abandoned on skip)"
    transfer_messages = "2-4 (poll + timestamp checks)"

    publish_period = 1_500       # cycles between timestamp stores
    stale_threshold = 5_000      # staleness that marks a waiter preempted

    def __init__(self, machine) -> None:
        super().__init__(machine)
        # the node each (lock, tid) will use for its *next* acquisition
        self._my_node: Dict[Tuple[int, int], _Node] = {}

    def make_lock(self) -> TpHandle:
        return TpHandle(self.machine.alloc.alloc_line())

    def _fresh_node(self, handle: TpHandle, tid: int) -> _Node:
        node = _Node(self.machine.alloc.alloc_line())
        self._my_node[(handle.tail, tid)] = node
        return node

    def _node(self, handle: TpHandle, tid: int) -> _Node:
        node = self._my_node.get((handle.tail, tid))
        if node is None:
            node = self._fresh_node(handle, tid)
        return node

    # ------------------------------------------------------------------ #

    def lock(self, thread: SimThread, handle: TpHandle, write: bool) -> Generator:
        sim = self.machine.sim
        while True:
            node = self._node(handle, thread.tid)
            yield ops.Store(node.next, 0)
            yield ops.Store(node.state, _WAITING)
            yield ops.Store(node.time, sim.now)
            pred = yield swap(handle.tail, node.base)
            self.notify("enqueued", thread, handle, write)
            if pred == 0:
                return
            yield ops.Store(_Node(pred).next, node.base)
            while True:
                v = yield ops.Load(node.state)
                if v == _GRANTED:
                    return
                if v == _SKIPPED:
                    # presumed-preempted and passed over: abandon this
                    # node and start again with a fresh one
                    self._fresh_node(handle, thread.tid)
                    break
                yield ops.Store(node.time, sim.now)   # publish liveness
                # responsive wait: a grant's invalidation wakes us at
                # once; the timeout only paces the next publish
                yield ops.WaitLine(node.state, v,
                                   timeout=self.publish_period)

    def unlock(self, thread: SimThread, handle: TpHandle, write: bool) -> Generator:
        sim = self.machine.sim
        cur = self._node(handle, thread.tid)
        while True:
            nxt = yield ops.Load(cur.next)
            if nxt == 0:
                old = yield compare_and_swap(handle.tail, cur.base, 0)
                if old == cur.base:
                    return        # queue empty
                while True:       # a successor is linking itself in
                    nxt = yield ops.Load(cur.next)
                    if nxt != 0:
                        break
                    yield ops.WaitLine(cur.next, 0)
            node = _Node(nxt)
            t = yield ops.Load(node.time)
            if sim.now - t <= self.stale_threshold:
                yield ops.Store(node.state, _GRANTED)
                return
            # stale: secure the onward link (or empty the queue), then
            # mark the victim skipped and keep walking
            nn = yield ops.Load(node.next)
            if nn == 0:
                old = yield compare_and_swap(handle.tail, node.base, 0)
                if old == node.base:
                    yield ops.Store(node.state, _SKIPPED)
                    return        # queue empty after the skipped victim
                while True:
                    nn = yield ops.Load(node.next)
                    if nn != 0:
                        break
                    yield ops.WaitLine(node.next, 0)
            yield ops.Store(node.state, _SKIPPED)
            cur = node
