"""Common interface and metadata for lock algorithms.

Every lock implementation — software baselines, the LCU, the SSB — is a
:class:`LockAlgorithm`.  The microbenchmark / STM / application harnesses
are written against this interface, so every figure can be regenerated
with any lock by name.

``lock``/``unlock``/``trylock`` are *generator functions* composed into
thread programs with ``yield from``; they yield :mod:`repro.cpu.ops`
records.  ``make_lock`` allocates whatever simulated memory the algorithm
needs and returns an opaque handle.

Metadata fields mirror the columns of the paper's Figure 1 comparison
table so the table can be generated from the code itself.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Type

from repro.cpu.machine import Machine
from repro.cpu.os_sched import SimThread


class LockAlgorithm:
    """Base class: one instance is bound to one machine.

    Besides the raw ``lock``/``unlock``/``trylock`` generator operations,
    the base class provides *observed* wrappers (:meth:`acquire`,
    :meth:`release`, :meth:`try_acquire`) that report every request,
    grant and release to registered observers — the hook the conformance
    subsystem (:mod:`repro.check`) attaches its invariant monitor and
    reference oracle to.  Workloads that want their lock operations
    checked compose the wrappers instead of the raw operations; the raw
    operations stay observer-free and cost nothing extra.
    """

    # -- Figure 1 metadata (overridden per algorithm) -------------------- #
    name: str = "abstract"
    local_spin = False
    rw_support = False
    trylock_support = False
    fair = False
    queue_eviction_detection = False
    scalability = "-"           # "poor" / "good" / "very good"
    memory_overhead = "-"       # per-lock cost
    transfer_messages = "-"     # typical lock-transfer message count
    requires_l1_changes = False
    hardware = False

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        # callbacks ``fn(event, thread, handle, write)`` where event is
        # one of "request", "acquire", "release", "abandon", or the
        # optional "enqueued" fired by queue locks when the thread has
        # joined the wait queue (observers must ignore unknown events)
        self.observers: List[Any] = []

    # -- identity ---------------------------------------------------------- #

    def lock_id(self, handle: Any) -> Any:
        """Stable identifier for the lock behind ``handle`` — the key the
        profiler correlates thread-level observer events with hardware
        probe events on.  For hardware locks the handle *is* the lock
        address; software handles expose their primary word."""
        if isinstance(handle, int):
            return handle
        addr = getattr(handle, "addr", None)
        if isinstance(addr, int):
            return addr
        if isinstance(handle, tuple) and handle and isinstance(handle[0], int):
            return handle[0]        # NamedTuple handles: first word
        return id(handle)

    # -- observation ------------------------------------------------------- #

    def add_observer(self, fn) -> None:
        """Register ``fn(event, thread, handle, write)`` to see every
        lock-operation lifecycle event issued through the observed
        wrappers below."""
        self.observers.append(fn)

    def remove_observer(self, fn) -> bool:
        """Deregister an observer; returns whether it was registered."""
        try:
            self.observers.remove(fn)
        except ValueError:
            return False
        return True

    def notify(self, event: str, thread: SimThread, handle: Any,
               write: bool) -> None:
        for fn in self.observers:
            fn(event, thread, handle, write)

    # -- observed wrappers (generator functions) --------------------------- #

    def acquire(self, thread: SimThread, handle: Any, write: bool) -> Generator:
        """Blocking acquire that reports "request" before blocking and
        "acquire" once the lock is held."""
        self.notify("request", thread, handle, write)
        yield from self.lock(thread, handle, write)
        self.notify("acquire", thread, handle, write)

    def release(self, thread: SimThread, handle: Any, write: bool) -> Generator:
        """Release that reports "release" as the critical section ends."""
        self.notify("release", thread, handle, write)
        yield from self.unlock(thread, handle, write)

    def try_acquire(
        self, thread: SimThread, handle: Any, write: bool, retries: int = 16
    ) -> Generator:
        """Bounded acquire reporting "request" then "acquire" on success
        or "abandon" on failure; returns True/False like ``trylock``."""
        self.notify("request", thread, handle, write)
        ok = yield from self.trylock(thread, handle, write, retries)
        self.notify("acquire" if ok else "abandon", thread, handle, write)
        return ok

    # -- lifecycle -------------------------------------------------------- #

    def make_lock(self) -> Any:
        """Allocate and initialise one lock; returns an opaque handle."""
        raise NotImplementedError

    def on_crash(self, thread: SimThread) -> None:
        """Crash-stop notification (fault injection): ``thread`` died.
        Algorithms with host-side bookkeeping keyed by tid, or shared
        words a dead thread would leave permanently skewed, override
        this to perform the cleanup a robust-futex-style OS would do on
        the thread's behalf.  Default: nothing to clean."""

    # -- operations (generator functions) --------------------------------- #

    def lock(self, thread: SimThread, handle: Any, write: bool) -> Generator:
        """Blocking acquire."""
        raise NotImplementedError

    def unlock(self, thread: SimThread, handle: Any, write: bool) -> Generator:
        """Release."""
        raise NotImplementedError

    def trylock(
        self, thread: SimThread, handle: Any, write: bool, retries: int = 16
    ) -> Generator:
        """Bounded acquire; the generator's return value is True/False.
        Default: not supported."""
        raise NotImplementedError(f"{self.name} has no trylock")

    # -- table generation -------------------------------------------------- #

    @classmethod
    def figure1_row(cls) -> List[str]:
        yn = lambda b: "yes" if b else "no"  # noqa: E731
        return [
            cls.name,
            "HW" if cls.hardware else "SW",
            yn(cls.local_spin),
            yn(cls.rw_support),
            yn(cls.trylock_support),
            yn(cls.fair),
            yn(cls.queue_eviction_detection),
            cls.scalability,
            cls.memory_overhead,
            cls.transfer_messages,
            yn(cls.requires_l1_changes),
        ]


_REGISTRY: Dict[str, Type[LockAlgorithm]] = {}


def register(cls: Type[LockAlgorithm]) -> Type[LockAlgorithm]:
    """Class decorator adding the algorithm to the by-name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def get_algorithm(name: str) -> Type[LockAlgorithm]:
    """Look up a lock algorithm class by its ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown lock algorithm {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_algorithms() -> Dict[str, Type[LockAlgorithm]]:
    return dict(_REGISTRY)
