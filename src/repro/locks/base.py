"""Common interface and metadata for lock algorithms.

Every lock implementation — software baselines, the LCU, the SSB — is a
:class:`LockAlgorithm`.  The microbenchmark / STM / application harnesses
are written against this interface, so every figure can be regenerated
with any lock by name.

``lock``/``unlock``/``trylock`` are *generator functions* composed into
thread programs with ``yield from``; they yield :mod:`repro.cpu.ops`
records.  ``make_lock`` allocates whatever simulated memory the algorithm
needs and returns an opaque handle.

Metadata fields mirror the columns of the paper's Figure 1 comparison
table so the table can be generated from the code itself.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Type

from repro.cpu.machine import Machine
from repro.cpu.os_sched import SimThread


class LockAlgorithm:
    """Base class: one instance is bound to one machine."""

    # -- Figure 1 metadata (overridden per algorithm) -------------------- #
    name: str = "abstract"
    local_spin = False
    rw_support = False
    trylock_support = False
    fair = False
    queue_eviction_detection = False
    scalability = "-"           # "poor" / "good" / "very good"
    memory_overhead = "-"       # per-lock cost
    transfer_messages = "-"     # typical lock-transfer message count
    requires_l1_changes = False
    hardware = False

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    # -- lifecycle -------------------------------------------------------- #

    def make_lock(self) -> Any:
        """Allocate and initialise one lock; returns an opaque handle."""
        raise NotImplementedError

    # -- operations (generator functions) --------------------------------- #

    def lock(self, thread: SimThread, handle: Any, write: bool) -> Generator:
        """Blocking acquire."""
        raise NotImplementedError

    def unlock(self, thread: SimThread, handle: Any, write: bool) -> Generator:
        """Release."""
        raise NotImplementedError

    def trylock(
        self, thread: SimThread, handle: Any, write: bool, retries: int = 16
    ) -> Generator:
        """Bounded acquire; the generator's return value is True/False.
        Default: not supported."""
        raise NotImplementedError(f"{self.name} has no trylock")

    # -- table generation -------------------------------------------------- #

    @classmethod
    def figure1_row(cls) -> List[str]:
        yn = lambda b: "yes" if b else "no"  # noqa: E731
        return [
            cls.name,
            "HW" if cls.hardware else "SW",
            yn(cls.local_spin),
            yn(cls.rw_support),
            yn(cls.trylock_support),
            yn(cls.fair),
            yn(cls.queue_eviction_detection),
            cls.scalability,
            cls.memory_overhead,
            cls.transfer_messages,
            yn(cls.requires_l1_changes),
        ]


_REGISTRY: Dict[str, Type[LockAlgorithm]] = {}


def register(cls: Type[LockAlgorithm]) -> Type[LockAlgorithm]:
    """Class decorator adding the algorithm to the by-name registry."""
    _REGISTRY[cls.name] = cls
    return cls


def get_algorithm(name: str) -> Type[LockAlgorithm]:
    """Look up a lock algorithm class by its ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown lock algorithm {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_algorithms() -> Dict[str, Type[LockAlgorithm]]:
    return dict(_REGISTRY)
