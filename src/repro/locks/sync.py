"""Higher-level synchronization built on the lock interface.

A locking substrate is usually consumed through richer primitives; these
are provided for downstream users and exercised by the test suite:

* :class:`Barrier` — sense-reversing spin barrier (works with the
  coherence substrate directly; no lock needed).
* :class:`CondVar` — Mesa-style condition variable usable with *any*
  registered lock algorithm: ``wait`` atomically releases the lock and
  sleeps on a futex sequence word, re-acquiring on wake-up.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.cpu import ops
from repro.cpu.machine import Machine
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import fetch_add
from repro.locks.base import LockAlgorithm


class Barrier:
    """Sense-reversing spin barrier for a fixed number of parties."""

    def __init__(self, machine: Machine, parties: int) -> None:
        if parties <= 0:
            raise ValueError("parties must be positive")
        self.machine = machine
        self.parties = parties
        self._count = machine.alloc.alloc_line()
        self._sense = machine.alloc.alloc_line()

    def wait(self, thread: SimThread) -> Generator:
        """Block until all parties have arrived.  Returns the generation
        index (the sense value after release)."""
        sense = yield ops.Load(self._sense)
        arrived = yield fetch_add(self._count, 1)
        if arrived == self.parties - 1:
            # last arrival: reset and release everyone
            yield ops.Store(self._count, 0)
            yield ops.Store(self._sense, sense + 1)
            return sense + 1
        while True:
            s = yield ops.Load(self._sense)
            if s != sense:
                return s
            yield ops.WaitLine(self._sense, s)


class CondVar:
    """Mesa-style condition variable over any lock algorithm.

    The waiter must hold ``handle`` (in write mode) when calling
    :meth:`wait`; on return it holds the lock again and should re-check
    its predicate (spurious wake-ups are possible, as with Posix)."""

    def __init__(self, machine: Machine, algo: LockAlgorithm) -> None:
        self.machine = machine
        self.algo = algo
        self._seq = machine.alloc.alloc_line()

    def wait(self, thread: SimThread, handle: Any) -> Generator:
        """Atomically release ``handle``, sleep until a notify, then
        re-acquire ``handle``."""
        seq = yield ops.Load(self._seq)
        yield from self.algo.unlock(thread, handle, True)
        yield ops.FutexWait(self._seq, seq)
        yield from self.algo.lock(thread, handle, True)

    def notify(self, count: int = 1) -> Generator:
        """Wake up to ``count`` waiters (caller should hold the lock)."""
        seq = yield ops.Load(self._seq)
        yield ops.Store(self._seq, seq + 1)
        yield ops.FutexWake(self._seq, count)

    def notify_all(self) -> Generator:
        yield from self.notify(count=1 << 30)
