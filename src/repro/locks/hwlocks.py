"""Hardware lock units exposed through the common LockAlgorithm interface.

``LcuRwLock`` is the paper's proposal (delegating to :mod:`repro.lcu.api`);
``SsbLock`` is the Synchronization State Buffer baseline, whose waiters
retry *remotely* with a bounded backoff — the traffic pattern behind the
Model B collapse in Figure 9b.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.lcu import api as lcu_api
from repro.locks.base import LockAlgorithm, register


@register
class LcuRwLock(LockAlgorithm):
    """The Lock Control Unit reader-writer lock (the paper's proposal)."""

    name = "lcu"
    hardware = True
    local_spin = True
    rw_support = True
    trylock_support = True
    fair = True
    queue_eviction_detection = True    # grant timer skips absent threads
    scalability = "very good"
    memory_overhead = "LCU/LRT entries (no memory)"
    transfer_messages = "1 (direct LCU-to-LCU)"

    def make_lock(self) -> int:
        # Any memory word can be locked; no initialisation needed.
        return self.machine.alloc.alloc_line()

    def lock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        # open-coded lcu_api.lock so the first *unsuccessful* acq — the
        # moment the request is enqueued in LCU/LRT hardware — can fire
        # the "enqueued" observer event (an immediate grant never waits)
        first = True
        while True:
            ok = yield ops.LcuAcq(handle, write, False)
            if ok:
                return
            if first:
                first = False
                self.notify("enqueued", thread, handle, write)
            yield ops.LcuWait(handle, timeout=lcu_api._SPIN_RECHECK)

    def trylock(
        self, thread: SimThread, handle: int, write: bool, retries: int = 16
    ) -> Generator:
        result = yield from lcu_api.trylock(handle, write, retries)
        return result

    def unlock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        yield from lcu_api.unlock(handle, write)


@register
class SsbLock(LockAlgorithm):
    """Synchronization State Buffer lock (remote, unfair, retry-based)."""

    name = "ssb"
    hardware = True
    local_spin = False           # retries are remote round trips
    rw_support = True
    trylock_support = True
    fair = False                 # reader preference starves writers
    scalability = "good on-chip, poor across chips"
    memory_overhead = "SSB entries (no memory)"
    transfer_messages = "2 (remote retry round trip)"

    retry_backoff = 80

    def make_lock(self) -> int:
        return self.machine.alloc.alloc_line()

    def lock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        attempt = 0
        while True:
            ok = yield ops.SsbAcq(handle, write)
            if ok:
                return
            if attempt == 0:
                # first remote denial: the thread joined the retry set
                # (the SSB has no queue — this *is* its wait state)
                self.notify("enqueued", thread, handle, write)
            attempt += 1
            # deterministic jitter decorrelates the retry storm a little
            yield ops.Compute(self.retry_backoff + (attempt % 7) * 20)

    def trylock(
        self, thread: SimThread, handle: int, write: bool, retries: int = 16
    ) -> Generator:
        for attempt in range(retries):
            ok = yield ops.SsbAcq(handle, write)
            if ok:
                return True
            yield ops.Compute(self.retry_backoff + (attempt % 7) * 20)
        return False

    def unlock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        yield ops.SsbRel(handle, write)
