"""SNZI-based reader-writer lock (Lev, Luchangco & Olszewski, SPAA'09 —
paper reference [24]).

A **S**calable **N**on-**Z**ero **I**ndicator is a tree of counters:
readers arrive at a leaf chosen by their core and climb toward the root
only when their node's count rises from zero, so under heavy read arrival
most traffic stays on per-chip leaves instead of one shared counter —
the problem it was designed to fix in MRSW-style locks.  The paper's
Figure 1 notes the cost: more memory accesses per operation and a large
memory footprint, which is exactly how it behaves here.

The write path uses a single writer gate: a writer sets the gate (which
stalls new reader arrivals), waits for the root indicator to drop to
zero, and enters.  Writer-vs-writer ordering uses a ticket pair on the
gate line's neighbours.  Readers that arrive while the gate is up spin
until it clears — writer preference, so writers do not starve behind
arrival storms (readers can, briefly; the gate is held only while a
writer is inside).

Tree shape: one leaf per chip, a single root (two levels — enough to
decongest the per-arrival traffic for the machine sizes modelled here).
"""

from __future__ import annotations

from typing import Generator, NamedTuple

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import compare_and_swap, fetch_add
from repro.locks.base import LockAlgorithm, register


class SnziHandle(NamedTuple):
    root: int             # root surplus count
    leaves: tuple         # per-chip leaf counts
    gate: int             # writer gate (0 = open)
    w_ticket: int         # writer ticket dispenser
    w_serving: int        # writer now-serving


@register
class SnziRwLock(LockAlgorithm):
    """SNZI-tree reader-writer lock: scalable readers, gated writers."""

    name = "snzi"
    local_spin = True
    rw_support = True
    fair = False               # writer preference at the gate
    scalability = "very good for readers"
    memory_overhead = "O(chips) tree + gate (large)"
    transfer_messages = "3-6 (tree climb/descend)"

    def make_lock(self) -> SnziHandle:
        alloc = self.machine.alloc
        leaves = tuple(
            alloc.alloc_line() for _ in range(self.machine.config.chips)
        )
        return SnziHandle(
            root=alloc.alloc_line(),
            leaves=leaves,
            gate=alloc.alloc_line(),
            w_ticket=alloc.alloc_line(),
            w_serving=alloc.alloc_line(),
        )

    # ------------------------------------------------------------------ #
    # reader arrival / departure (the SNZI protocol, simplified to the
    # two-level tree: climb to the root only on leaf 0 -> 1)

    def _leaf(self, thread: SimThread, handle: SnziHandle) -> int:
        assert thread.core is not None
        return handle.leaves[self.machine.config.chip_of_core(thread.core)]

    # Transitional leaf marker: while a reader is publishing/withdrawing
    # the root surplus for its leaf, others must not treat the leaf count
    # as settled (SNZI's intermediate-state rule — without it a second
    # reader could finish arriving while the first one's root increment
    # is still in flight, letting a writer read root == 0 and enter).
    _TRANSIT = 1 << 30

    def _reader_arrive(self, thread: SimThread, handle: SnziHandle) -> Generator:
        leaf = self._leaf(thread, handle)
        while True:
            v = yield ops.Load(leaf)
            if v == self._TRANSIT:
                yield ops.WaitLine(leaf, v)
                continue
            if v == 0:
                old = yield compare_and_swap(leaf, 0, self._TRANSIT)
                if old != 0:
                    continue
                yield fetch_add(handle.root, 1)
                yield ops.Store(leaf, 1)
                return
            old = yield compare_and_swap(leaf, v, v + 1)
            if old == v:
                return

    def _reader_depart(self, thread: SimThread, handle: SnziHandle) -> Generator:
        leaf = self._leaf(thread, handle)
        while True:
            v = yield ops.Load(leaf)
            if v == self._TRANSIT:
                yield ops.WaitLine(leaf, v)
                continue
            if v == 1:
                old = yield compare_and_swap(leaf, 1, self._TRANSIT)
                if old != 1:
                    continue
                yield fetch_add(handle.root, -1)
                yield ops.Store(leaf, 0)
                return
            old = yield compare_and_swap(leaf, v, v - 1)
            if old == v:
                return

    # ------------------------------------------------------------------ #

    def lock(self, thread: SimThread, handle: SnziHandle, write: bool) -> Generator:
        if write:
            ticket = yield fetch_add(handle.w_ticket, 1)
            self.notify("enqueued", thread, handle, write)
            while True:
                serving = yield ops.Load(handle.w_serving)
                if serving == ticket:
                    break
                yield ops.WaitLine(handle.w_serving, serving)
            yield ops.Store(handle.gate, 1)   # stall new readers
            while True:
                n = yield ops.Load(handle.root)
                if n == 0:
                    return
                yield ops.WaitLine(handle.root, n)
        else:
            gated = False
            while True:
                # wait for the gate, then arrive; re-check the gate to
                # close the arrive-vs-gate race (depart and retry if a
                # writer slipped in between)
                while True:
                    g = yield ops.Load(handle.gate)
                    if g == 0:
                        break
                    if not gated:
                        # a writer holds the gate: the reader is queued
                        gated = True
                        self.notify("enqueued", thread, handle, write)
                    yield ops.WaitLine(handle.gate, g)
                yield from self._reader_arrive(thread, handle)
                g = yield ops.Load(handle.gate)
                if g == 0:
                    return
                yield from self._reader_depart(thread, handle)

    def unlock(self, thread: SimThread, handle: SnziHandle, write: bool) -> Generator:
        if write:
            yield ops.Store(handle.gate, 0)
            serving = yield ops.Load(handle.w_serving)
            yield ops.Store(handle.w_serving, serving + 1)
        else:
            yield from self._reader_depart(thread, handle)
