"""Ticket lock: fair single-line lock (FIFO without a queue structure).

Not part of the paper's measured set, but a useful extra baseline: it is
fair like MCS yet all waiters spin on one location, so every release
invalidates every waiter — the intermediate point between TAS and MCS.
"""

from __future__ import annotations

from typing import Generator, NamedTuple

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import fetch_add
from repro.locks.base import LockAlgorithm, register


class TicketHandle(NamedTuple):
    next_ticket: int
    now_serving: int


@register
class TicketLock(LockAlgorithm):
    """Ticket lock: fair, single-line, all waiters share one location."""

    name = "ticket"
    local_spin = False          # all waiters share the now_serving line
    fair = True
    scalability = "poor"
    memory_overhead = "2 words"
    transfer_messages = "O(n) invalidations per release"

    def make_lock(self) -> TicketHandle:
        alloc = self.machine.alloc
        return TicketHandle(alloc.alloc_line(), alloc.alloc_line())

    def lock(self, thread: SimThread, handle: TicketHandle, write: bool) -> Generator:
        ticket = yield fetch_add(handle.next_ticket, 1)
        self.notify("enqueued", thread, handle, write)
        while True:
            serving = yield ops.Load(handle.now_serving)
            if serving == ticket:
                return
            yield ops.WaitLine(handle.now_serving, serving)

    def unlock(self, thread: SimThread, handle: TicketHandle, write: bool) -> Generator:
        serving = yield ops.Load(handle.now_serving)
        yield ops.Store(handle.now_serving, serving + 1)
