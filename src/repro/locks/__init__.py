"""Lock algorithms: software baselines + hardware units, one interface.

Importing this package populates the registry used by
:func:`repro.locks.get_algorithm`, so harness code can select any lock by
its short name: ``tas``, ``tatas``, ``ticket``, ``mcs``, ``mrsw``,
``pthread``, ``lcu``, ``ssb``.
"""

from repro.locks.base import LockAlgorithm, all_algorithms, get_algorithm
from repro.locks.clh import ClhLock
from repro.locks.fallback import LcuFallbackLock
from repro.locks.hbo import HboLock
from repro.locks.hwlocks import LcuRwLock, SsbLock
from repro.locks.mao import MaoTicketLock
from repro.locks.mcs import McsLock
from repro.locks.mrsw import MrswLock
from repro.locks.pthread import PthreadMutex
from repro.locks.snzi import SnziRwLock
from repro.locks.sync import Barrier, CondVar
from repro.locks.tas import TasLock, TatasLock
from repro.locks.ticket import TicketLock
from repro.locks.tpmcs import TpMcsLock

__all__ = [
    "LockAlgorithm", "all_algorithms", "get_algorithm",
    "TasLock", "TatasLock", "TicketLock", "McsLock", "MrswLock",
    "PthreadMutex", "LcuRwLock", "LcuFallbackLock", "SsbLock", "ClhLock",
    "HboLock",
    "SnziRwLock", "MaoTicketLock", "TpMcsLock", "Barrier", "CondVar",
]
