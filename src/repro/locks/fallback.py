"""LCU lock with graceful degradation to a software fallback.

``lcu_fb`` is the production-shaped deployment story for the paper's
hardware lock: the fast path is the ordinary LCU reader-writer queue,
but when LCU entry slots are persistently unobtainable (entry-table
exhaustion, fault-injected capacity pressure — see :mod:`repro.faults`)
the lock *degrades* to a software path that needs no LCU state at all,
in the spirit of BRAVO's revocable fast path (Dice & Kogan, ATC'19),
with the roles reversed: here the hardware queue is the fast path and
the software lock is the refuge.

Cross-path exclusion uses two shared words:

* ``mode``  — 0: hardware path allowed; 1: degraded (sticky).
* ``count`` — number of threads currently holding via the hardware path.

A hardware acquirer takes the LCU lock, *announces* itself
(``count += 1``), then re-checks ``mode``: if degradation happened in
between, it backs out (undo the announce, release the LCU lock) and
takes the software path.  A degrader sets ``mode = 1``, acquires an
inner ticket mutex, then spins until ``count == 0``.  Thread ops are
fully serialized (each completes before the next issues), so the
announce-then-check / set-then-drain pair cannot both see the old
world: either the hardware thread observes ``mode == 1`` and backs out,
or its announce is visible to the degrader's drain loop.

The degraded path is a plain ticket mutex — no read sharing, unfair
relative to the hardware queue's FIFO order.  That is the point: it is
a *degraded* mode that stays correct and live when the fast path's
resources are gone, and it is sticky per lock (real revocation logic is
out of scope — BRAVO re-enables heuristically; we keep the conservative
half).
"""

from __future__ import annotations

from typing import Dict, Generator, NamedTuple, Set, Tuple

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.lcu import api as lcu_api
from repro.locks.atomic import fetch_add, swap
from repro.locks.base import LockAlgorithm, register

#: consecutive entry-allocation failures before a thread degrades the lock
DEGRADE_THRESHOLD = 3
#: local-spin recheck period (mirrors lcu_api's lost-wakeup guard)
_SPIN_RECHECK = 5_000


class FallbackHandle(NamedTuple):
    addr: int           # the LCU-locked word (hardware fast path)
    mode: int           # 0 = hardware allowed, 1 = degraded (sticky)
    count: int          # live hardware-path holders
    ticket_next: int    # degraded path: ticket dispenser
    ticket_owner: int   # degraded path: now-serving


@register
class LcuFallbackLock(LockAlgorithm):
    """LCU fast path with a software fallback for slot exhaustion."""

    name = "lcu_fb"
    hardware = True
    local_spin = True
    rw_support = True
    trylock_support = False
    fair = False               # degraded path breaks the hw queue's FIFO
    queue_eviction_detection = True
    scalability = "very good (until degraded)"
    memory_overhead = "4 words + LCU/LRT entries"
    transfer_messages = "1 (hw) / coherence (degraded)"

    def __init__(self, machine) -> None:
        super().__init__(machine)
        # (lock addr, tid) -> "hw" | "sw": which path the current hold
        # came through, so release undoes the right one
        self._path: Dict[Tuple[int, int], str] = {}
        self.degraded: Set[int] = set()
        # crash-cleanup bookkeeping (see on_crash): which (addr, tid)
        # pairs currently have a +1 announced on the count word, which
        # tids are inside the software path (ticket drawn, not yet
        # released — a crash there is unrecoverable and the injector's
        # victim gate refuses it), and addr -> handle so cleanup can
        # reach the shared words
        self._announced: Set[Tuple[int, int]] = set()
        self._sw_active: Set[int] = set()
        self._handles: Dict[int, FallbackHandle] = {}
        self.stats: Dict[str, int] = {
            "hw_acquires": 0, "sw_acquires": 0, "degrades": 0,
            "backouts": 0,
        }

    def make_lock(self) -> FallbackHandle:
        alloc = self.machine.alloc
        handle = FallbackHandle(
            addr=alloc.alloc_line(),
            mode=alloc.alloc_line(),
            count=alloc.alloc_line(),
            ticket_next=alloc.alloc_line(),
            ticket_owner=alloc.alloc_line(),
        )
        self._handles[handle.addr] = handle
        return handle

    def on_crash(self, thread: SimThread) -> None:
        """A crashed thread's LCU-side hold is released by the machine's
        purge, but its ``count`` announce is a software word nothing
        else retracts — a later degrader would drain against it forever.
        Undo it on the dead thread's behalf (the robust-futex cleanup
        the surviving OS performs).  Software-path holds are *not*
        recoverable (a dead ticket holder wedges the chain); the victim
        gate refuses such crashes, and a forced one (sabotage) is
        exactly what the liveness oracle exists to catch."""
        tid = thread.tid
        self._sw_active.discard(tid)
        for addr, tid_ in [k for k in self._announced if k[1] == tid]:
            self._announced.discard((addr, tid_))
            mem = self.machine.mem
            count = self._handles[addr].count
            mem.poke(count, mem.peek(count) - 1)
        for key in [k for k in self._path if k[1] == tid]:
            del self._path[key]

    # ------------------------------------------------------------------ #

    def lock(
        self, thread: SimThread, handle: FallbackHandle, write: bool
    ) -> Generator:
        alloc_fails = 0
        enqueued = False

        def note_enqueued():
            nonlocal enqueued
            if not enqueued:
                enqueued = True
                self.notify("enqueued", thread, handle, write)

        while True:
            mode = yield ops.Load(handle.mode)
            if mode:
                note_enqueued()   # joining the software ticket queue
                yield from self._lock_sw(thread, handle)
                return
            ok = yield ops.LcuAcq(handle.addr, write)
            if ok:
                # Announce, then re-check: a degrader serialized between
                # our mode load and here must see us (or we see it).
                yield fetch_add(handle.count, 1)
                self._announced.add((handle.addr, thread.tid))
                mode = yield ops.Load(handle.mode)
                if mode:
                    self.stats["backouts"] += 1
                    yield fetch_add(handle.count, -1)
                    self._announced.discard((handle.addr, thread.tid))
                    yield from lcu_api.unlock(handle.addr, write)
                    note_enqueued()   # backed out into the sw queue
                    yield from self._lock_sw(thread, handle)
                    return
                self._path[(handle.addr, thread.tid)] = "hw"
                self.stats["hw_acquires"] += 1
                return
            core = thread.core
            if (
                core is not None
                and self.machine.lcus[core].entry(thread.tid, handle.addr)
                is None
            ):
                # acq failed *and* left no entry behind: the LCU could
                # not allocate a slot.  Persistent exhaustion degrades.
                alloc_fails += 1
                if alloc_fails >= DEGRADE_THRESHOLD:
                    yield swap(handle.mode, 1)
                    self.stats["degrades"] += 1
                    self.degraded.add(handle.addr)
                    note_enqueued()
                    yield from self._lock_sw(thread, handle)
                    return
            else:
                alloc_fails = 0
            note_enqueued()   # queued in the LCU (or spinning on a slot)
            yield ops.LcuWait(handle.addr, timeout=_SPIN_RECHECK)

    def _lock_sw(
        self, thread: SimThread, handle: FallbackHandle
    ) -> Generator:
        """Degraded path: inner ticket mutex, then drain hw holders."""
        self._sw_active.add(thread.tid)
        ticket = yield fetch_add(handle.ticket_next, 1)
        while True:
            owner = yield ops.Load(handle.ticket_owner)
            if owner == ticket:
                break
            yield ops.WaitLine(
                handle.ticket_owner, owner, timeout=_SPIN_RECHECK
            )
        while True:
            holders = yield ops.Load(handle.count)
            if holders == 0:
                break
            yield ops.WaitLine(handle.count, holders, timeout=_SPIN_RECHECK)
        self._path[(handle.addr, thread.tid)] = "sw"
        self.stats["sw_acquires"] += 1

    def unlock(
        self, thread: SimThread, handle: FallbackHandle, write: bool
    ) -> Generator:
        path = self._path.pop((handle.addr, thread.tid), "hw")
        if path == "hw":
            # Retract the announce before returning the LCU lock, so a
            # draining degrader sees count reach zero promptly.
            yield fetch_add(handle.count, -1)
            self._announced.discard((handle.addr, thread.tid))
            yield from lcu_api.unlock(handle.addr, write)
        else:
            yield fetch_add(handle.ticket_owner, 1)
            self._sw_active.discard(thread.tid)
