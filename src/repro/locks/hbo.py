"""Hierarchical backoff lock (Radovic & Hagersten, HPCA'03 — paper [29]).

A TATAS-style lock whose backoff depends on *where* the current holder
sits: a contender on the holder's own chip retries quickly, a remote
contender backs off much longer and defers after wake-ups.  On real NUMA
hardware this captures the lock within a chip (requestors near the
holder win the coherence race); this behavioral model has no
requestor-to-holder proximity in its miss timing, so the capture effect
does not fully emerge — what does emerge, and what the tests pin, is
HBO's *traffic* property: remote contenders inject far fewer
cross-chip messages than a plain TATAS under the same contention.

The lock word stores ``chip_id + 1`` of the holder (0 = free).
"""

from __future__ import annotations

from typing import Generator

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.base import LockAlgorithm, register


@register
class HboLock(LockAlgorithm):
    """Hierarchical backoff lock: NUMA-aware TATAS (unfair by design)."""

    name = "hbo"
    local_spin = True
    trylock_support = True
    fair = False            # deliberately biased toward the holder's chip
    scalability = "good on NUMA (unfair)"
    memory_overhead = "1 word"
    transfer_messages = "O(n) on release (biased)"

    local_backoff = 40
    remote_backoff = 600

    def make_lock(self) -> int:
        return self.machine.alloc.alloc_line()

    # Deference window: after seeing the lock free, a contender that is
    # NOT on the last holder's chip waits this long before attempting the
    # swap, giving the holder's chip-mates first shot — the mechanism
    # that keeps the lock migrating within a chip.
    remote_deference = 120

    @staticmethod
    def _jitter(thread: SimThread, base: int) -> int:
        # Deterministic but *time-varying* spread (per-thread LCG):
        # constant backoffs phase-lock pairs of contenders into ping-pong
        # patterns in a deterministic simulator; real hardware decorrelates
        # through timing noise, modelled here by the advancing sequence.
        state = thread.stats.get("hbo_lcg", thread.tid * 7919 + 1)
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        thread.stats["hbo_lcg"] = state
        return base + state % (base + 1)

    def lock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        cfg = self.machine.config
        last_holder_chip = None   # refreshed from every observed value
        contended = False
        while True:
            assert thread.core is not None
            my_chip = cfg.chip_of_core(thread.core)
            v = yield ops.Load(handle)
            if v != 0:
                if not contended:
                    # observed a holder: joined the contention set
                    contended = True
                    self.notify("enqueued", thread, handle, write)
                last_holder_chip = v - 1
                yield ops.WaitLine(handle, v)
                if last_holder_chip != my_chip:
                    # the holder was remote: sit out the first part of the
                    # post-release race so its chip-mates (who rejoin
                    # immediately) capture the lock
                    yield ops.Compute(
                        self._jitter(thread, self.remote_deference)
                    )
                continue
            old = yield ops.Rmw(
                handle, lambda cur, t=my_chip + 1: cur if cur else t
            )
            if old == 0:
                return
            if not contended:
                contended = True
                self.notify("enqueued", thread, handle, write)
            last_holder_chip = old - 1

            yield ops.Compute(
                self._jitter(
                    thread,
                    self.local_backoff
                    if last_holder_chip == my_chip
                    else self.remote_backoff,
                )
            )

    def trylock(
        self, thread: SimThread, handle: int, write: bool, retries: int = 16
    ) -> Generator:
        cfg = self.machine.config
        for _ in range(retries):
            assert thread.core is not None
            my_tag = cfg.chip_of_core(thread.core) + 1
            old = yield ops.Rmw(
                handle, lambda v, t=my_tag: v if v else t
            )
            if old == 0:
                return True
            yield ops.Compute(self.local_backoff)
        return False

    def unlock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        yield ops.Store(handle, 0)
