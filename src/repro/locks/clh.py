"""CLH queue lock (Craig; Landin & Hagersten).

Like MCS, waiters spin locally — but on their *predecessor's* node
rather than their own, which makes the enqueue path one swap with no
follow-up store.  Included as an extra software baseline: its transfer
behaviour is MCS-like (the LCU's direct-grant advantage applies to both),
and it shares MCS's preemption anomaly.

Node reuse follows the classic CLH discipline: after releasing, a thread
adopts its predecessor's node for the next round.
"""

from __future__ import annotations

from typing import Dict, Generator, NamedTuple, Tuple

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import swap
from repro.locks.base import LockAlgorithm, register


class ClhHandle(NamedTuple):
    tail: int          # queue-tail word; holds the current tail node addr


@register
class ClhLock(LockAlgorithm):
    """CLH queue lock: FIFO, spins on the predecessor's node."""

    name = "clh"
    local_spin = True
    fair = True
    scalability = "very good"
    memory_overhead = "O(n) queue nodes"
    transfer_messages = "2 (inval + refetch)"

    def __init__(self, machine) -> None:
        super().__init__(machine)
        # (lock, tid) -> address of the node this thread will use next
        self._my_node: Dict[Tuple[int, int], int] = {}

    def make_lock(self) -> ClhHandle:
        alloc = self.machine.alloc
        # a pre-released dummy node seeds the queue
        dummy = alloc.alloc_line()
        self.machine.mem.poke(dummy, 0)       # 0 = released
        tail = alloc.alloc_line()
        self.machine.mem.poke(tail, dummy)
        return ClhHandle(tail)

    def _node_for(self, handle: ClhHandle, tid: int) -> int:
        key = (handle.tail, tid)
        node = self._my_node.get(key)
        if node is None:
            node = self.machine.alloc.alloc_line()
            self._my_node[key] = node
        return node

    def lock(self, thread: SimThread, handle: ClhHandle, write: bool) -> Generator:
        node = self._node_for(handle, thread.tid)
        yield ops.Store(node, 1)               # locked
        pred = yield swap(handle.tail, node)
        self.notify("enqueued", thread, handle, write)
        # remember the predecessor node: we adopt it after release
        thread.stats[("clh_pred", handle.tail)] = pred
        while True:
            v = yield ops.Load(pred)
            if v == 0:
                return
            yield ops.WaitLine(pred, v)

    def unlock(self, thread: SimThread, handle: ClhHandle, write: bool) -> Generator:
        node = self._my_node[(handle.tail, thread.tid)]
        yield ops.Store(node, 0)               # release: successor sees it
        # adopt the predecessor's (now unobserved) node for reuse
        pred = thread.stats.pop(("clh_pred", handle.tail))
        self._my_node[(handle.tail, thread.tid)] = pred
