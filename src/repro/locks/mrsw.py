"""MRSW: fair queue-based reader-writer lock with a shared reader counter.

Models the Mellor-Crummey & Scott reader-writer queue lock family the
paper benchmarks as "MRSW": requestors (readers and writers) join one MCS
queue; a run of consecutive readers executes concurrently, counted by a
single ``reader_count`` word; a writer at the queue head spins until the
counter drains.

The shared counter is the point: every reader atomically increments it on
entry and decrements it on exit, so the counter's cache line is a
coherence hotspot that *worsens* as the reader proportion grows — the
paper's Figure 10 shows MRSW's time per operation rising with reader
share while the LCU's falls.  (We fold MCS-RW's class/state CAS pair into
a per-node ``cls`` word plus the queue discipline below; the simplification
keeps message patterns — queue handoff + counter traffic — identical.
Noted in DESIGN.md.)
"""

from __future__ import annotations

from typing import Dict, Generator, NamedTuple, Tuple

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import compare_and_swap, fetch_add, swap
from repro.locks.base import LockAlgorithm, register
from repro.locks.mcs import _Node

_CLS_READER = 1
_CLS_WRITER = 2


class MrswHandle(NamedTuple):
    tail: int            # queue tail word
    reader_count: int    # the hotspot counter (its own line)


@register
class MrswLock(LockAlgorithm):
    """Fair queue-based reader-writer lock with a shared reader counter."""

    name = "mrsw"
    local_spin = True
    rw_support = True
    fair = True
    scalability = "good (reader-counter hotspot)"
    memory_overhead = "O(n) queue nodes + counter"
    transfer_messages = "2-4 (+counter bouncing)"

    def __init__(self, machine) -> None:
        super().__init__(machine)
        self._nodes: Dict[Tuple[int, int], _Node] = {}

    def make_lock(self) -> MrswHandle:
        alloc = self.machine.alloc
        return MrswHandle(alloc.alloc_line(), alloc.alloc_line())

    def _node(self, handle: MrswHandle, tid: int) -> _Node:
        key = (handle.tail, tid)
        node = self._nodes.get(key)
        if node is None:
            node = _Node(self.machine.alloc.alloc_line())
            self._nodes[key] = node
        return node

    # ------------------------------------------------------------------ #
    # queue plumbing shared by both modes

    def _enqueue(
        self, node: _Node, handle: MrswHandle, cls: int, thread=None
    ) -> Generator:
        yield ops.Store(node.next, 0)
        yield ops.Store(node.locked, 1)
        yield ops.Store(node.cls, cls)
        pred = yield swap(handle.tail, node.base)
        if thread is not None:
            self.notify("enqueued", thread, handle, cls == _CLS_WRITER)
        if pred == 0:
            yield ops.Store(node.locked, 0)
            return
        yield ops.Store(_Node(pred).next, node.base)
        while True:
            v = yield ops.Load(node.locked)
            if v == 0:
                return
            yield ops.WaitLine(node.locked, v)

    def _pass_head(self, node: _Node, handle: MrswHandle) -> Generator:
        """Hand queue-head status to the successor (writing its flag)."""
        nxt = yield ops.Load(node.next)
        if nxt == 0:
            old = yield compare_and_swap(handle.tail, node.base, 0)
            if old == node.base:
                return
            while True:
                nxt = yield ops.Load(node.next)
                if nxt != 0:
                    break
                yield ops.WaitLine(node.next, 0)
        yield ops.Store(_Node(nxt).locked, 0)

    # ------------------------------------------------------------------ #

    def lock(self, thread: SimThread, handle: MrswHandle, write: bool) -> Generator:
        node = self._node(handle, thread.tid)
        cls = _CLS_WRITER if write else _CLS_READER
        yield from self._enqueue(node, handle, cls, thread)
        if write:
            # Head of queue: wait for active readers to drain, then hold
            # the head until write_unlock.
            while True:
                rc = yield ops.Load(handle.reader_count)
                if rc == 0:
                    return
                yield ops.WaitLine(handle.reader_count, rc)
        else:
            # Become an active reader, then immediately pass the head on
            # so consecutive readers overlap (a following writer blocks on
            # the counter, not the queue position).
            yield fetch_add(handle.reader_count, 1)
            yield from self._pass_head(node, handle)

    def unlock(self, thread: SimThread, handle: MrswHandle, write: bool) -> Generator:
        node = self._node(handle, thread.tid)
        if write:
            yield from self._pass_head(node, handle)
        else:
            yield fetch_add(handle.reader_count, -1)
