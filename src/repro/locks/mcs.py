"""MCS queue lock (Mellor-Crummey & Scott, 1991) — mutual exclusion.

Each waiter spins on a private queue node, so waiting generates no
traffic; the transfer costs one remote store (invalidate the successor's
node) plus the successor's re-read — the two network crossings the LCU's
direct grant collapses into one (paper Figure 10's ~2x gap).

Queue nodes live in simulated memory, one cache line each, reused per
(lock, thread) pair.  The queue is FIFO, hence fair — and hence exposed
to the preemption anomaly when threads outnumber cores: a preempted
waiter still receives the lock and sits on it until rescheduled.
"""

from __future__ import annotations

from typing import Dict, Generator, NamedTuple, Tuple

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import compare_and_swap, swap
from repro.locks.base import LockAlgorithm, register


class McsHandle(NamedTuple):
    tail: int          # address of the queue-tail word (0 = empty)


class _Node(NamedTuple):
    base: int

    @property
    def next(self) -> int:
        return self.base

    @property
    def locked(self) -> int:
        return self.base + 8

    @property
    def cls(self) -> int:      # used by the reader-writer variant
        return self.base + 16


@register
class McsLock(LockAlgorithm):
    """MCS queue lock: FIFO, local spinning on private nodes."""

    name = "mcs"
    local_spin = True
    fair = True
    scalability = "very good"
    memory_overhead = "O(n) queue nodes"
    transfer_messages = "2 (inval + refetch)"

    def __init__(self, machine) -> None:
        super().__init__(machine)
        self._nodes: Dict[Tuple[int, int], _Node] = {}

    def make_lock(self) -> McsHandle:
        return McsHandle(self.machine.alloc.alloc_line())

    def _node(self, handle: McsHandle, tid: int) -> _Node:
        key = (handle.tail, tid)
        node = self._nodes.get(key)
        if node is None:
            node = _Node(self.machine.alloc.alloc_line())
            self._nodes[key] = node
        return node

    # ------------------------------------------------------------------ #

    def lock(self, thread: SimThread, handle: McsHandle, write: bool) -> Generator:
        node = self._node(handle, thread.tid)
        yield ops.Store(node.next, 0)
        yield ops.Store(node.locked, 1)
        pred = yield swap(handle.tail, node.base)
        self.notify("enqueued", thread, handle, write)
        if pred == 0:
            return
        yield ops.Store(_Node(pred).next, node.base)
        while True:
            v = yield ops.Load(node.locked)
            if v == 0:
                return
            yield ops.WaitLine(node.locked, v)

    def unlock(self, thread: SimThread, handle: McsHandle, write: bool) -> Generator:
        node = self._node(handle, thread.tid)
        nxt = yield ops.Load(node.next)
        if nxt == 0:
            old = yield compare_and_swap(handle.tail, node.base, 0)
            if old == node.base:
                return
            # a successor is linking itself in: wait for the pointer
            while True:
                nxt = yield ops.Load(node.next)
                if nxt != 0:
                    break
                yield ops.WaitLine(node.next, 0)
        yield ops.Store(_Node(nxt).locked, 0)
