"""Single-line spinlocks: TAS and TATAS (with exponential backoff).

These are the paper's "basic single-cache-line locks": every TAS attempt
is an atomic RMW, so the lock line ping-pongs between contenders and the
home directory queues up — the contention collapse visible in Figure 10's
Model A curves.  TATAS spins on a locally cached copy between attempts,
which removes the traffic while the lock is held but still storms on
every release.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import test_and_set
from repro.locks.base import LockAlgorithm, register


@register
class TasLock(LockAlgorithm):
    """test-and-set spinlock (mutual exclusion only)."""

    name = "tas"
    local_spin = False
    trylock_support = True
    scalability = "poor"
    memory_overhead = "1 word"
    transfer_messages = "O(n) (line bouncing)"

    def make_lock(self) -> int:
        return self.machine.alloc.alloc_line()

    def lock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        contended = False
        while True:
            old = yield test_and_set(handle)
            if old == 0:
                return
            if not contended:
                # first failed attempt: the thread joined the (implicit)
                # contention set — the spin-lock analogue of a queue join
                contended = True
                self.notify("enqueued", thread, handle, write)
            yield ops.Compute(8)  # pipeline gap between attempts

    def trylock(
        self, thread: SimThread, handle: int, write: bool, retries: int = 16
    ) -> Generator:
        for _ in range(retries):
            old = yield test_and_set(handle)
            if old == 0:
                return True
            yield ops.Compute(8)
        return False

    def unlock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        yield ops.Store(handle, 0)


@register
class TatasLock(LockAlgorithm):
    """test-and-test-and-set with bounded exponential backoff."""

    name = "tatas"
    local_spin = True           # between attempts, on the cached copy
    trylock_support = True
    scalability = "poor"
    memory_overhead = "1 word"
    transfer_messages = "O(n) on release"

    max_backoff = 1024

    def make_lock(self) -> int:
        return self.machine.alloc.alloc_line()

    def lock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        backoff = 16
        contended = False
        while True:
            old = yield test_and_set(handle)
            if old == 0:
                return
            if not contended:
                contended = True
                self.notify("enqueued", thread, handle, write)
            backoff = min(backoff * 2, self.max_backoff)
            yield ops.Compute(backoff)
            # spin on the cached copy until it looks free
            while True:
                v = yield ops.Load(handle)
                if v == 0:
                    break
                yield ops.WaitLine(handle, v)

    def trylock(
        self, thread: SimThread, handle: int, write: bool, retries: int = 16
    ) -> Generator:
        for _ in range(retries):
            v = yield ops.Load(handle)
            if v == 0:
                old = yield test_and_set(handle)
                if old == 0:
                    return True
            yield ops.Compute(16)
        return False

    def unlock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        yield ops.Store(handle, 0)
