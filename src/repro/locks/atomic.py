"""Atomic-operation helpers built on the coherence substrate's RMW op.

Every helper returns an :class:`~repro.cpu.ops.Rmw` record to be yielded
from a thread program.  The RMW applies its function at the access's
serialization point and resumes the program with the *old* value, which
is exactly the semantics of the hardware primitives being modelled:

* ``test_and_set``: old == 0 means the TAS succeeded;
* ``compare_and_swap``: old == expected means the CAS succeeded;
* ``swap`` / ``fetch_add`` as usual.
"""

from __future__ import annotations

from repro.cpu.ops import Rmw


def test_and_set(addr: int) -> Rmw:
    return Rmw(addr, lambda _v: 1)


def swap(addr: int, new: int) -> Rmw:
    return Rmw(addr, lambda _v: new)


def compare_and_swap(addr: int, expected: int, new: int) -> Rmw:
    return Rmw(addr, lambda v: new if v == expected else v)


def fetch_add(addr: int, delta: int) -> Rmw:
    return Rmw(addr, lambda v: v + delta)
