"""Posix-mutex model: brief adaptive spin, then futex sleep.

Models the Solaris/Linux mutex used as the software baseline of the
paper's Figure 13 application runs: under low contention it behaves like
a cached TATAS (the "implicit biasing" that lets Radiosity beat hardware
locks — a thread re-acquiring its own hot mutex hits in its L1); under
contention waiters block in the kernel and are woken on release.

Lock word values: 0 free, 1 locked, 2 locked-with-waiters.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu import ops
from repro.cpu.os_sched import SimThread
from repro.locks.atomic import compare_and_swap
from repro.locks.base import LockAlgorithm, register

_SPIN_ATTEMPTS = 3
_FUTEX_SYSCALL_COST = 120   # cycles of kernel entry/exit


@register
class PthreadMutex(LockAlgorithm):
    """Posix mutex model: brief adaptive spin, then futex sleep."""

    name = "pthread"
    local_spin = True
    trylock_support = True
    queue_eviction_detection = True   # sleepers do not hold cores
    scalability = "good (blocking)"
    memory_overhead = "1 word + kernel queue"
    transfer_messages = "2 + syscall on contention"

    def make_lock(self) -> int:
        return self.machine.alloc.alloc_line()

    def lock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        for _ in range(_SPIN_ATTEMPTS):
            old = yield compare_and_swap(handle, 0, 1)
            if old == 0:
                return
            yield ops.Compute(32)
        # adaptive spin exhausted: entering the futex slow path is the
        # mutex's queue join (the kernel wait queue)
        self.notify("enqueued", thread, handle, write)
        while True:
            # Slow path: always mark contended, even when acquiring — a
            # thread woken from the futex cannot know whether other
            # sleepers remain, so the value must stay 2 until an unlock
            # observes it and wakes the next sleeper (the glibc pattern).
            old = yield ops.Rmw(handle, lambda _v: 2)
            if old == 0:
                return
            yield ops.Compute(_FUTEX_SYSCALL_COST)
            yield ops.FutexWait(handle, 2)

    def trylock(
        self, thread: SimThread, handle: int, write: bool, retries: int = 16
    ) -> Generator:
        for _ in range(retries):
            old = yield compare_and_swap(handle, 0, 1)
            if old == 0:
                return True
            yield ops.Compute(32)
        return False

    def unlock(self, thread: SimThread, handle: int, write: bool) -> Generator:
        old = yield ops.Rmw(handle, lambda _v: 0)
        if old == 2:
            yield ops.Compute(_FUTEX_SYSCALL_COST)
            yield ops.FutexWake(handle, 1)
