"""One driver per figure of the paper's evaluation (Section IV).

Each ``figureN`` function runs the experiment at a configurable scale and
returns a :class:`FigureResult` — the raw series plus a rendered text
table shaped like the paper's plot (x-axis rows, one column per system).
The benchmark suite calls these with scaled-down defaults; the
``examples/reproduce_paper.py`` script runs them at closer-to-paper
scale.  EXPERIMENTS.md records the expected shapes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.apps.base import run_app
from repro.harness.microbench import run_microbench
from repro.harness.reporting import (
    geomean,
    render_chart,
    render_series,
    render_table,
)
from repro.harness.stm_bench import run_stm_bench
from repro.params import MachineConfig, model_a, model_b


@dataclasses.dataclass
class FigureResult:
    figure: str
    xs: List
    series: Dict[str, List[float]]   # system name -> values at xs
    text: str
    checks: Dict[str, bool] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover
        return self.text


def _model(name: str, **overrides) -> MachineConfig:
    return model_a(**overrides) if name == "A" else model_b(**overrides)


def _trace_once(tracer):
    """Hand the tracer (or profiler) to the first run of a sweep only:
    one coherent Perfetto timeline beats dozens of overlaid ones.
    Returns a callable yielding the wrapped object once, then ``None``."""
    state = {"used": False}

    def take():
        if tracer is None or state["used"]:
            return None
        state["used"] = True
        return tracer

    return take


# --------------------------------------------------------------------- #
# Figure 9: CS time, LCU vs SSB, both models, varying write ratio

def figure9(
    model: str = "A",
    thread_counts: Sequence[int] = (4, 8, 16, 32),
    write_ratios: Sequence[int] = (100, 75, 50, 25),
    locks: Sequence[str] = ("lcu", "ssb"),
    iters_per_thread: int = 150,
    seed: int = 1,
    registry=None,
    tracer=None,
    sample_interval: int = 0,
    profiler=None,
    fairness=None,
) -> FigureResult:
    """CS execution time including lock transfer, LCU vs SSB (Fig 9)."""
    series: Dict[str, List[float]] = {}
    hub_util: Dict[str, float] = {}
    take_tracer = _trace_once(tracer)
    take_profiler = _trace_once(profiler)
    take_fairness = _trace_once(fairness)
    for lock in locks:
        for w in write_ratios:
            key = f"{lock}-{w}%w"
            vals = []
            for t in thread_counts:
                r = run_microbench(
                    _model(model), lock, t, w,
                    iters_per_thread=iters_per_thread, seed=seed,
                    registry=registry, tracer=take_tracer(),
                    sample_interval=sample_interval,
                    profiler=take_profiler(),
                    fairness=take_fairness(),
                )
                vals.append(r.cycles_per_cs)
                hub_util[key] = r.hub_utilisation
            series[key] = vals
    text = render_series(
        "threads", list(thread_counts), series,
        title=f"Figure 9{'a' if model == 'A' else 'b'}: "
              f"cycles/CS, model {model} (LCU vs SSB)",
    )
    text += "\n\n" + render_chart("threads", list(thread_counts), series)
    checks = {}
    if "lcu-100%w" in series and "ssb-100%w" in series:
        checks["lcu_beats_ssb_mutex"] = all(
            l < s for l, s in zip(series["lcu-100%w"], series["ssb-100%w"])
        )
    return FigureResult(f"fig9{model.lower()}", list(thread_counts),
                        series, text, checks)


# --------------------------------------------------------------------- #
# Figure 10: CS time, LCU vs software locks (incl. oversubscription)

def figure10(
    model: str = "A",
    thread_counts: Sequence[int] = (4, 8, 16, 32, 48),
    write_ratios: Sequence[int] = (100, 75),
    locks: Sequence[str] = ("lcu", "mcs", "mrsw", "tas", "tatas"),
    iters_per_thread: int = 120,
    quantum: int = 50_000,
    seed: int = 1,
    registry=None,
    tracer=None,
    sample_interval: int = 0,
    profiler=None,
    fairness=None,
) -> FigureResult:
    """CS execution time, LCU vs software locks (Fig 10).  Thread counts
    above 32 oversubscribe the cores and expose the queue-lock
    preemption anomaly."""
    cfg_base = _model(model)
    series: Dict[str, List[float]] = {}
    take_tracer = _trace_once(tracer)
    take_profiler = _trace_once(profiler)
    take_fairness = _trace_once(fairness)
    for lock in locks:
        ratios = write_ratios if lock in ("lcu", "mrsw", "ssb") else (100,)
        for w in ratios:
            key = f"{lock}-{w}%w"
            vals: List[float] = []
            for t in thread_counts:
                if t > cfg_base.cores and lock in ("tas", "tatas"):
                    # Oversubscribed single-line spinlocks burn unbounded
                    # remote-spin time against preemption stalls; the
                    # >cores anomaly under study is the queue-lock one.
                    vals.append(float("nan"))
                    continue
                cfg = _model(model, timeslice=quantum)
                r = run_microbench(
                    cfg, lock, t, w,
                    iters_per_thread=iters_per_thread, seed=seed,
                    registry=registry, tracer=take_tracer(),
                    sample_interval=sample_interval,
                    profiler=take_profiler(),
                    fairness=take_fairness(),
                )
                vals.append(r.cycles_per_cs)
            series[key] = vals
    text = render_series(
        "threads", list(thread_counts), series,
        title=f"Figure 10{'a' if model == 'A' else 'b'}: "
              f"cycles/CS, model {model} (LCU vs SW locks)",
    )
    text += "\n\n" + render_chart("threads", list(thread_counts), series)
    checks = {}
    if "lcu-100%w" in series and "mcs-100%w" in series:
        within = [t <= cfg_base.cores for t in thread_counts]
        checks["lcu_2x_over_mcs"] = all(
            m >= 1.6 * l
            for l, m, ok in zip(
                series["lcu-100%w"], series["mcs-100%w"], within
            )
            if ok
        )
    if "mrsw-75%w" in series and "lcu-75%w" in series:
        checks["mrsw_reader_counter_hurts"] = (
            series["mrsw-75%w"][-1] > series["lcu-75%w"][-1]
        )
    return FigureResult(f"fig10{model.lower()}", list(thread_counts),
                        series, text, checks)


# --------------------------------------------------------------------- #
# Figure 11: STM scalability + txn dissection (RB-tree, 75% read-only)

def figure11(
    model: str = "A",
    thread_counts: Sequence[int] = (1, 2, 4, 8, 16),
    variants: Sequence[str] = ("sw-only", "lcu", "fraser", "ssb"),
    initial_size: int = 256,
    txns_per_thread: int = 40,
    seed: int = 1,
    registry=None,
    tracer=None,
    sample_interval: int = 0,
) -> FigureResult:
    """Transaction execution time and app/commit dissection for the
    RB-tree benchmark, 2^8 nodes, 75% read-only (Fig 11)."""
    series: Dict[str, List[float]] = {}
    dissect: Dict[str, List[str]] = {}
    take_tracer = _trace_once(tracer)
    for v in variants:
        vals, parts = [], []
        for t in thread_counts:
            r = run_stm_bench(
                _model(model), v, "rb", threads=t,
                initial_size=initial_size,
                txns_per_thread=txns_per_thread, seed=seed,
                registry=registry, tracer=take_tracer(),
                sample_interval=sample_interval,
            )
            vals.append(r.txn_cycles)
            parts.append(f"{r.app_cycles:.0f}+{r.commit_cycles:.0f}")
        series[v] = vals
        dissect[v] = parts
    rows = [["threads"] + [f"{v} (app+commit)" for v in variants]]
    for i, t in enumerate(thread_counts):
        rows.append(
            [t] + [f"{series[v][i]:.0f} ({dissect[v][i]})" for v in variants]
        )
    text = render_table(
        rows,
        title=f"Figure 11{'a' if model == 'A' else 'b'}: RB-tree txn "
              f"cycles (dissection), model {model}",
    )
    checks = {
        # sw-only degrades with threads; the LCU stays much flatter
        "sw_only_degrades": series["sw-only"][-1] > 1.5 * series["sw-only"][0],
        "lcu_beats_sw_only": series["lcu"][-1] < series["sw-only"][-1],
    }
    return FigureResult(f"fig11{model.lower()}", list(thread_counts),
                        series, text, checks)


# --------------------------------------------------------------------- #
# Figure 12: txn time at 16 threads, larger structures

def figure12(
    model: str = "A",
    threads: int = 16,
    variants: Sequence[str] = ("sw-only", "lcu", "fraser", "ssb"),
    sizes: Optional[Dict[str, int]] = None,
    txns_per_thread: int = 30,
    seed: int = 1,
    registry=None,
    tracer=None,
    sample_interval: int = 0,
) -> FigureResult:
    """Transaction execution time for RB-tree / skip list / hash table at
    16 threads, 75% read-only (Fig 12).  Paper sizes are 2^15 (rb/skip)
    and 2^19 (hash); defaults are scaled down (see EXPERIMENTS.md)."""
    sizes = sizes or {"rb": 2_048, "skip": 2_048, "hash": 8_192}
    structures = list(sizes)
    series: Dict[str, List[float]] = {v: [] for v in variants}
    take_tracer = _trace_once(tracer)
    for structure in structures:
        for v in variants:
            r = run_stm_bench(
                _model(model), v, structure, threads=threads,
                initial_size=sizes[structure],
                txns_per_thread=txns_per_thread, seed=seed,
                registry=registry, tracer=take_tracer(),
                sample_interval=sample_interval,
            )
            series[v].append(r.txn_cycles)
    text = render_series(
        "structure", structures, series,
        title=f"Figure 12{'a' if model == 'A' else 'b'}: txn cycles, "
              f"{threads} threads, 75% read-only, model {model}",
    )
    text += "\n\n" + render_chart("structure", structures, series)
    speedups = [
        sw / l for sw, l in zip(series["sw-only"], series["lcu"])
    ]
    checks = {
        "lcu_speedup_everywhere": all(s > 1.2 for s in speedups),
    }
    return FigureResult(f"fig12{model.lower()}", structures, series,
                        text, checks)


# --------------------------------------------------------------------- #
# Figure 13: application execution time

def figure13(
    locks: Sequence[str] = ("pthread", "lcu", "ssb"),
    seeds: Sequence[int] = (1, 2, 3),
    flt_entries: int = 0,
    registry=None,
    tracer=None,
    sample_interval: int = 0,
) -> FigureResult:
    """Application execution time, model A: Fluidanimate (32 threads),
    Cholesky (16), Radiosity (16) — pthread vs LCU vs SSB (Fig 13)."""
    apps = [("fluidanimate", 32), ("cholesky", 16), ("radiosity", 16)]
    series: Dict[str, List[float]] = {l: [] for l in locks}
    cis: Dict[str, List[float]] = {l: [] for l in locks}
    take_tracer = _trace_once(tracer)
    for app, threads in apps:
        for lock in locks:
            cfg = model_a(flt_entries=flt_entries)
            r = run_app(cfg, app, lock, threads=threads, seeds=list(seeds),
                        registry=registry, tracer=take_tracer(),
                        sample_interval=sample_interval)
            series[lock].append(r.elapsed_mean)
            cis[lock].append(r.elapsed_ci95)
    rows = [["app"] + [f"{l} (±95%)" for l in locks]]
    for i, (app, _t) in enumerate(apps):
        rows.append(
            [app]
            + [f"{series[l][i]:.0f} (±{cis[l][i]:.0f})" for l in locks]
        )
    gmeans = {
        l: geomean(
            series["pthread"][i] / series[l][i] for i in range(len(apps))
        )
        for l in locks
    }
    rows.append(["geomean speedup vs pthread"]
                + [f"{gmeans[l]:.3f}" for l in locks])
    text = render_table(rows, title="Figure 13: application execution time "
                                    "(model A)")
    checks = {
        "lcu_wins_fluidanimate": series["lcu"][0] < series["pthread"][0],
        "cholesky_within_noise": abs(
            series["lcu"][1] - series["pthread"][1]
        ) < 3 * max(cis["lcu"][1] + cis["pthread"][1], 1.0),
        "radiosity_sw_wins": series["lcu"][2] > series["pthread"][2],
    }
    return FigureResult("fig13", [a for a, _ in apps], series, text, checks)
