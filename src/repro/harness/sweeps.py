"""Sensitivity sweeps and crossover analysis.

The paper's figures sample fixed points; these helpers map out *where*
one locking design overtakes another as a workload parameter moves —
e.g. the critical-section length below which hardware queueing matters,
or the contention level where TATAS collapses.  Used by the ablation
benches and available from the CLI for exploration.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.harness.microbench import run_microbench
from repro.params import MachineConfig


@dataclasses.dataclass
class SweepResult:
    parameter: str
    values: List
    series: Dict[str, List[float]]    # lock -> cycles/CS at each value

    def ratio(self, a: str, b: str) -> List[float]:
        """Per-point ratio series[a] / series[b]."""
        return [
            x / y for x, y in zip(self.series[a], self.series[b])
        ]

    def crossover(self, a: str, b: str) -> Optional[int]:
        """Index of the first sweep point where ``a`` stops beating ``b``
        (ratio crosses 1.0), or None if it never does."""
        for i, r in enumerate(self.ratio(a, b)):
            if r >= 1.0:
                return i
        return None


def sweep_parameter(
    config_factory: Callable[[], MachineConfig],
    parameter: str,
    values: Sequence,
    locks: Sequence[str],
    threads: int = 16,
    write_pct: int = 100,
    iters_per_thread: int = 60,
    **fixed,
) -> SweepResult:
    """Sweep one ``run_microbench`` keyword over ``values`` for each lock.

    ``parameter`` is any keyword of
    :func:`repro.harness.microbench.run_microbench` (e.g. ``cs_cycles``,
    ``think_cycles``) or the special value ``"threads"``.
    """
    series: Dict[str, List[float]] = {}
    for lock in locks:
        vals: List[float] = []
        for v in values:
            kwargs = dict(
                threads=threads, write_pct=write_pct,
                iters_per_thread=iters_per_thread, **fixed,
            )
            if parameter == "threads":
                kwargs["threads"] = v
            else:
                kwargs[parameter] = v
            r = run_microbench(config_factory(), lock, **kwargs)
            vals.append(r.cycles_per_cs)
        series[lock] = vals
    return SweepResult(parameter, list(values), series)


def cs_length_sweep(
    config_factory, locks=("lcu", "mcs"), values=(10, 100, 1_000, 10_000),
    **kw,
) -> SweepResult:
    """How long must the critical section get before lock choice stops
    mattering?  (The paper's phase argument: transfer + release overhead
    amortizes as load/compute grows.)"""
    return sweep_parameter(config_factory, "cs_cycles", values, locks, **kw)


def contention_sweep(
    config_factory, locks=("lcu", "tatas"), values=(2, 4, 8, 16, 32), **kw,
) -> SweepResult:
    """Thread-count sweep: where does a single-line lock collapse?"""
    return sweep_parameter(config_factory, "threads", values, locks, **kw)
