"""Experiment drivers regenerating every table and figure of the paper."""

from repro.harness.figures import (
    FigureResult,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
)
from repro.harness.microbench import MicrobenchResult, run_microbench
from repro.harness.stm_bench import StmBenchResult, run_stm_bench
from repro.harness.tables import figure1_table, figure8_table

__all__ = [
    "FigureResult", "figure9", "figure10", "figure11", "figure12",
    "figure13", "MicrobenchResult", "run_microbench", "StmBenchResult",
    "run_stm_bench", "figure1_table", "figure8_table",
]
