"""Multiprocess sweep runner: shard (cell, seed) microbench runs across
cores, merge the results into one deterministic RunReport.

Nemesis and check matrices are embarrassingly parallel — every
(lock, model, threads, seed) shard is an independent simulation — but
until now the harness ran them serially on one core.  ``repro sweep``
fans the shards out over a ``multiprocessing`` pool and folds the
per-shard telemetry back together through the exact-state merge path
(:meth:`repro.obs.registry.MetricsRegistry.merge_state`, built on
:meth:`repro.sim.stats.Histogram.merge` /
:meth:`repro.sim.stats.Accumulator.merge`).

Determinism contract (pinned by ``tests/test_determinism.py``): the
merged RunReport is **byte-identical** whether the shards ran serially
in-process, or across any number of worker processes.  Three rules make
that hold:

* every shard is fully self-contained (fresh ``Machine``, fresh
  ``MetricsRegistry``, seed passed explicitly) and returns plain data;
* shard payloads are merged in *spec order*, never completion order
  (``Pool.map`` preserves input order; the serial path iterates the
  same list);
* the artifact carries nothing volatile — no wall-clock timestamps, no
  worker count, no host identifiers.  Worker count changes wall time,
  never bytes.

Workers use the ``spawn`` start method so child processes import a
clean interpreter (fork would duplicate the parent's loaded simulator
state and is unavailable on some platforms anyway).
"""

from __future__ import annotations

import dataclasses
import functools
import multiprocessing
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.harness.bench import BenchCellSpec, _config
from repro.harness.microbench import run_microbench
from repro.obs.registry import MetricsRegistry
from repro.obs.report import build_run_report

#: the CI smoke matrix: two cells, one seed — small enough to finish in
#: seconds, large enough to exercise the shard/merge path end to end.
SMOKE_CELLS = (("lcu", "A", 4), ("mcs", "B", 4))


def sweep_shards(
    specs: Iterable[BenchCellSpec], seeds: Iterable[int]
) -> List[Tuple[BenchCellSpec, int]]:
    """The shard list: every spec × every seed, in deterministic order
    (specs outer, seeds inner).  This order is the merge order."""
    seeds = list(seeds)
    return [(spec, seed) for spec in specs for seed in seeds]


def _run_shard(shard: Tuple[BenchCellSpec, int],
               fairness: bool = False) -> Dict[str, Any]:
    """Run one (cell, seed) shard in full isolation and return plain
    data: the microbench result fields plus an exact-state registry
    dump.  Module-level (and argument-picklable) so ``Pool.map`` can
    ship it to spawn-started workers.  With ``fairness`` each shard
    attaches a fresh :class:`~repro.obs.fairness.FairnessObservatory`
    and publishes its ledger into the registry — counters add, wait
    histograms bucket-merge and watermark gauges keep their max across
    shards, so the merged report carries sweep-wide fairness data."""
    spec, seed = shard
    registry = MetricsRegistry()
    observatory = None
    if fairness:
        from repro.obs.fairness import FairnessObservatory
        observatory = FairnessObservatory()
    result = run_microbench(
        _config(spec.model), spec.lock, spec.threads, spec.write_pct,
        iters_per_thread=spec.iters, seed=seed, registry=registry,
        fairness=observatory,
    )
    return {
        "spec": dataclasses.asdict(spec),
        "seed": seed,
        "result": dataclasses.asdict(result),
        "metrics_state": registry.to_state(),
    }


def merge_shards(payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold shard payloads (already in spec order) into one RunReport
    dict of kind ``sweep``.  Pure function of the payload list — the
    serial/parallel byte-equality guarantee reduces to "the payloads
    are equal", which holds because each shard is a deterministic
    simulation."""
    merged = MetricsRegistry()
    cells: List[Dict[str, Any]] = []
    total_cs = 0
    elapsed_sum = 0
    for p in payloads:
        merged.merge_state(p["metrics_state"])
        r = p["result"]
        total_cs += r["total_cs"]
        elapsed_sum += r["elapsed"]
        cells.append({
            "spec": p["spec"],
            "seed": p["seed"],
            "result": r,
        })
    return build_run_report(
        kind="sweep",
        config={
            "shards": [
                {"spec": c["spec"], "seed": c["seed"]} for c in cells
            ],
        },
        results={
            "cells": cells,
            "shard_count": len(cells),
            "total_cs": total_cs,
            "elapsed_cycles_sum": elapsed_sum,
        },
        metrics=merged.to_dict(),
    )


def run_sweep(
    specs: Iterable[BenchCellSpec],
    seeds: Iterable[int] = (1,),
    workers: int = 0,
    progress=None,
    fairness: bool = False,
) -> Dict[str, Any]:
    """Run the full sweep and return the merged RunReport dict.

    ``workers <= 1`` runs every shard serially in-process (the reference
    path); ``workers >= 2`` shards across a spawn-context pool.  Both
    paths produce byte-identical reports.  ``progress``, if given, is
    called with each shard payload as it is merged (spec order).
    ``fairness`` attaches a fairness observatory to every shard (see
    :func:`_run_shard`); the flag changes telemetry only, never
    simulated cycles, and the byte-identity contract holds for any
    worker count either way.
    """
    shards = sweep_shards(specs, seeds)
    if not shards:
        raise ValueError("sweep needs at least one (cell, seed) shard")
    run_one = functools.partial(_run_shard, fairness=fairness)
    if workers >= 2:
        ctx = multiprocessing.get_context("spawn")
        nproc = min(workers, len(shards))
        with ctx.Pool(processes=nproc) as pool:
            payloads = pool.map(run_one, shards)
    else:
        payloads = [run_one(s) for s in shards]
    if progress is not None:
        for p in payloads:
            progress(p)
    return merge_shards(payloads)


def default_workers() -> int:
    """Worker-pool size when the CLI is told to auto-pick: the core
    count, floored at 2 (1 would silently fall back to the serial
    path)."""
    return max(2, os.cpu_count() or 2)
