"""Critical-section transfer-time microbenchmark (paper Section IV-A).

Multiple threads iteratively acquire one lock protecting a short critical
section; the lock-handling time dominates.  The paper reports cycles per
critical section while varying the thread count, the reader/writer mix
and the lock implementation (Figures 9 and 10).

Two modes:

* ``iterations`` — each thread runs a fixed number of critical sections;
  cycles/CS = elapsed / total CS (the paper's methodology).
* ``duration`` — run for a fixed simulated time and count per-thread
  acquisitions; used by the fairness benches (Jain index, writer
  starvation).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List

from repro.cpu import ops
from repro.cpu.machine import Machine
from repro.cpu.os_sched import OS
from repro.locks.base import get_algorithm
from repro.obs.instrument import attach_machine_metrics, finish_run
from repro.params import MachineConfig
from repro.sim.stats import Histogram, jain_fairness


@dataclasses.dataclass
class MicrobenchResult:
    """Outcome of one microbenchmark configuration."""

    lock: str
    model: str
    threads: int
    write_pct: int
    total_cs: int
    elapsed: int
    cycles_per_cs: float
    acquire_latency_mean: float
    per_thread_cs: List[int]
    fairness: float
    hub_utilisation: float
    writer_cs: int = 0
    reader_cs: int = 0
    acquire_latency_p50: float = 0.0
    acquire_latency_p95: float = 0.0
    acquire_latency_p99: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.lock} model {self.model} t={self.threads} "
            f"w={self.write_pct}%: {self.cycles_per_cs:.1f} cyc/CS"
        )


def run_microbench(
    config: MachineConfig,
    lock_name: str,
    threads: int,
    write_pct: int = 100,
    iters_per_thread: int = 200,
    cs_cycles: int = 40,
    think_cycles: int = 20,
    seed: int = 1,
    mode: str = "iterations",
    duration: int = 400_000,
    fixed_roles: bool = False,
    max_cycles: int = 2_000_000_000,
    registry=None,
    tracer=None,
    sample_interval: int = 0,
    profiler=None,
    host_profiler=None,
    fairness=None,
) -> MicrobenchResult:
    """Run the single-lock critical-section benchmark.

    ``write_pct`` is the probability (in percent) that an access is a
    write, unless ``fixed_roles`` is set, in which case the first
    ``round(threads * write_pct / 100)`` threads are permanent writers
    and the rest permanent readers (used for starvation measurements).

    ``registry`` (a :class:`repro.obs.MetricsRegistry`) collects machine
    counters and the acquire-latency histogram; ``tracer`` (a
    :class:`repro.obs.SpanTracer`) records per-thread acquire / CS spans
    and network message spans; ``profiler`` (a
    :class:`repro.obs.profile.ContentionProfiler`) attributes acquire
    latency to protocol phases via hardware probes; ``host_profiler``
    (a :class:`repro.obs.host.HostProfiler`) routes the engine through
    its instrumented dispatch loop, charging *host* nanoseconds to
    subsystems (``--host-prof``); ``fairness`` (a
    :class:`repro.obs.fairness.FairnessObservatory`) keeps the
    arrival-vs-grant overtake ledger, per-mode wait histograms,
    starvation watchdog and SLO clock (``--fairness``).  All default to
    off and cost nothing when absent — and none of them changes
    simulated cycle counts when present.
    """
    if mode not in ("iterations", "duration"):
        raise ValueError(f"unknown mode {mode!r}")
    machine = Machine(config)
    os_ = OS(machine)
    algo = get_algorithm(lock_name)(machine)
    handle = algo.make_lock()

    if registry is not None:
        attach_machine_metrics(machine, registry, sample_interval)
    if tracer is not None:
        tracer.attach(machine)
    if profiler is not None:
        profiler.attach_machine(machine)
        profiler.attach_algorithm(algo)
    if fairness is not None:
        # after the tracer: the observatory's flight-recorder ring wraps
        # net.send on top and finish_run detaches it first (LIFO)
        fairness.attach_machine(machine)
        fairness.attach_algorithm(algo)
        if registry is not None:
            fairness.attach_registry(registry)
    if host_profiler is not None:
        host_profiler.attach(machine.sim)

    per_thread_cs = [0] * threads
    writer_cs = [0]
    reader_cs = [0]
    acquire_lat = Histogram(bucket_width=32)
    n_writers = round(threads * write_pct / 100.0)
    # both the profiler and the fairness observatory listen on the
    # observed wrappers; either one being attached routes lock ops
    # through them (same instants, same simulated cycles)
    observed = profiler is not None or fairness is not None

    def worker_factory(index: int):
        def worker(thread):
            rng = random.Random(seed * 7919 + index)
            sim = machine.sim
            track = f"thread {index}"

            def one_iteration():
                if fixed_roles:
                    write = index < n_writers
                else:
                    write = rng.random() * 100 < write_pct
                t0 = sim.now
                if tracer is not None:
                    sid = tracer.begin(
                        "acquire", cat="lock", track=track, write=write
                    )
                if observed:
                    # observed wrappers fire at the same instants as the
                    # t0 capture / histogram add (no yields in between),
                    # so profiled latency == measured latency exactly
                    yield from algo.acquire(thread, handle, write)
                else:
                    yield from algo.lock(thread, handle, write)
                acquire_lat.add(sim.now - t0)
                if tracer is not None:
                    tracer.end(sid)
                    sid = tracer.begin("cs", cat="lock", track=track)
                yield ops.Compute(cs_cycles)
                if observed:
                    yield from algo.release(thread, handle, write)
                else:
                    yield from algo.unlock(thread, handle, write)
                if tracer is not None:
                    tracer.end(sid)
                per_thread_cs[index] += 1
                if write:
                    writer_cs[0] += 1
                else:
                    reader_cs[0] += 1
                if think_cycles:
                    yield ops.Compute(rng.randint(1, think_cycles))

            if mode == "iterations":
                for _ in range(iters_per_thread):
                    yield from one_iteration()
            else:
                while sim.now < duration:
                    yield from one_iteration()

        return worker

    for i in range(threads):
        os_.spawn(worker_factory(i))
    elapsed = os_.run_all(max_cycles=max_cycles)
    if registry is not None and registry.is_sampling:
        # the self-rescheduling sample tick would otherwise keep the
        # event queue busy and force drain() to its cycle cap
        registry.sample(machine.sim.now)
        registry.stop_sampling()
    machine.drain()

    total = sum(per_thread_cs)
    if registry is not None:
        registry.counter("bench.total_cs").inc(total)
        registry.counter("bench.writer_cs").inc(writer_cs[0])
        registry.counter("bench.reader_cs").inc(reader_cs[0])
        registry.histogram(
            "bench.acquire_latency", bucket_width=acquire_lat.bucket_width
        ).merge(acquire_lat)
    finish_run(machine, registry, tracer, profiler=profiler,
               host_profiler=host_profiler, fairness=fairness)
    # the Jain index: observatory-backed when attached (the one shared
    # ledger implementation), computed from per-thread grant counts
    # either way — both paths agree by construction
    if fairness is not None:
        fair_summary = fairness.lock_summary(algo.lock_id(handle))
    else:
        fair_summary = None
    fairness_index = (
        fair_summary["jain"] if fair_summary is not None
        else jain_fairness(per_thread_cs)
    )
    return MicrobenchResult(
        lock=lock_name,
        model=config.name,
        threads=threads,
        write_pct=write_pct,
        total_cs=total,
        elapsed=elapsed,
        cycles_per_cs=elapsed / total if total else float("inf"),
        acquire_latency_mean=acquire_lat.acc.mean,
        per_thread_cs=per_thread_cs,
        fairness=fairness_index,
        hub_utilisation=machine.net.hub_utilisation(),
        writer_cs=writer_cs[0],
        reader_cs=reader_cs[0],
        acquire_latency_p50=(
            0.0 if acquire_lat.empty else acquire_lat.percentile(50)
        ),
        acquire_latency_p95=(
            0.0 if acquire_lat.empty else acquire_lat.percentile(95)
        ),
        acquire_latency_p99=(
            0.0 if acquire_lat.empty else acquire_lat.percentile(99)
        ),
    )


def sweep(
    config_factory,
    lock_names: List[str],
    thread_counts: List[int],
    write_pct: int,
    **kwargs,
) -> Dict[str, List[MicrobenchResult]]:
    """Run every (lock, thread-count) combination; keyed by lock name."""
    out: Dict[str, List[MicrobenchResult]] = {}
    for name in lock_names:
        out[name] = [
            run_microbench(config_factory(), name, t, write_pct, **kwargs)
            for t in thread_counts
        ]
    return out
