"""Plain-text table rendering for experiment results.

The paper's figures are line charts; a terminal reproduction prints the
same series as aligned tables (one row per x-value, one column per
system) so "who wins, by what factor, where the crossover falls" can be
read directly from the benchmark output.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    rows: Sequence[Sequence[object]], title: str = "", floatfmt: str = ".1f"
) -> str:
    """Render rows (first row = header) as an aligned text table."""
    if not rows:
        return title

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return format(cell, floatfmt)
        return str(cell)

    text = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(text[r][c]) for r in range(len(text)))
        for c in range(len(text[0]))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for i, row in enumerate(text):
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append(sep)
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: "dict[str, Sequence[float]]",
    title: str = "",
    floatfmt: str = ".1f",
) -> str:
    """Render {name: values} sampled at xs — the shape of a paper figure."""
    header: List[object] = [x_label] + list(series.keys())
    rows: List[List[object]] = [header]
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for vals in series.values():
            row.append(vals[i] if i < len(vals) else "-")
        rows.append(row)
    return render_table(rows, title=title, floatfmt=floatfmt)


def render_chart(
    x_label: str,
    xs: Sequence[object],
    series: "dict[str, Sequence[float]]",
    width: int = 48,
    title: str = "",
) -> str:
    """Horizontal ASCII bar chart: one group of bars per x value, one bar
    per series — the terminal rendition of the paper's grouped-bar
    figures.  Bars scale to the global maximum."""
    peak = max(
        (v for vals in series.values() for v in vals
         if v == v and v != float("inf")),
        default=0.0,
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    name_w = max((len(n) for n in series), default=4)
    for i, x in enumerate(xs):
        lines.append(f"{x_label}={x}")
        for name, vals in series.items():
            v = vals[i] if i < len(vals) else float("nan")
            if v != v:  # NaN
                lines.append(f"  {name:>{name_w}} | (not run)")
                continue
            bar = "#" * max(1, round(width * v / peak)) if peak else ""
            lines.append(f"  {name:>{name_w}} |{bar} {v:.1f}")
    return "\n".join(lines)


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))
