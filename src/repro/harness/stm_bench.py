"""STM data-structure benchmarks (paper Section IV-B, Figures 11 & 12).

Multiple threads run transactions against one shared structure:
75% read-only lookups, 25% updates (half inserts, half removes) by
default — the paper's mix.  Reported: mean transaction time and its
dissection into application phase vs commit phase (Figure 11's stacked
bars), plus abort rates.

Structures are pre-populated to ``initial_size`` with even keys from a
``2 * initial_size`` key range, so inserts (random keys) and removes
stay balanced around 50% occupancy.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List

from repro.cpu import ops
from repro.cpu.machine import Machine
from repro.cpu.os_sched import OS
from repro.obs.instrument import attach_machine_metrics, finish_run
from repro.params import MachineConfig
from repro.stm.core import ObjectSTM
from repro.stm.direct import populate
from repro.stm.structures.hashtable import HashTable
from repro.stm.structures.rbtree import RBTree
from repro.stm.structures.skiplist import SkipList

STRUCTURES = {
    "rb": RBTree,
    "skip": SkipList,
    "hash": HashTable,
}


@dataclasses.dataclass
class StmBenchResult:
    variant: str
    structure: str
    model: str
    threads: int
    txns: int
    elapsed: int
    txn_cycles: float            # mean wall cycles per committed txn
    app_cycles: float            # dissection: application phase
    commit_cycles: float         # dissection: commit phase
    abort_rate: float
    abort_reasons: Dict[str, int] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.variant}/{self.structure} model {self.model} "
            f"t={self.threads}: {self.txn_cycles:.0f} cyc/txn "
            f"(app {self.app_cycles:.0f} + commit {self.commit_cycles:.0f}, "
            f"abort {self.abort_rate:.0%})"
        )


def run_stm_bench(
    config: MachineConfig,
    variant: str,
    structure: str = "rb",
    threads: int = 4,
    initial_size: int = 256,
    read_pct: int = 75,
    txns_per_thread: int = 40,
    seed: int = 1,
    max_cycles: int = 20_000_000_000,
    registry=None,
    tracer=None,
    sample_interval: int = 0,
    host_profiler=None,
) -> StmBenchResult:
    """Run one STM benchmark configuration and return its result.

    ``registry`` / ``tracer`` enable telemetry (machine counters, STM
    abort breakdown, per-thread transaction spans); ``host_profiler``
    attributes host time to subsystems (see
    :class:`repro.obs.host.HostProfiler`).  All are off by default and
    cost nothing when absent."""
    if structure not in STRUCTURES:
        raise ValueError(f"unknown structure {structure!r}")
    machine = Machine(config)
    stm = ObjectSTM(machine, variant)
    if registry is not None:
        attach_machine_metrics(machine, registry, sample_interval)
    if tracer is not None:
        tracer.attach(machine)
    if host_profiler is not None:
        host_profiler.attach(machine.sim)
    if structure == "hash":
        struct = HashTable(stm, buckets=max(16, initial_size // 4))
    else:
        struct = STRUCTURES[structure](stm)
    key_range = 2 * initial_size
    populate(stm, struct, range(0, key_range, 2))

    os_ = OS(machine)
    committed = [0]

    def worker_factory(index: int):
        def worker(thread):
            rng = random.Random(seed * 50_021 + index)
            track = f"thread {index}"
            for _ in range(txns_per_thread):
                r = rng.random() * 100
                key = rng.randrange(key_range)
                if r < read_pct:
                    body = lambda tx, k=key: struct.contains(tx, k)  # noqa: E731
                    op = "lookup"
                elif r < read_pct + (100 - read_pct) / 2:
                    body = lambda tx, k=key: struct.insert(tx, k)  # noqa: E731
                    op = "insert"
                else:
                    body = lambda tx, k=key: struct.remove(tx, k)  # noqa: E731
                    op = "remove"
                if tracer is not None:
                    sid = tracer.begin("txn", cat="stm", track=track, op=op)
                yield from stm.run(thread, body)
                if tracer is not None:
                    tracer.end(sid)
                committed[0] += 1
                yield ops.Compute(rng.randint(1, 30))

        return worker

    for i in range(threads):
        os_.spawn(worker_factory(i))
    elapsed = os_.run_all(max_cycles=max_cycles)
    if registry is not None:
        # stop the sample tick so drain() can actually drain
        registry.sample(machine.sim.now)
        registry.stop_sampling()
    machine.drain()

    txns = committed[0]
    s = stm.stats
    if registry is not None:
        registry.counter("bench.txns").inc(txns)
    finish_run(machine, registry, tracer, stm=stm,
               host_profiler=host_profiler)
    return StmBenchResult(
        variant=variant,
        structure=structure,
        model=config.name,
        threads=threads,
        txns=txns,
        elapsed=elapsed,
        txn_cycles=elapsed * threads / txns if txns else float("inf"),
        app_cycles=s.app_cycles / max(1, s.commits),
        commit_cycles=s.commit_cycles / max(1, s.commits),
        abort_rate=s.abort_rate,
        abort_reasons=dict(s.abort_reasons),
    )


def sweep_threads(
    config_factory,
    variants: List[str],
    thread_counts: List[int],
    **kwargs,
) -> Dict[str, List[StmBenchResult]]:
    """Figure 11 sweep: every (variant, thread count) combination."""
    out: Dict[str, List[StmBenchResult]] = {}
    for v in variants:
        out[v] = [
            run_stm_bench(config_factory(), v, threads=t, **kwargs)
            for t in thread_counts
        ]
    return out
