"""Fairness scorecard (``python -m repro fairness``).

Where ``repro bench`` measures the simulator's *speed*, this module
measures the locks' *fairness*: a pinned matrix of duration-mode
microbench cells (lock x machine model) runs with the
:class:`repro.obs.fairness.FairnessObservatory` attached, and each cell
reports the paper-style fairness quantities — Jain index over
per-thread grants, the worst arrival-order overtake, the writer share
of grants under a fixed writer-minority role split, and the p999 wait
time — plus starvation-watchdog alerts and (optionally) SLO
time-in-violation.

Methodology notes:

* **Writer-minority roles.**  Cells run ``fixed_roles`` with a 20%
  writer share by default: the first ``round(threads * 0.2)`` threads
  are permanent writers.  This is the configuration where unfair
  reader-preferring locks (the SSB baseline) visibly starve writers
  while queue-fair locks (LCU, ticket) hold the writer share near the
  offered load — the paper's Section IV-A starvation argument.
* **Duration mode.**  Fairness is a rate question, not a fixed-work
  question: every cell runs the same simulated duration and counts
  per-thread grants, so a starved role shows up as a depressed share
  instead of just a longer runtime.
* **The observatory is passive.**  Each cell first runs
  *uninstrumented*, then re-runs the identical configuration with the
  observatory (and a metrics registry) attached; the cell records
  whether simulated cycles and total critical sections were
  bit-identical (``zero_overhead``) — the zero-cost contract, asserted
  by tests and the CI gate.
* **Trajectory records.**  Cells carry the ``repro.bench-trajectory``
  required fields (host throughput, engine counters) so
  ``BENCH_fairness.json`` validates with the same tooling as
  ``BENCH_engine.json`` and ``repro report`` can summarize it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.harness.microbench import run_microbench
from repro.obs.fairness import FairnessObservatory
from repro.obs.host import env_fingerprint
from repro.obs.registry import MetricsRegistry
from repro.params import model_a, model_b

#: the pinned scorecard matrix — the paper's proposal (lcu), its
#: degradable deployment (lcu_fb), the unfair hardware baseline (ssb),
#: two fair software queues (mcs, ticket), the RW software baseline
#: (mrsw) and the unfair spinning baseline (tatas).
DEFAULT_LOCKS = ("lcu", "lcu_fb", "ssb", "mcs", "ticket", "mrsw", "tatas")
DEFAULT_MODELS = ("A", "B")
DEFAULT_THREADS = 12
DEFAULT_WRITE_PCT = 20
DEFAULT_DURATION = 120_000
DEFAULT_SEED = 1

#: --quick keeps the full lock x model coverage (the scorecard is the
#: point) but shrinks each cell: fewer threads, shorter duration.
QUICK_THREADS = 8
QUICK_DURATION = 40_000


def _config(model: str):
    return model_a() if model.upper() == "A" else model_b()


def scorecard_matrix(
    locks=DEFAULT_LOCKS,
    models=DEFAULT_MODELS,
    threads: int = DEFAULT_THREADS,
    write_pct: int = DEFAULT_WRITE_PCT,
    duration: int = DEFAULT_DURATION,
    seed: int = DEFAULT_SEED,
) -> List[Dict[str, Any]]:
    """The cell specs of one scorecard run (plain dicts; one per
    lock x model)."""
    return [
        {
            "lock": lock, "model": model, "threads": threads,
            "write_pct": write_pct, "duration": duration, "seed": seed,
        }
        for lock in locks for model in models
    ]


def quick_matrix(
    locks=DEFAULT_LOCKS, models=DEFAULT_MODELS,
    write_pct: int = DEFAULT_WRITE_PCT, seed: int = DEFAULT_SEED,
) -> List[Dict[str, Any]]:
    return scorecard_matrix(
        locks=locks, models=models, threads=QUICK_THREADS,
        write_pct=write_pct, duration=QUICK_DURATION, seed=seed,
    )


def run_fairness_cell(
    spec: Dict[str, Any],
    slo: Optional[int] = None,
    starvation_bound: int = 100_000,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run one scorecard cell: an uninstrumented reference pass, then
    the identical configuration with the fairness observatory attached.

    Returns ``(cell, fairness_section)`` — the JSON-safe trajectory
    cell and the full RunReport ``fairness`` section of the
    instrumented pass.
    """
    kwargs = dict(
        mode="duration", duration=spec["duration"],
        write_pct=spec["write_pct"], fixed_roles=True,
        iters_per_thread=0, seed=spec["seed"],
    )
    t0 = time.perf_counter()
    ref = run_microbench(
        _config(spec["model"]), spec["lock"], spec["threads"], **kwargs,
    )
    host_s = time.perf_counter() - t0

    registry = MetricsRegistry()
    observatory = FairnessObservatory(
        slo=slo, starvation_bound=starvation_bound,
    )
    instr = run_microbench(
        _config(spec["model"]), spec["lock"], spec["threads"],
        registry=registry, fairness=observatory, **kwargs,
    )
    section = observatory.to_dict()
    locks = section["locks"]
    if len(locks) != 1:
        raise RuntimeError(
            f"microbench cell observed {len(locks)} locks, expected 1"
        )
    summary = next(iter(locks.values()))

    counters = {c: registry.counter(c).value for c in (
        "engine.events_processed", "engine.heap_pushes",
        "engine.heap_pops", "engine.signal_waits",
        "engine.signal_cancels", "engine.signal_fires",
    )}
    engine = {
        "events_processed": counters["engine.events_processed"],
        "heap_pushes": counters["engine.heap_pushes"],
        "heap_pops": counters["engine.heap_pops"],
        "queue_depth_peak": registry.gauge("engine.queue_depth_peak").read(),
        "queue_depth_mean": registry.gauge("engine.queue_depth_mean").read(),
        "signal_waits": counters["engine.signal_waits"],
        "signal_cancels": counters["engine.signal_cancels"],
        "signal_fires": counters["engine.signal_fires"],
    }

    wait = summary["wait"]
    p999 = max(
        wait["read"]["p999"] if wait["read"]["count"] else 0.0,
        wait["write"]["p999"] if wait["write"]["count"] else 0.0,
    )
    best = host_s or 1e-12
    cell: Dict[str, Any] = {
        "lock": spec["lock"],
        "model": spec["model"],
        "threads": spec["threads"],
        "write_pct": spec["write_pct"],
        "duration": spec["duration"],
        "seed": spec["seed"],
        "host_seconds": round(host_s, 6),
        "simulated_cycles": ref.elapsed,
        "total_cs": ref.total_cs,
        "cycles_per_cs": round(ref.cycles_per_cs, 3),
        "cycles_per_host_sec": round(ref.elapsed / best, 1),
        "engine": engine,
        # the scorecard quantities
        "jain": round(summary["jain"], 4),
        "max_overtake": summary["overtakes"]["max"],
        "overtakes_total": summary["overtakes"]["total"],
        "writer_share": round(summary["writer_share"], 4),
        "wait_p999": round(p999, 1),
        "starvation_alerts": summary["starvation"]["alerts"],
        # the zero-cost contract, checked per cell
        "zero_overhead": (
            ref.elapsed == instr.elapsed and ref.total_cs == instr.total_cs
        ),
    }
    slo_d = summary.get("slo")
    if slo_d and slo_d.get("target") is not None:
        cell["slo_time_in_violation"] = slo_d["time_in_violation"]
        cell["slo_violations"] = slo_d["violations"]
    return cell, section


def run_fairness_bench(
    specs: List[Dict[str, Any]],
    slo: Optional[int] = None,
    starvation_bound: int = 100_000,
    label: Optional[str] = None,
    note: Optional[str] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Run the scorecard matrix and build one trajectory record.

    Returns ``(record, sections)`` — the ``BENCH_fairness.json``
    record and the per-cell RunReport fairness sections (same order as
    ``record["cells"]``)."""
    cells: List[Dict[str, Any]] = []
    sections: List[Dict[str, Any]] = []
    for spec in specs:
        cell, section = run_fairness_cell(
            spec, slo=slo, starvation_bound=starvation_bound,
        )
        cells.append(cell)
        sections.append(section)
        if progress is not None:
            progress(cell)
    record: Dict[str, Any] = {
        "env": env_fingerprint(),
        "time_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cells": cells,
    }
    if label:
        record["label"] = label
    if note:
        record["note"] = note
    return record, sections


def scorecard_table(cells: List[Dict[str, Any]]) -> str:
    """Render the paper-style fairness scorecard: one row per
    lock x model, the four headline quantities per cell."""
    header = (
        f"{'lock':8s} {'model':5s} {'thr':>3s} {'grants':>7s} "
        f"{'jain':>6s} {'max-ot':>6s} {'w-share':>7s} {'p999':>8s} "
        f"{'starve':>6s}"
    )
    rows = [header, "-" * len(header)]
    for cell in cells:
        starve = (str(cell["starvation_alerts"])
                  if cell["starvation_alerts"] else "-")
        rows.append(
            f"{cell['lock']:8s} {cell['model']:5s} "
            f"{cell['threads']:>3d} {cell['total_cs']:>7d} "
            f"{cell['jain']:>6.3f} {cell['max_overtake']:>6d} "
            f"{cell['writer_share']:>7.3f} {cell['wait_p999']:>8.0f} "
            f"{starve:>6s}"
        )
    return "\n".join(rows)
