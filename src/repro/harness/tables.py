"""Generation of the paper's qualitative tables (Figures 1 and 8).

Figure 1 compares locking mechanisms along fixed columns; here the rows
are generated from each lock algorithm's class metadata, so the table
always reflects what the code actually implements.
"""

from __future__ import annotations

from typing import List, Optional

from repro.harness.reporting import render_table
from repro.locks.base import all_algorithms
from repro.params import figure8_rows

FIGURE1_COLUMNS = [
    "Mechanism", "HW/SW", "Local spin", "RW locks", "Trylock", "Fair",
    "Evict detect", "Scalability", "Memory/area", "Transfer msgs",
    "L1 changes",
]

# presentation order: software first, hardware proposals last (as in the
# paper's Figure 1); extra baselines implemented beyond the paper's rows
# slot into their families
_ORDER = [
    "tas", "tatas", "hbo", "ticket", "mcs", "clh", "mrsw", "snzi",
    "pthread", "mao", "ssb", "lcu",
]


def figure1_rows(names: Optional[List[str]] = None) -> List[List[str]]:
    algos = all_algorithms()
    if names is None:
        names = [n for n in _ORDER if n in algos]
    rows = [FIGURE1_COLUMNS]
    for name in names:
        rows.append(algos[name].figure1_row())
    return rows


def figure1_table() -> str:
    return render_table(
        figure1_rows(),
        title="Figure 1: comparison of locking mechanisms (from code metadata)",
    )


def figure8_table() -> str:
    return render_table(
        figure8_rows(),
        title="Figure 8: machine model parameters",
    )
