"""Continuous engine benchmarking (``python -m repro bench``).

The simulator's own speed is a first-class measured quantity: this
module runs a pinned matrix of microbenchmark cells (locks x models x
thread counts), times each cell best-of-N on the host clock, runs one
extra *instrumented* pass per cell for host-time attribution and
engine event-queue telemetry, and appends the result as one record to
a machine-readable trajectory (``BENCH_engine.json``).  Engine PRs are
then gated on ``repro diff --host --fail-on-regression`` against the
previous record — measured cycles per host second, not anecdotes.

Methodology notes:

* **Timing repeats are uninstrumented.**  The N timed repeats run with
  no registry, tracer or profiler attached, so the recorded
  ``host_seconds_best`` is the real hot path.  The simulator is
  deterministic, so the extra instrumented pass re-produces bit-
  identical simulated results (asserted in tests) while charging host
  nanoseconds to subsystems; its own (slower) wall time is recorded
  separately as ``instrumented_host_seconds``.
* **Best-of-N, with dispersion.**  Host wall-clock on shared machines
  is noisy; the best repeat is the least-interfered-with run and the
  number to optimise, while mean/stdev/relative spread
  (:func:`repro.sim.stats.dispersion`) quantify how much to trust it.
* **Environment fingerprint.**  Every record stamps python version,
  implementation, platform and CPU count (:func:`repro.obs.host.
  env_fingerprint`); ``repro diff --host`` warns when two records were
  measured on different environments.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.harness.microbench import run_microbench
from repro.obs.host import HostProfiler, env_fingerprint
from repro.obs.registry import MetricsRegistry
from repro.obs.report import build_run_report
from repro.params import model_a, model_b
from repro.sim.stats import dispersion

#: the pinned default matrix — stable cell set so trajectory records
#: stay comparable across PRs.  One software lock (mcs), the paper's
#: hardware lock (lcu) and the RW baseline (mrsw) over both machine
#: models at a low and a high thread count.
DEFAULT_LOCKS = ("lcu", "mcs", "mrsw")
DEFAULT_MODELS = ("A", "B")
DEFAULT_THREADS = (4, 16)
DEFAULT_WRITE_PCT = 100
DEFAULT_ITERS = 150
DEFAULT_REPEATS = 5
DEFAULT_SEED = 1

#: the --quick cell: the configuration every BENCH baseline and CI
#: smoke gate pins (same as BENCH_telemetry.json's microbench).
QUICK_CELL = ("lcu", "A", 16)
QUICK_REPEATS = 3


@dataclasses.dataclass(frozen=True)
class BenchCellSpec:
    """One cell of the bench matrix."""

    lock: str
    model: str
    threads: int
    write_pct: int = DEFAULT_WRITE_PCT
    iters: int = DEFAULT_ITERS
    seed: int = DEFAULT_SEED

    def describe(self) -> str:
        return (f"{self.lock} model {self.model} t={self.threads} "
                f"w={self.write_pct}% x{self.iters}")


def default_matrix(
    locks=DEFAULT_LOCKS, models=DEFAULT_MODELS, threads=DEFAULT_THREADS,
    write_pct=DEFAULT_WRITE_PCT, iters=DEFAULT_ITERS, seed=DEFAULT_SEED,
) -> List[BenchCellSpec]:
    return [
        BenchCellSpec(lock, model, t, write_pct, iters, seed)
        for lock in locks for model in models for t in threads
    ]


def quick_matrix(iters: int = DEFAULT_ITERS) -> List[BenchCellSpec]:
    lock, model, threads = QUICK_CELL
    return [BenchCellSpec(lock, model, threads, iters=iters)]


def _config(model: str):
    return model_a() if model.upper() == "A" else model_b()


def run_cell(
    spec: BenchCellSpec,
    repeats: int = DEFAULT_REPEATS,
    host_prof: bool = True,
    profile: bool = False,
    sample_interval: int = 0,
    embed_report: bool = False,
) -> Tuple[Dict[str, Any], Optional[HostProfiler]]:
    """Run one cell: ``repeats`` uninstrumented timing passes plus one
    instrumented pass (registry always; host attribution when
    ``host_prof``; contention-profiler phase means when ``profile``).

    Returns the JSON-safe cell dict and the cell's
    :class:`HostProfiler` (None with ``host_prof`` off) so callers can
    export folded stacks.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timings: List[float] = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_microbench(
            _config(spec.model), spec.lock, spec.threads, spec.write_pct,
            iters_per_thread=spec.iters, seed=spec.seed,
        )
        timings.append(time.perf_counter() - t0)
    assert result is not None
    stats = dispersion(timings)

    # instrumented pass: deterministic re-run of the same cell for
    # attribution + event-queue counters.  Its wall time is recorded
    # (bench.instrumented_pass.host_ns via a registry HostTimer and the
    # instrumented_host_seconds field) but never used for throughput.
    registry = MetricsRegistry()
    host = HostProfiler() if host_prof else None
    profiler = None
    if profile:
        from repro.obs.profile import ContentionProfiler
        profiler = ContentionProfiler()
    timer = registry.timer("bench.instrumented_pass.host_ns").start()
    instr = run_microbench(
        _config(spec.model), spec.lock, spec.threads, spec.write_pct,
        iters_per_thread=spec.iters, seed=spec.seed,
        registry=registry, sample_interval=sample_interval,
        profiler=profiler, host_profiler=host,
    )
    instr_ns = timer.stop()

    counters = {c: registry.counter(c).value for c in (
        "engine.events_processed", "engine.heap_pushes",
        "engine.heap_pops", "engine.signal_waits",
        "engine.signal_cancels", "engine.signal_fires",
    )}
    engine = {
        "events_processed": counters["engine.events_processed"],
        "heap_pushes": counters["engine.heap_pushes"],
        "heap_pops": counters["engine.heap_pops"],
        "queue_depth_peak": registry.gauge("engine.queue_depth_peak").read(),
        "queue_depth_mean": registry.gauge("engine.queue_depth_mean").read(),
        "signal_waits": counters["engine.signal_waits"],
        "signal_cancels": counters["engine.signal_cancels"],
        "signal_fires": counters["engine.signal_fires"],
    }

    best = stats["best"] or 1e-12
    cell: Dict[str, Any] = {
        "lock": spec.lock,
        "model": spec.model,
        "threads": spec.threads,
        "write_pct": spec.write_pct,
        "iters": spec.iters,
        "seed": spec.seed,
        "repeats": repeats,
        "host_seconds": [round(t, 6) for t in timings],
        "host_seconds_best": round(stats["best"], 6),
        "host_seconds_mean": round(stats["mean"], 6),
        "host_seconds_stdev": round(stats["stdev"], 6),
        "host_rel_spread": round(stats["rel_spread"], 4),
        "simulated_cycles": result.elapsed,
        "total_cs": result.total_cs,
        "cycles_per_cs": round(result.cycles_per_cs, 3),
        "cycles_per_host_sec": round(result.elapsed / best, 1),
        "events_per_host_sec": round(
            engine["events_processed"] / best, 1
        ),
        "instrumented_host_seconds": round(instr_ns / 1e9, 6),
        "engine": engine,
    }

    if host is not None:
        cell["host"] = host.to_dict()
    if profiler is not None:
        cell["profile"] = _profile_digest(
            profiler, result, instr, stats["best"], instr_ns / 1e9
        )
    if embed_report:
        cell["report"] = build_run_report(
            "microbench",
            {
                "lock": spec.lock, "model": spec.model,
                "threads": spec.threads, "write_pct": spec.write_pct,
                "iters_per_thread": spec.iters,
                "sample_interval": sample_interval,
                "machine": dataclasses.asdict(_config(spec.model)),
            },
            dataclasses.asdict(instr),
            metrics=registry.to_dict(),
            profile=profiler.to_dict() if profiler is not None else None,
            host=host.to_dict() if host is not None else None,
        )
    return cell, host


def _profile_digest(
    profiler, timed_result, instr_result, best_s: float, instr_s: float
) -> Dict[str, Any]:
    """The BENCH_profile-style digest of one profiled cell: contention
    phase means, profiler host overhead, and the determinism check that
    instrumentation left simulated time untouched."""
    phases: Dict[str, Any] = {}
    prof = profiler.to_dict()
    for _label, d in (prof.get("locks") or {}).items():
        for phase, s in (d.get("phases") or {}).items():
            if isinstance(s, dict) and isinstance(
                s.get("mean"), (int, float)
            ):
                phases[phase] = round(s["mean"], 2)
    overhead_pct = (
        100.0 * (instr_s - best_s) / best_s if best_s > 0 else 0.0
    )
    return {
        "phase_means": phases,
        "host_overhead_pct": round(overhead_pct, 1),
        "simulated_cycles_identical": (
            timed_result.elapsed == instr_result.elapsed
            and timed_result.total_cs == instr_result.total_cs
        ),
    }


def run_bench(
    specs: List[BenchCellSpec],
    repeats: int = DEFAULT_REPEATS,
    host_prof: bool = True,
    profile: bool = False,
    sample_interval: int = 0,
    embed_report: bool = False,
    label: Optional[str] = None,
    note: Optional[str] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Tuple[Dict[str, Any], List[HostProfiler]]:
    """Run the matrix and build one trajectory record.

    Returns the record and the per-cell host profilers (empty list with
    ``host_prof`` off) for folded-stack export.
    """
    cells: List[Dict[str, Any]] = []
    profilers: List[HostProfiler] = []
    for spec in specs:
        cell, host = run_cell(
            spec, repeats=repeats, host_prof=host_prof, profile=profile,
            sample_interval=sample_interval, embed_report=embed_report,
        )
        cells.append(cell)
        if host is not None:
            profilers.append(host)
        if progress is not None:
            progress(cell)
    record: Dict[str, Any] = {
        "env": env_fingerprint(),
        "time_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "cells": cells,
    }
    if label:
        record["label"] = label
    if note:
        record["note"] = note
    return record, profilers


def merged_folded(profilers: List[HostProfiler]) -> str:
    """Sum folded-stack rows across cells into one host flamegraph."""
    rows: Dict[str, int] = {}
    for host in profilers:
        for line in host.folded().splitlines():
            path, ns = line.rsplit(" ", 1)
            rows[path] = rows.get(path, 0) + int(ns)
    return "".join(f"{path} {ns}\n" for path, ns in sorted(rows.items()))


def summarize_cell(cell: Dict[str, Any]) -> str:
    """One human-readable bench line per cell."""
    mcyc = cell["cycles_per_host_sec"] / 1e6
    line = (
        f"{cell['lock']:7s} model {cell['model']} t={cell['threads']:<3d} "
        f"{cell['host_seconds_best']:7.3f}s best of {cell['repeats']} "
        f"(±{cell['host_seconds_stdev']:.3f})  "
        f"{mcyc:6.3f} Mcyc/s  "
        f"{cell['engine']['events_processed']:>8.0f} events "
        f"(depth peak {cell['engine']['queue_depth_peak']:.0f})"
    )
    host = cell.get("host")
    if host and host.get("total_ns"):
        top = max(
            host["subsystems"].items(), key=lambda kv: kv[1],
            default=(None, 0),
        )
        if top[0]:
            line += (f"  top host cost: {top[0]} "
                     f"{100.0 * top[1] / host['total_ns']:.0f}%")
    return line
