"""Structural diffing of two versioned RunReports with regression verdicts.

``python -m repro diff OLD NEW`` is the repo's perf-regression gate: it
walks two RunReport JSON files (any supported schema version), pairs up
comparable numeric quantities — result scalars, metric counters,
histogram means and p95s — and classifies each pair against a *relative*
threshold::

    ratio = (new - old) / |old|          (old == 0: any change -> "new")

A change only earns a **regression**/**improvement** verdict when the
metric's *direction* is known (is a bigger ``acquire_lat`` worse?  yes;
is a bigger ``total_cs`` worse?  no).  Direction is inferred from name
substrings (:data:`LOWER_IS_BETTER` / :data:`HIGHER_IS_BETTER`);
quantities with unknown direction are reported as plain ``changed`` and
never fail the gate, so adding a new counter can't break CI.

Config keys are compared too — a diff between runs of *different
experiments* is almost always user error, so config mismatches are
listed prominently (but are not regressions).

``python -m repro diff --host`` extends the same machinery to *host*
performance: it compares two bench-trajectory records (or two v3
RunReports with ``host`` sections) — cycles-per-host-second, best-of-N
host seconds, per-subsystem host-time attribution and the engine's
event-queue counters.  Host wall-clock is noisy where simulated cycles
are exact, so host diffs use their own (more generous) threshold and
carry the records' environment fingerprints: a mismatch (different
python, different machine) is flagged because it compares machines,
not code.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

#: name substrings implying "smaller is better" (latency-like).
#: "host" covers every host-time quantity (host_seconds_*, host_ns.*,
#: host.total_ns) — all of them are time burned.
LOWER_IS_BETTER = (
    "latency", "lat", "cycles", "elapsed", "abort", "retries", "retry",
    "timeout", "failures", "failed", "misses", "invalidations",
    "queue_delay", "busy", "messages", "wait", "evictions", "nacks",
    "dropped", "overflow", "stall", "handoff", "transfer", "enqueue",
    "host", "heap_pushes", "heap_pops", "events_processed",
    "overtake", "starvation", "violation", "abandoned",
)

#: name substrings implying "bigger is better" (throughput-like).
#: "per_host_sec" outranks the "host"/"cycles" lower-is-better matches
#: because higher-is-better substrings win ties.
HIGHER_IS_BETTER = (
    "total_cs", "throughput", "commit", "fairness", "hits", "ops",
    "acquisitions", "completed", "per_host_sec", "jain", "writer_share",
)

#: verdicts, in severity order for sorting
VERDICTS = ("regression", "improvement", "changed", "added", "removed",
            "unchanged")


@dataclasses.dataclass
class DiffEntry:
    """One compared quantity."""

    key: str            # dotted path, e.g. "metrics.counters.net.messages_sent"
    old: Optional[float]
    new: Optional[float]
    ratio: Optional[float]   # relative change; None when not computable
    verdict: str             # one of VERDICTS
    direction: Optional[str]  # "lower" / "higher" / None (unknown)


def direction_of(name: str) -> Optional[str]:
    """Infer whether a smaller value of ``name`` is better ("lower"),
    a bigger one is ("higher"), or we don't know (None).  Higher-is-
    better substrings win ties: "total_cs_cycles" is throughput-like
    even though it mentions cycles.

    Names under a ``fairness.`` namespace are judged by their tail:
    "fairness" itself is a higher-is-better quantity (the Jain index
    result scalar), but ``fairness.lcu_0x80.overtakes.total`` is an
    overtake count, where lower is better."""
    low = name.lower()
    if "fairness." in low:
        low = low.rsplit("fairness.", 1)[1] or low
    if any(s in low for s in HIGHER_IS_BETTER):
        return "higher"
    if any(s in low for s in LOWER_IS_BETTER):
        return "lower"
    return None


def _ratio(old: float, new: float) -> Optional[float]:
    if old == new:
        return 0.0
    if old == 0:
        return None              # any change from zero: not a ratio
    return (new - old) / abs(old)


def _verdict(key: str, old: float, new: float,
             threshold: float) -> Tuple[Optional[float], str, Optional[str]]:
    ratio = _ratio(old, new)
    direction = direction_of(key)
    if old == new:
        return 0.0, "unchanged", direction
    exceeded = ratio is None or abs(ratio) > threshold
    if not exceeded:
        return ratio, "unchanged", direction
    if direction is None:
        return ratio, "changed", direction
    worse = (new > old) if direction == "lower" else (new < old)
    return ratio, ("regression" if worse else "improvement"), direction


def _numeric_leaves(obj: Any, prefix: str) -> Dict[str, float]:
    """Flatten nested dicts to dotted-path -> number (bools excluded)."""
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            out.update(_numeric_leaves(v, f"{prefix}.{k}" if prefix else k))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix] = obj
    return out


def _comparable(
    report: Dict[str, Any], include_host: bool = False
) -> Dict[str, float]:
    """Extract the quantities worth diffing from one RunReport.

    ``include_host`` adds the v3 ``host`` section (total + per-subsystem
    nanoseconds).  Host times are wall-clock noise on shared machines,
    so they only enter the comparison when the caller asked for a host
    diff — adding ``--host-prof`` to a run can never fail the ordinary
    simulated-metrics gate."""
    out: Dict[str, float] = {}
    out.update(_numeric_leaves(report.get("results", {}), "results"))
    metrics = report.get("metrics", {})
    counters = _numeric_leaves(metrics.get("counters", {}),
                               "metrics.counters")
    if not include_host:
        # registry HostTimer counters (".host_ns" convention) are host
        # wall-clock: nondeterministic, so they would flake the
        # deterministic simulated-metrics gate
        counters = {k: v for k, v in counters.items()
                    if not k.endswith(".host_ns")}
    out.update(counters)
    for name, h in metrics.get("histograms", {}).items():
        if not isinstance(h, dict):
            continue
        if isinstance(h.get("mean"), (int, float)):
            out[f"metrics.histograms.{name}.mean"] = h["mean"]
        pct = h.get("percentiles") or {}
        if isinstance(pct, dict) and isinstance(
            pct.get("p95"), (int, float)
        ):
            out[f"metrics.histograms.{name}.p95"] = pct["p95"]
    profile = report.get("profile")
    if isinstance(profile, dict):
        for label, d in profile.get("locks", {}).items():
            if not isinstance(d, dict):
                continue
            for p, s in (d.get("phases") or {}).items():
                if isinstance(s, dict) and isinstance(
                    s.get("mean"), (int, float)
                ):
                    out[f"profile.{label}.{p}.mean"] = s["mean"]
    fairness = report.get("fairness")
    if isinstance(fairness, dict):
        for label, d in fairness.get("locks", {}).items():
            if not isinstance(d, dict):
                continue
            base = f"fairness.{label}"
            for key in ("jain", "writer_share", "longest_wait"):
                v = d.get(key)
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    out[f"{base}.{key}"] = v
            ot = d.get("overtakes")
            if isinstance(ot, dict):
                for key in ("total", "max"):
                    v = ot.get(key)
                    if isinstance(v, (int, float)):
                        out[f"{base}.overtakes.{key}"] = v
            for mode in ("read", "write"):
                w = (d.get("wait") or {}).get(mode)
                if isinstance(w, dict) and isinstance(
                    w.get("p999"), (int, float)
                ):
                    out[f"{base}.wait.{mode}.p999"] = w["p999"]
            sv = d.get("starvation")
            if isinstance(sv, dict) and isinstance(
                sv.get("alerts"), (int, float)
            ):
                out[f"{base}.starvation.alerts"] = sv["alerts"]
            slo = d.get("slo")
            if isinstance(slo, dict) and isinstance(
                slo.get("time_in_violation"), (int, float)
            ):
                out[f"{base}.slo.time_in_violation"] = \
                    slo["time_in_violation"]
    if include_host:
        host = report.get("host")
        if isinstance(host, dict):
            if isinstance(host.get("total_ns"), (int, float)):
                out["host.total_ns"] = host["total_ns"]
            subs = host.get("subsystems")
            if isinstance(subs, dict):
                out.update(_numeric_leaves(subs, "host.host_ns"))
    return out


@dataclasses.dataclass
class RunReportDiff:
    """The full comparison of two RunReports."""

    entries: List[DiffEntry]
    config_mismatches: List[Tuple[str, Any, Any]]
    threshold: float

    @property
    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.verdict == "regression"]

    @property
    def improvements(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.verdict == "improvement"]

    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.run-report-diff",
            "version": 1,
            "threshold": self.threshold,
            "config_mismatches": [
                {"key": k, "old": o, "new": n}
                for k, o, n in self.config_mismatches
            ],
            "counts": {
                v: sum(1 for e in self.entries if e.verdict == v)
                for v in VERDICTS
            },
            "entries": [dataclasses.asdict(e) for e in self.entries],
        }

    def summarize(self, top: int = 20) -> str:
        lines = []
        counts = {v: 0 for v in VERDICTS}
        for e in self.entries:
            counts[e.verdict] += 1
        lines.append(
            f"diff: {len(self.entries)} quantities compared "
            f"(threshold {self.threshold:.0%}): "
            + ", ".join(f"{n} {v}" for v, n in counts.items() if n)
        )
        if self.config_mismatches:
            lines.append(f"config mismatches "
                         f"({len(self.config_mismatches)}):")
            for k, o, n in self.config_mismatches[:top]:
                lines.append(f"  {k}: {o!r} -> {n!r}")

        def fmt(e: DiffEntry) -> str:
            ratio = ("n/a" if e.ratio is None
                     else f"{e.ratio:+.1%}")
            old = "-" if e.old is None else f"{e.old:g}"
            new = "-" if e.new is None else f"{e.new:g}"
            return f"  {e.key}: {old} -> {new}  ({ratio})"

        for verdict, title in (
            ("regression", "REGRESSIONS"),
            ("improvement", "improvements"),
            ("changed", "changed (direction unknown, not gated)"),
        ):
            rows = [e for e in self.entries if e.verdict == verdict]
            if not rows:
                continue
            rows.sort(key=lambda e: -(abs(e.ratio)
                                      if e.ratio is not None else
                                      float("inf")))
            lines.append(f"{title} ({len(rows)}):")
            lines.extend(fmt(e) for e in rows[:top])
            if len(rows) > top:
                lines.append(f"  ... and {len(rows) - top} more")
        added = [e for e in self.entries if e.verdict == "added"]
        removed = [e for e in self.entries if e.verdict == "removed"]
        if added:
            lines.append(f"added ({len(added)}): "
                         + ", ".join(e.key for e in added[:top]))
        if removed:
            lines.append(f"removed ({len(removed)}): "
                         + ", ".join(e.key for e in removed[:top]))
        if not self.entries:
            lines.append("(nothing comparable in either report)")
        return "\n".join(lines)


def diff_run_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = 0.10,
    include_host: bool = False,
) -> RunReportDiff:
    """Compare two (already validated) RunReport dicts.

    ``threshold`` is the relative change below which a quantity counts
    as ``unchanged``; only known-direction quantities beyond it become
    ``regression``/``improvement``.  ``include_host`` also compares the
    v3 ``host`` sections (see :func:`_comparable`).
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    old_q = _comparable(old, include_host=include_host)
    new_q = _comparable(new, include_host=include_host)
    entries: List[DiffEntry] = []
    for key in sorted(set(old_q) | set(new_q)):
        if key not in new_q:
            entries.append(DiffEntry(key, old_q[key], None, None,
                                     "removed", direction_of(key)))
        elif key not in old_q:
            entries.append(DiffEntry(key, None, new_q[key], None,
                                     "added", direction_of(key)))
        else:
            ratio, verdict, direction = _verdict(
                key, old_q[key], new_q[key], threshold
            )
            entries.append(DiffEntry(key, old_q[key], new_q[key],
                                     ratio, verdict, direction))
    entries.sort(key=lambda e: (VERDICTS.index(e.verdict), e.key))

    mismatches: List[Tuple[str, Any, Any]] = []
    old_cfg = old.get("config", {})
    new_cfg = new.get("config", {})
    for k in sorted(set(old_cfg) | set(new_cfg)):
        if old_cfg.get(k) != new_cfg.get(k):
            mismatches.append((k, old_cfg.get(k), new_cfg.get(k)))
    return RunReportDiff(entries, mismatches, threshold)


# --------------------------------------------------------------------- #
# host diffs (`repro diff --host`)

def host_comparable(record: Dict[str, Any]) -> Dict[str, float]:
    """Flatten one bench-trajectory record into dotted-path -> number.

    Cells are keyed by their configuration (``lcu.A.t16.w100``) rather
    than list position, so reordering or extending the matrix pairs up
    the surviving cells instead of shifting everything."""
    out: Dict[str, float] = {}
    for cell in record.get("cells", []):
        if not isinstance(cell, dict):
            continue
        prefix = f"{cell.get('lock')}.{cell.get('model')}" \
                 f".t{cell.get('threads')}"
        if cell.get("write_pct") is not None:
            prefix += f".w{cell.get('write_pct')}"
        for key in ("cycles_per_host_sec", "host_seconds_best",
                    "host_seconds_mean", "simulated_cycles", "total_cs",
                    "cycles_per_cs"):
            v = cell.get(key)
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out[f"{prefix}.{key}"] = v
        engine = cell.get("engine")
        if isinstance(engine, dict):
            out.update(_numeric_leaves(engine, f"{prefix}.engine"))
        host = cell.get("host")
        if isinstance(host, dict):
            subs = host.get("subsystems")
            if isinstance(subs, dict):
                out.update(_numeric_leaves(subs, f"{prefix}.host_ns"))
    return out


#: per-cell scorecard quantities of a fairness-trajectory record
#: (``BENCH_fairness.json``).  All deterministic — simulated, not host
#: wall-clock — so two runs of the same code diff as "unchanged" and
#: the gate never false-fails on runner noise.
FAIRNESS_CELL_KEYS = (
    "jain", "max_overtake", "overtakes_total", "writer_share",
    "wait_p999", "starvation_alerts", "slo_time_in_violation",
    "slo_violations",
)


def is_fairness_record(record: Any) -> bool:
    """True when ``record`` looks like a ``repro fairness`` trajectory
    record (its cells carry the scorecard quantities)."""
    if not isinstance(record, dict):
        return False
    cells = record.get("cells")
    return bool(cells) and all(
        isinstance(c, dict) and "jain" in c for c in cells
    )


def fairness_comparable(record: Dict[str, Any]) -> Dict[str, float]:
    """Flatten one fairness-trajectory record into dotted-path ->
    number.  Cells are keyed by configuration (``lcu.A.t12.w20``) like
    :func:`host_comparable`; scorecard quantities live under a
    ``fairness.`` segment so :func:`direction_of` judges them by their
    tail (``...fairness.jain`` higher-is-better,
    ``...fairness.max_overtake`` lower)."""
    out: Dict[str, float] = {}
    for cell in record.get("cells", []):
        if not isinstance(cell, dict):
            continue
        prefix = f"{cell.get('lock')}.{cell.get('model')}" \
                 f".t{cell.get('threads')}"
        if cell.get("write_pct") is not None:
            prefix += f".w{cell.get('write_pct')}"
        for key in ("simulated_cycles", "total_cs", "cycles_per_cs"):
            v = cell.get(key)
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out[f"{prefix}.{key}"] = v
        for key in FAIRNESS_CELL_KEYS:
            v = cell.get(key)
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                out[f"{prefix}.fairness.{key}"] = v
    return out


def diff_fairness_records(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = 0.10,
) -> RunReportDiff:
    """Compare two fairness-trajectory records' scorecard quantities.

    Every compared quantity is simulated (deterministic), so the
    default threshold matches the simulated-metrics gate, and a
    fairness drop — lower Jain, a bigger worst overtake, a starved
    writer share, a fatter p999 wait — earns a **regression** verdict
    through the same direction machinery as ``repro diff``."""
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    old_q = fairness_comparable(old)
    new_q = fairness_comparable(new)
    entries: List[DiffEntry] = []
    for key in sorted(set(old_q) | set(new_q)):
        if key not in new_q:
            entries.append(DiffEntry(key, old_q[key], None, None,
                                     "removed", direction_of(key)))
        elif key not in old_q:
            entries.append(DiffEntry(key, None, new_q[key], None,
                                     "added", direction_of(key)))
        else:
            ratio, verdict, direction = _verdict(
                key, old_q[key], new_q[key], threshold
            )
            entries.append(DiffEntry(key, old_q[key], new_q[key],
                                     ratio, verdict, direction))
    entries.sort(key=lambda e: (VERDICTS.index(e.verdict), e.key))

    from repro.obs.host import fingerprint_mismatches
    mismatches: List[Tuple[str, Any, Any]] = [
        (f"env.{k}", o, n)
        for k, o, n in fingerprint_mismatches(
            old.get("env") or {}, new.get("env") or {}
        )
    ]
    if old.get("label") != new.get("label"):
        mismatches.append(("label", old.get("label"), new.get("label")))
    return RunReportDiff(entries, mismatches, threshold)


def diff_host_records(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = 0.25,
) -> RunReportDiff:
    """Compare two bench-trajectory records' host metrics.

    ``threshold`` defaults looser than the simulated-metrics diff (25%
    vs 10%): host wall-clock on shared runners jitters in ways
    simulated cycles never do.  Environment-fingerprint differences are
    reported through ``config_mismatches`` (``env.python`` etc.) so the
    caller can warn that the two records measured different machines.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    old_q = host_comparable(old)
    new_q = host_comparable(new)
    entries: List[DiffEntry] = []
    for key in sorted(set(old_q) | set(new_q)):
        if key not in new_q:
            entries.append(DiffEntry(key, old_q[key], None, None,
                                     "removed", direction_of(key)))
        elif key not in old_q:
            entries.append(DiffEntry(key, None, new_q[key], None,
                                     "added", direction_of(key)))
        else:
            ratio, verdict, direction = _verdict(
                key, old_q[key], new_q[key], threshold
            )
            entries.append(DiffEntry(key, old_q[key], new_q[key],
                                     ratio, verdict, direction))
    entries.sort(key=lambda e: (VERDICTS.index(e.verdict), e.key))

    from repro.obs.host import fingerprint_mismatches
    mismatches: List[Tuple[str, Any, Any]] = [
        (f"env.{k}", o, n)
        for k, o, n in fingerprint_mismatches(
            old.get("env") or {}, new.get("env") or {}
        )
    ]
    if old.get("label") != new.get("label"):
        mismatches.append(("label", old.get("label"), new.get("label")))
    return RunReportDiff(entries, mismatches, threshold)
