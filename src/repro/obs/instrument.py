"""Wiring between simulator components and the metrics registry.

Two-phase design keeps instrumentation zero-cost for uninstrumented
runs:

* :func:`attach_machine_metrics` registers *gauges* whose callbacks read
  live machine state (event-queue depth, hub utilisation, LRT occupancy,
  LCU entries in use) and optionally starts periodic sampling on the
  machine's simulator.  Nothing inside the simulator hot paths ever
  checks for a registry — sampling is an ordinary scheduled event.
* :func:`harvest_machine_metrics` runs once after a simulation finishes
  and *pulls* every component's existing ad-hoc counters (LCU/LRT/SSB
  stats dicts, memory hit/miss counts, fabric server occupancy) into
  hierarchical registry counters.  Harvest uses ``Counter.inc``, so a
  harness that runs several machines (figure sweeps, multi-seed app
  runs) accumulates totals across them.

Metric naming convention (see README "Observability"):

    engine.*            event-loop occupancy and throughput
    net.*               fabric counters; net.<group><id>.* per server
    mem.*               directory/L1 behaviour; mem.dir<j>.* per slice
    lcu.core<i>.*       per-core LCU stats + table highwater
    lrt.<j>.*           per-LRT stats + occupancy highwater
    ssb.*               SSB bank stats
    stm.*               commits/aborts (stm.abort.<reason>) and phases
    bench.*             harness-level results (total CS, latencies)
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricsRegistry


def _sanitize(part: str) -> str:
    """Make an arbitrary label usable as one metric-name component."""
    out = "".join(c if c.isalnum() or c in "_-" else "_" for c in str(part))
    return out.strip("_") or "x"


def _server_metric(group: str, label: str) -> str:
    """Metric-name prefix for one fabric server (``net.hub_out0``,
    ``net.access_core3``, ``net.root``)."""
    label = _sanitize(label) if label else ""
    if not label:
        return f"net.{group}"
    sep = "_" if group == "access" else ""
    return f"net.{group}{sep}{label}"


def attach_machine_metrics(
    machine,
    registry: MetricsRegistry,
    sample_interval: int = 0,
) -> MetricsRegistry:
    """Register live-state gauges for ``machine`` and (if
    ``sample_interval`` > 0) start sampling them periodically.  Safe to
    call again for a fresh machine under the same registry: gauges are
    re-bound, the sampling schedule moves to the new simulator."""
    sim = machine.sim
    net = machine.net

    registry.gauge("engine.pending_events", lambda: sim.pending_events)
    registry.gauge(
        "engine.events_per_cycle",
        lambda: sim.events_processed / sim.now if sim.now else 0.0,
    )
    registry.gauge("net.hub_utilisation", net.hub_utilisation)
    registry.gauge("net.root_utilisation", net.root_utilisation)
    for group, label, server in net.fabric_servers():
        if group == "access":
            continue  # per-endpoint links: counters only (see harvest)
        name = _server_metric(group, label)
        registry.gauge(f"{name}.utilisation", server.utilisation)
        registry.gauge(f"{name}.queue_delay", server.queue_delay)
    registry.gauge(
        "lcu.entries_in_use", machine.total_lcu_entries_in_use
    )
    for j, lrt in enumerate(machine.lrts):
        registry.gauge(f"lrt.{j}.live_locks", lambda l=lrt: l.live_locks)
    for j, server in enumerate(machine.ssb.servers):
        registry.gauge(f"ssb.bank{j}.queue_delay", server.queue_delay)

    if sample_interval > 0:
        registry.start_sampling(sim, sample_interval)
    return registry


def harvest_machine_metrics(
    machine, registry: MetricsRegistry
) -> MetricsRegistry:
    """Pull all component counters of a finished run into ``registry``."""
    sim = machine.sim
    net = machine.net
    mem = machine.mem

    registry.counter("engine.events_processed").inc(sim.events_processed)
    registry.counter("engine.cycles").inc(sim.now)
    # event-queue internals (repro.obs.host / `repro bench` feed on
    # these to choose between heap, calendar-queue and slot-event
    # designs): heap churn, depth profile, Signal waiter churn.
    registry.counter("engine.heap_pushes").inc(sim.heap_pushes)
    registry.counter("engine.heap_pops").inc(sim.heap_pops)
    registry.counter("engine.signal_waits").inc(sim.signal_waits)
    registry.counter("engine.signal_cancels").inc(sim.signal_cancels)
    registry.counter("engine.signal_fires").inc(sim.signal_fires)
    registry.gauge("engine.queue_depth_peak").set(sim.queue_depth_peak)
    registry.gauge("engine.queue_depth_mean").set(sim.queue_depth_mean)

    registry.counter("net.messages_sent").inc(net.messages_sent)
    registry.counter("net.inter_chip_messages").inc(net.inter_chip_messages)
    registry.counter("net.reorders_healed").inc(net.reorders_healed)
    if net.reliable is not None:
        for stat, value in sorted(net.reliable.stats().items()):
            registry.counter(f"net.reliable.{stat}").inc(value)
    for group, label, server in net.fabric_servers():
        name = _server_metric(group, label)
        registry.counter(f"{name}.busy_cycles").inc(server.busy_cycles)
        registry.counter(f"{name}.requests").inc(server.requests)

    registry.counter("mem.l1_hits").inc(mem.l1_hits)
    registry.counter("mem.l1_misses").inc(mem.l1_misses)
    registry.counter("mem.invalidations").inc(mem.invalidations)
    registry.counter("mem.owner_forwards").inc(mem.owner_forwards)
    for j, server in enumerate(mem.dir_servers):
        registry.counter(f"mem.dir{j}.busy_cycles").inc(server.busy_cycles)
        registry.counter(f"mem.dir{j}.requests").inc(server.requests)

    for i, lcu in enumerate(machine.lcus):
        for stat, value in sorted(lcu.stats.items()):
            registry.counter(f"lcu.core{i}.{stat}").inc(value)
            registry.counter(f"lcu.total.{stat}").inc(value)
        registry.gauge(f"lcu.core{i}.entries_highwater").set(
            lcu.entries_highwater
        )

    for j, lrt in enumerate(machine.lrts):
        for stat, value in sorted(lrt.stats.items()):
            registry.counter(f"lrt.{j}.{stat}").inc(value)
            registry.counter(f"lrt.total.{stat}").inc(value)
        registry.gauge(f"lrt.{j}.live_locks_highwater").set(
            lrt.live_locks_highwater
        )
        if lrt.recovery_latencies:
            hist = registry.histogram(
                "lrt.recovery_latency", bucket_width=1000
            )
            for lat in lrt.recovery_latencies:
                hist.add(lat)

    for stat, value in sorted(machine.ssb.stats.items()):
        registry.counter(f"ssb.{stat}").inc(value)
    for j, server in enumerate(machine.ssb.servers):
        registry.counter(f"ssb.bank{j}.busy_cycles").inc(server.busy_cycles)
        registry.counter(f"ssb.bank{j}.requests").inc(server.requests)

    return registry


def harvest_stm_metrics(stm, registry: MetricsRegistry) -> MetricsRegistry:
    """Pull an :class:`~repro.stm.core.ObjectSTM`'s statistics — including
    the per-reason abort breakdown — into ``registry``."""
    s = stm.stats
    registry.counter("stm.commits").inc(s.commits)
    registry.counter("stm.aborts").inc(s.aborts)
    registry.counter("stm.reads").inc(s.reads)
    registry.counter("stm.writes").inc(s.writes)
    registry.counter("stm.app_cycles").inc(s.app_cycles)
    registry.counter("stm.commit_cycles").inc(s.commit_cycles)
    for reason, count in sorted(s.abort_reasons.items()):
        registry.counter(f"stm.abort.{_sanitize(reason)}").inc(count)
    return registry


def finish_run(
    machine,
    registry: Optional[MetricsRegistry],
    tracer=None,
    stm=None,
    profiler=None,
    host_profiler=None,
    fairness=None,
) -> None:
    """Common post-run teardown used by the harness entry points: stop
    gauge sampling, take a final sample, harvest counters, drop in-flight
    message spans, unwrap the fairness observatory's flight recorder and
    the tracer (in that order — the ring wraps ``net.send`` on top of
    the tracer, and unwrapping is LIFO), publish fairness counters into
    the registry and detach the contention/host profilers (the host
    profiler folds the engine's event-queue stats into itself on
    detach)."""
    if registry is not None:
        if registry.is_sampling:
            registry.sample(machine.sim.now)
        registry.stop_sampling()
        harvest_machine_metrics(machine, registry)
        if stm is not None:
            harvest_stm_metrics(stm, registry)
    if fairness is not None:
        fairness.detach()
        if registry is not None:
            fairness.publish(registry)
    if tracer is not None:
        tracer.abandon_open()
        tracer.detach()
    if profiler is not None:
        profiler.detach()
    if host_profiler is not None:
        host_profiler.detach()
