"""Structured span tracing with Chrome trace-event export.

A :class:`SpanTracer` records *intervals* — lock-held windows, message
flights, transaction attempts — on named tracks, complementing the
point-record :class:`repro.sim.trace.Tracer`.  Completed traces export
to the Chrome trace-event JSON format, so a run opens directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

    tracer = SpanTracer()
    tracer.attach(machine)            # message-flight spans + timebase
    ... run ...
    tracer.write_chrome_trace("t.json")

Spans are opened with :meth:`begin` (returns an id) and closed with
:meth:`end`; the id indirection works across generator-based thread
programs where ``with`` blocks cannot span ``yield`` points.  Open/close
mismatches raise :class:`SpanError`, and :meth:`check_closed` audits a
finished run.  Timestamps are simulator cycles (shown as microseconds by
trace viewers; the scale is faithful, the unit label is not).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

from repro.sim.trace import _ep


class SpanError(RuntimeError):
    """Span protocol misuse: unknown id, double close, leftover spans."""


@dataclasses.dataclass
class Span:
    """One closed (or still-open) interval on a track."""

    name: str
    cat: str
    track: Any
    start: int
    end: Optional[int] = None
    args: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> int:
        if self.end is None:
            raise SpanError(f"span {self.name!r} still open")
        return self.end - self.start


class SpanTracer:
    """Collects spans against a simulator clock; exports Chrome JSON."""

    def __init__(self, sim=None, capacity: int = 1_000_000) -> None:
        self._sim = sim
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        self._open: Dict[int, Span] = {}
        self._next_id = 1
        self._net = None
        self._wrapper = None
        self._original = None

    # ------------------------------------------------------------------ #
    # clock binding / network attachment

    def bind(self, sim) -> None:
        """Use ``sim`` as the timebase for ts-less begin/end calls."""
        self._sim = sim

    def _now(self, ts: Optional[int]) -> int:
        if ts is not None:
            return ts
        if self._sim is None:
            raise SpanError("SpanTracer has no simulator bound; pass ts=")
        return self._sim.now

    def attach(self, machine, message_spans: bool = True) -> "SpanTracer":
        """Bind to ``machine``'s clock and (optionally) wrap ``net.send``
        so every network message becomes a ``net`` -category span from
        injection to delivery.  Uses the same LIFO wrapper discipline as
        :class:`repro.sim.trace.Tracer`; call :meth:`detach` to unwind.
        Attaching to a second machine detaches from the first."""
        if self._net is not None:
            self.detach()
        self.bind(machine.sim)
        if not message_spans:
            return self
        net = machine.net
        original = net.send

        def traced_send(src, dst, payload, on_deliver=None):
            sid = self.begin(
                type(payload).__name__ if not isinstance(payload, tuple)
                else str(payload[0]),
                cat="net",
                track=f"net {_ep(src)}",
                dst=_ep(dst),
            )

            def close(prev=on_deliver):
                self.end(sid)
                if prev is not None:
                    prev()

            return original(src, dst, payload, close)

        net.send = traced_send
        self._net = net
        self._wrapper = traced_send
        self._original = original
        return self

    def detach(self) -> None:
        """Unwrap ``net.send``.  Idempotent; raises if detached out of
        LIFO order (another wrapper sits on top)."""
        if self._net is None:
            return
        if self._net.send is not self._wrapper:
            raise RuntimeError(
                "SpanTracer.detach out of order: another wrapper is "
                "attached on top; detach in LIFO order"
            )
        self._net.send = self._original
        self._net = self._wrapper = self._original = None

    # ------------------------------------------------------------------ #
    # span protocol

    def begin(
        self,
        name: str,
        cat: str = "",
        track: Any = 0,
        ts: Optional[int] = None,
        **args: Any,
    ) -> int:
        """Open a span; returns its id for :meth:`end`."""
        sid = self._next_id
        self._next_id += 1
        self._open[sid] = Span(name, cat, track, self._now(ts), args=args)
        return sid

    def end(self, sid: int, ts: Optional[int] = None, **args: Any) -> Span:
        """Close span ``sid``.  Raises :class:`SpanError` for unknown ids
        (including ids already closed)."""
        span = self._open.pop(sid, None)
        if span is None:
            raise SpanError(f"end of unknown or already-closed span id {sid}")
        span.end = self._now(ts)
        if args:
            span.args.update(args)
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def instant(
        self,
        name: str,
        cat: str = "",
        track: Any = 0,
        ts: Optional[int] = None,
        **args: Any,
    ) -> None:
        """Record a zero-duration marker."""
        t = self._now(ts)
        span = Span(name, cat, track, t, t, args)
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1

    @property
    def open_count(self) -> int:
        return len(self._open)

    def check_closed(self) -> None:
        """Raise :class:`SpanError` naming any spans left open — run this
        after a harness completes to catch instrumentation bugs."""
        if self._open:
            names = sorted({s.name for s in self._open.values()})
            raise SpanError(
                f"{len(self._open)} span(s) left open: {names[:10]}"
            )

    def abandon_open(self) -> int:
        """Drop any still-open spans (in-flight messages at the end of a
        bounded drain); returns how many were dropped."""
        n = len(self._open)
        self._open.clear()
        return n

    def flush_open(self, ts: Optional[int] = None, **args: Any) -> int:
        """Close every still-open span at ``ts`` (default: now), tagging
        it ``flushed=True``, and keep it in the trace.  Returns how many
        were flushed.

        This is the failure-path counterpart of :meth:`abandon_open`:
        when a run dies mid-flight — an invariant violation, a protocol
        error — the spans open at that instant are exactly the activity
        that was interrupted, so dropping them (the historical behaviour)
        discards the most diagnostic part of the trace.  The conformance
        subsystem calls this before letting an
        :class:`~repro.check.invariants.InvariantViolation` propagate."""
        t = self._now(ts)
        flushed = 0
        for sid in list(self._open):
            span = self._open.pop(sid)
            span.end = max(t, span.start)
            span.args.update(args)
            span.args["flushed"] = True
            if len(self.spans) < self.capacity:
                self.spans.append(span)
            else:
                self.dropped += 1
            flushed += 1
        return flushed

    # ------------------------------------------------------------------ #
    # export

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Render closed spans as a Chrome trace-event JSON object
        (Perfetto-loadable): one ``X`` (complete) event per span, plus
        ``M`` metadata naming the process and each track."""
        tracks: Dict[str, int] = {}
        events: List[Dict[str, Any]] = [
            {
                "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
                "args": {"name": "repro simulation"},
            }
        ]

        def tid_of(track: Any) -> int:
            key = str(track)
            tid = tracks.get(key)
            if tid is None:
                tid = tracks[key] = len(tracks) + 1
                events.append({
                    "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
                    "args": {"name": key},
                })
            return tid

        for s in self.spans:
            events.append({
                "ph": "X",
                "name": s.name,
                "cat": s.cat or "default",
                "pid": 0,
                "tid": tid_of(s.track),
                "ts": s.start,
                "dur": s.duration,
                "args": s.args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock_unit": "cycles", "dropped_spans": self.dropped},
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f, indent=1, sort_keys=True)
            f.write("\n")


def validate_chrome_trace(obj: Any) -> None:
    """Structural check of a Chrome trace-event JSON object; raises
    ``ValueError`` describing the first problem found."""
    if not isinstance(obj, dict):
        raise ValueError("trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace missing 'traceEvents' list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "I"):
            raise ValueError(f"traceEvents[{i}]: unsupported phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"traceEvents[{i}]: missing int {key!r}")
        if ph == "X":
            for key in ("name", "ts", "dur"):
                if key not in ev:
                    raise ValueError(f"traceEvents[{i}]: missing {key!r}")
            if ev["dur"] < 0:
                raise ValueError(f"traceEvents[{i}]: negative duration")
