"""repro.obs — unified telemetry: metrics, spans, machine-readable reports.

The observability layer of the reproduction (see README "Observability"):

* :mod:`repro.obs.registry` — :class:`MetricsRegistry`: hierarchical
  counters / gauges / histograms with deterministic time-series gauge
  sampling driven by simulator events.
* :mod:`repro.obs.spans` — :class:`SpanTracer`: interval tracing
  (lock-held windows, message flights, transactions) exported as Chrome
  trace-event JSON, loadable in Perfetto.
* :mod:`repro.obs.report` — the versioned ``RunReport`` JSON schema the
  harness emits (``--metrics-out``) and the CLI validates
  (``python -m repro report``).
* :mod:`repro.obs.instrument` — attaches gauges to a live machine and
  harvests every component's counters after a run; all instrumentation
  is pull-based, so uninstrumented runs pay nothing.
* :mod:`repro.obs.profile` — :class:`ContentionProfiler`: per-lock
  acquire-latency decomposition (enqueue → queue-wait → transfer →
  handoff → critical-section), queue-depth timelines, critical-path
  extraction, folded-stack / Chrome-trace export
  (``python -m repro profile``).
* :mod:`repro.obs.diff` — structural RunReport diffing with relative-
  threshold regression verdicts (``python -m repro diff``).
* :mod:`repro.obs.host` — :class:`HostProfiler`: host-time attribution
  for the simulator itself (which subsystem burns host nanoseconds),
  engine event-queue telemetry, environment fingerprints and the
  ``repro.bench-trajectory`` schema behind ``python -m repro bench``.
* :mod:`repro.obs.fairness` — :class:`FairnessObservatory`: passive
  fairness/starvation observatory — arrival-vs-grant overtake ledger,
  per-thread wait histograms, sliding-window Jain/writer-share series,
  starvation watchdog with a flight-recorder ring, per-lock SLO
  tracking; the ``fairness`` section of RunReport v4 and
  ``python -m repro fairness``.
"""

from repro.obs.diff import RunReportDiff, diff_run_reports
from repro.obs.fairness import (
    FairnessError,
    FairnessObservatory,
    OvertakeLedger,
    StarvationAlert,
    summarize_fairness,
    validate_fairness,
)
from repro.obs.host import (
    HostProfileError,
    HostProfiler,
    append_record,
    env_fingerprint,
    load_trajectory,
    validate_host_section,
    validate_trajectory,
)
from repro.obs.instrument import (
    attach_machine_metrics,
    finish_run,
    harvest_machine_metrics,
    harvest_stm_metrics,
)
from repro.obs.profile import (
    ContentionProfiler,
    ProfileError,
    validate_profile,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    HostTimer,
    MetricError,
    MetricsRegistry,
)
from repro.obs.report import (
    RUN_REPORT_KINDS,
    RUN_REPORT_SCHEMA,
    RUN_REPORT_VERSION,
    ReportValidationError,
    build_run_report,
    load_run_report,
    summarize_run_report,
    validate_run_report,
    write_run_report,
)
from repro.obs.spans import Span, SpanError, SpanTracer, validate_chrome_trace

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "HostTimer", "MetricError",
    "SpanTracer", "Span", "SpanError", "validate_chrome_trace",
    "build_run_report", "validate_run_report", "write_run_report",
    "load_run_report", "summarize_run_report", "ReportValidationError",
    "RUN_REPORT_SCHEMA", "RUN_REPORT_VERSION", "RUN_REPORT_KINDS",
    "attach_machine_metrics", "harvest_machine_metrics",
    "harvest_stm_metrics", "finish_run",
    "ContentionProfiler", "ProfileError", "validate_profile",
    "RunReportDiff", "diff_run_reports",
    "HostProfiler", "HostProfileError", "validate_host_section",
    "env_fingerprint", "load_trajectory", "append_record",
    "validate_trajectory",
    "FairnessObservatory", "OvertakeLedger", "StarvationAlert",
    "FairnessError", "validate_fairness", "summarize_fairness",
]
