"""Machine-readable run reports (the ``RunReport`` JSON schema).

Every harness entry point (``microbench``, ``stm``, ``app``, ``figure``,
``sweep``) can emit one RunReport: a single JSON object capturing what ran (kind +
config), what came out (results: the harness result dataclass, plus
fairness indices and latency percentiles where applicable), and what the
telemetry layer measured (the :class:`~repro.obs.registry.MetricsRegistry`
dump).  The schema is versioned so downstream tooling — including the
repo's own ``BENCH_telemetry.json`` perf-trajectory baseline — can evolve
without guessing.

Top-level shape (version 4)::

    {
      "schema": "repro.run-report",
      "version": 4,
      "kind": "microbench" | "stm" | "app" | "figure" | "sweep"
              | "fairness",
      "config": {...},          # machine model + harness parameters
      "results": {...},         # harness result fields, JSON-safe
      "metrics": {              # MetricsRegistry.to_dict() (may be empty)
        "counters": {name: number},
        "gauges": {name: number},
        "histograms": {name: {count, mean, min, max, bucket_width,
                              percentiles: {pN: number}}},
        "series": {name: [[t, value], ...]}
      },
      "profile": {...},         # optional: ContentionProfiler.to_dict()
      "host": {...},            # optional: HostProfiler.to_dict()
                                # (--host-prof host-time attribution)
      "fairness": {...}         # optional: FairnessObservatory.to_dict()
                                # (--fairness wait/overtake/SLO ledger)
    }

Version 1 (no ``profile`` section), version 2 (no ``host`` section) and
version 3 (no ``fairness`` section) are still accepted everywhere —
older BENCH baselines stay valid and diffable.  Reports are always
*written* at version 4.

``validate_run_report`` is the single source of truth for the schema;
the CLI (``python -m repro report``), the smoke tests and the golden
tests all go through it.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

RUN_REPORT_SCHEMA = "repro.run-report"
RUN_REPORT_VERSION = 4
RUN_REPORT_SUPPORTED_VERSIONS = (1, 2, 3, 4)
RUN_REPORT_KINDS = ("microbench", "stm", "app", "figure", "sweep",
                    "fairness")

_NUMBER = (int, float)


class ReportValidationError(ValueError):
    """A RunReport object does not conform to the schema."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = errors


def _jsonify(value: Any) -> Any:
    """Best-effort conversion of harness values to JSON-safe data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, float):
        # JSON has no inf/nan; figures use them for "not run".
        if value != value:
            return None
        if value in (float("inf"), float("-inf")):
            return None
        return value
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    return str(value)


def build_run_report(
    kind: str,
    config: Any,
    results: Any,
    metrics: Optional[Dict[str, Any]] = None,
    profile: Optional[Dict[str, Any]] = None,
    host: Optional[Dict[str, Any]] = None,
    fairness: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble (and validate) a RunReport dict.

    ``config`` and ``results`` may be dataclasses or dicts; values are
    coerced to JSON-safe types.  ``metrics`` is a
    ``MetricsRegistry.to_dict()`` dump (empty sections if omitted);
    ``profile`` is a ``ContentionProfiler.to_dict()`` section, ``host``
    a ``HostProfiler.to_dict()`` section and ``fairness`` a
    ``FairnessObservatory.to_dict()`` section (each omitted from the
    report when None).
    """
    report = {
        "schema": RUN_REPORT_SCHEMA,
        "version": RUN_REPORT_VERSION,
        "kind": kind,
        "config": _jsonify(config) or {},
        "results": _jsonify(results) or {},
        "metrics": metrics if metrics is not None else {
            "counters": {}, "gauges": {}, "histograms": {}, "series": {},
        },
    }
    if profile is not None:
        report["profile"] = profile
    if host is not None:
        report["host"] = host
    if fairness is not None:
        report["fairness"] = fairness
    validate_run_report(report)
    return report


def validate_run_report(report: Any) -> None:
    """Raise :class:`ReportValidationError` if ``report`` is not a valid
    RunReport of any supported schema version."""
    errors: List[str] = []

    def err(msg: str) -> None:
        errors.append(msg)

    if not isinstance(report, dict):
        raise ReportValidationError(["report must be a JSON object"])
    if report.get("schema") != RUN_REPORT_SCHEMA:
        err(f"schema must be {RUN_REPORT_SCHEMA!r}")
    version = report.get("version")
    if version not in RUN_REPORT_SUPPORTED_VERSIONS:
        err(f"version must be one of {RUN_REPORT_SUPPORTED_VERSIONS}")
    if report.get("kind") not in RUN_REPORT_KINDS:
        err(f"kind must be one of {RUN_REPORT_KINDS}")
    for section in ("config", "results"):
        if not isinstance(report.get(section), dict):
            err(f"{section!r} must be an object")

    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        err("'metrics' must be an object")
    else:
        for section in ("counters", "gauges"):
            table = metrics.get(section)
            if not isinstance(table, dict):
                err(f"metrics.{section} must be an object")
                continue
            for name, v in table.items():
                if not isinstance(v, _NUMBER) or isinstance(v, bool):
                    err(f"metrics.{section}[{name!r}] must be a number")
        hists = metrics.get("histograms")
        if not isinstance(hists, dict):
            err("metrics.histograms must be an object")
        else:
            for name, h in hists.items():
                if not isinstance(h, dict):
                    err(f"metrics.histograms[{name!r}] must be an object")
                    continue
                for key in ("count", "mean", "min", "max", "bucket_width",
                            "percentiles"):
                    if key not in h:
                        err(f"metrics.histograms[{name!r}] missing {key!r}")
                pct = h.get("percentiles")
                if pct is not None and not isinstance(pct, dict):
                    err(f"metrics.histograms[{name!r}].percentiles must be "
                        f"an object")
        series = metrics.get("series")
        if not isinstance(series, dict):
            err("metrics.series must be an object")
        else:
            for name, pts in series.items():
                if not isinstance(pts, list):
                    err(f"metrics.series[{name!r}] must be a list")
                    continue
                for p in pts:
                    if (not isinstance(p, list) or len(p) != 2
                            or not all(isinstance(x, _NUMBER) for x in p)):
                        err(f"metrics.series[{name!r}] entries must be "
                            f"[time, value] pairs")
                        break

    profile = report.get("profile")
    if profile is not None:
        if version == 1:
            err("'profile' section requires version 2")
        else:
            from repro.obs.profile import ProfileError, validate_profile
            try:
                validate_profile(profile)
            except ProfileError as e:
                err(f"profile: {e}")

    host = report.get("host")
    if host is not None:
        if version in (1, 2):
            err("'host' section requires version 3")
        else:
            from repro.obs.host import HostProfileError, validate_host_section
            try:
                validate_host_section(host)
            except HostProfileError as e:
                err(f"host: {e}")

    fairness = report.get("fairness")
    if fairness is not None:
        if version in (1, 2, 3):
            err("'fairness' section requires version 4")
        else:
            from repro.obs.fairness import FairnessError, validate_fairness
            try:
                validate_fairness(fairness)
            except FairnessError as e:
                err(f"fairness: {e}")

    if errors:
        raise ReportValidationError(errors)


def write_run_report(path: str, report: Dict[str, Any]) -> None:
    """Validate ``report`` and write it as stable (sorted-key) JSON."""
    validate_run_report(report)
    with open(path, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")


def load_run_report(path: str) -> Dict[str, Any]:
    """Read and validate a RunReport from ``path``."""
    with open(path) as f:
        report = json.load(f)
    validate_run_report(report)
    return report


def summarize_run_report(report: Dict[str, Any], top: int = 12) -> str:
    """Human-readable digest of a RunReport (the ``repro report`` verb)."""
    lines = [
        f"RunReport kind={report['kind']} "
        f"(schema {report['schema']} v{report['version']})",
    ]
    config = report["config"]
    interesting = [
        k for k in ("model", "name", "lock", "variant", "structure",
                    "threads", "write_pct", "app", "figure", "seed")
        if k in config
    ]
    if interesting:
        lines.append("config: " + ", ".join(
            f"{k}={config[k]}" for k in interesting
        ))
    results = report["results"]
    scalar = {
        k: v for k, v in sorted(results.items())
        if isinstance(v, _NUMBER) and not isinstance(v, bool)
    }
    for k, v in scalar.items():
        lines.append(f"  {k} = {v:g}" if isinstance(v, float)
                     else f"  {k} = {v}")
    metrics = report["metrics"]
    counters = sorted(
        metrics["counters"].items(), key=lambda kv: -abs(kv[1])
    )
    if counters:
        lines.append(f"top counters ({min(top, len(counters))} of "
                     f"{len(counters)}):")
        for name, v in counters[:top]:
            lines.append(f"  {name} = {v:g}")
    nhist = len(metrics["histograms"])
    nseries = len(metrics["series"])
    if nhist or nseries:
        lines.append(f"histograms: {nhist}, time series: {nseries}")
    profile = report.get("profile")
    if profile:
        locks = profile.get("locks", {})
        total = sum(d.get("acquisitions", 0) for d in locks.values())
        lines.append(
            f"profile: {len(locks)} lock(s), {total} acquisitions "
            f"(see `repro profile` for the decomposition)"
        )
    host = report.get("host")
    if host:
        subs = host.get("subsystems") or {}
        hot = sorted(subs.items(), key=lambda kv: -kv[1])[:3]
        where = ", ".join(
            f"{name} {100.0 * ns / host['total_ns']:.0f}%"
            for name, ns in hot if host.get("total_ns")
        )
        lines.append(
            f"host: {host.get('total_ns', 0) / 1e6:.1f} ms attributed"
            + (f" ({where})" if where else "")
        )
    fairness = report.get("fairness")
    if fairness:
        locks = fairness.get("locks", {})
        overtakes = sum(
            d.get("overtakes", {}).get("total", 0) for d in locks.values()
        )
        alerts = sum(
            d.get("starvation", {}).get("alerts", 0) for d in locks.values()
        )
        lines.append(
            f"fairness: {len(locks)} lock(s), {overtakes} overtakes, "
            f"{alerts} starvation alert(s) "
            f"(see `repro fairness` for the scorecard)"
        )
    return "\n".join(lines)
