"""Metrics registry: named counters, gauges and histograms.

The registry is the collection point of the telemetry subsystem
(`repro.obs`).  Metric names are hierarchical dotted paths
(``lcu.core3.acquires``, ``net.hub_out1.busy_cycles``) so reports group
naturally by subsystem.  Three metric kinds:

* :class:`Counter` — a monotonically increasing integer/float.  The
  instrumentation layer (:mod:`repro.obs.instrument`) *pulls* most
  counters out of the components' existing ad-hoc stats at harvest time,
  so an un-instrumented run pays nothing.
* :class:`Gauge` — a point-in-time value, either set explicitly or read
  through a callback.  Gauges can be *sampled* periodically on the
  simulator clock, producing deterministic time series (same seed, same
  series).
* Histograms reuse :class:`repro.sim.stats.Histogram`, so harness
  latency distributions merge across seeds and export percentile
  summaries.

Zero-cost contract: nothing in the simulator references a registry
unless one is explicitly attached; sampling schedules simulator events
only while :meth:`MetricsRegistry.start_sampling` is active.
"""

from __future__ import annotations

import re
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.stats import Histogram

_NAME_RE = re.compile(r"^[A-Za-z0-9_]+([.\-][A-Za-z0-9_\-]+)*$")


class MetricError(ValueError):
    """Illegal metric registration (bad name, kind collision, ...)."""


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise MetricError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


#: legal cross-shard gauge merge policies (see ``Gauge.merge``)
GAUGE_MERGE_POLICIES = ("last", "max", "min", "sum", "skip")


class Gauge:
    """Point-in-time value, explicit (:meth:`set`) or callback-backed.

    ``merge`` declares how the sweep runner combines this gauge across
    shard registries (:meth:`MetricsRegistry.merge_state`):

    * ``"last"`` (default) — last writer wins, in spec order: the merged
      value is the final shard's reading, exactly what a serial run
      would have left behind.
    * ``"max"`` / ``"min"`` — watermark gauges (peak queue depth,
      worst-case overtake count) keep the extreme across shards.
    * ``"sum"`` — additive point-in-time values.
    * ``"skip"`` — excluded from :meth:`MetricsRegistry.to_state`
      entirely, for gauges that are only meaningful live (callback
      reads of a machine that no longer exists).
    """

    __slots__ = ("name", "fn", "_value", "merge")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None,
                 merge: str = "last") -> None:
        if merge not in GAUGE_MERGE_POLICIES:
            raise MetricError(
                f"gauge {name}: unknown merge policy {merge!r}; "
                f"expected one of {GAUGE_MERGE_POLICIES}"
            )
        self.name = name
        self.fn = fn
        self.merge = merge
        self._value: float = 0.0

    def set(self, value: float) -> None:
        self.fn = None
        self._value = value

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name})"


class HostTimer:
    """Monotonic host-clock counter: accumulates ``perf_counter_ns``
    deltas straight into one :class:`Counter`'s value (nanoseconds).

    Built for the host-performance observatory (:mod:`repro.obs.host`):
    each :meth:`stop` is two clock reads and one float add on a counter
    the caller already holds — no registry lookup, no per-sample tuple
    or dict-entry allocation, unlike sampled gauge series.  The counter
    exports through the ordinary ``MetricsRegistry.to_dict()`` counters
    table, so host timings ride the existing RunReport/diff pipeline,
    and the PR 3 sampling lifecycle is untouched (a timer is never
    scheduled on the simulator).  Usable as a context manager and
    re-entrant-safe in the simple nested sense (inner spans re-start).
    """

    __slots__ = ("counter", "_t0")

    #: overridable in tests for deterministic timing
    clock: Callable[[], int] = staticmethod(time.perf_counter_ns)

    def __init__(self, counter: Counter) -> None:
        self.counter = counter
        self._t0: Optional[int] = None

    def start(self) -> "HostTimer":
        self._t0 = self.clock()
        return self

    def stop(self) -> int:
        """Accumulate and return the nanoseconds since :meth:`start`
        (0 if never started — stopping an idle timer is harmless)."""
        if self._t0 is None:
            return 0
        elapsed = self.clock() - self._t0
        self._t0 = None
        if elapsed > 0:
            self.counter.value += elapsed
            return elapsed
        return 0

    def __enter__(self) -> "HostTimer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class MetricsRegistry:
    """Hierarchically named counters/gauges/histograms + gauge sampling."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: gauge name -> list of (sim time, value) samples
        self.series: Dict[str, List[Tuple[int, float]]] = {}
        self._sample_gen = 0          # invalidates in-flight sample events
        self._sampling = False

    # ------------------------------------------------------------------ #
    # registration

    def _check_name(self, name: str, kind: str) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        others = {
            "counter": (self._gauges, self._histograms),
            "gauge": (self._counters, self._histograms),
            "histogram": (self._counters, self._gauges),
        }[kind]
        for table in others:
            if name in table:
                raise MetricError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        c = self._counters.get(name)
        if c is None:
            self._check_name(name, "counter")
            c = self._counters[name] = Counter(name)
        return c

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None,
        merge: Optional[str] = None,
    ) -> Gauge:
        """Get or create the gauge ``name``.  Passing ``fn`` (re)binds the
        callback — instrumentation re-binds gauges when a harness runs
        several machines under one registry.  Passing ``merge`` (re)binds
        the cross-shard merge policy (see :class:`Gauge`); omitted, an
        existing gauge keeps its policy and a new one defaults to
        ``"last"``."""
        g = self._gauges.get(name)
        if g is None:
            self._check_name(name, "gauge")
            g = self._gauges[name] = Gauge(
                name, fn, merge=merge if merge is not None else "last"
            )
            return g
        if fn is not None:
            g.fn = fn
        if merge is not None:
            if merge not in GAUGE_MERGE_POLICIES:
                raise MetricError(
                    f"gauge {name}: unknown merge policy {merge!r}; "
                    f"expected one of {GAUGE_MERGE_POLICIES}"
                )
            g.merge = merge
        return g

    def histogram(self, name: str, bucket_width: int = 100) -> Histogram:
        """Get or create the histogram ``name``.  A second registration
        must use the same bucket width (buckets could not merge)."""
        h = self._histograms.get(name)
        if h is None:
            self._check_name(name, "histogram")
            h = self._histograms[name] = Histogram(bucket_width=bucket_width)
        elif h.bucket_width != bucket_width:
            raise MetricError(
                f"histogram {name!r} registered with bucket_width="
                f"{h.bucket_width}, requested {bucket_width}"
            )
        return h

    def timer(self, name: str) -> HostTimer:
        """A :class:`HostTimer` charging host nanoseconds into the
        counter ``name`` (conventionally ``*.host_ns``).  Each call
        returns a fresh timer over the same underlying counter, so
        concurrent scopes (e.g. per-repeat bench timers) don't clobber
        each other's start marks."""
        return HostTimer(self.counter(name))

    @property
    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    # ------------------------------------------------------------------ #
    # sampling

    def sample(self, now: int) -> None:
        """Record one (now, value) point for every registered gauge."""
        for name in sorted(self._gauges):
            self.series.setdefault(name, []).append(
                (now, self._gauges[name].read())
            )

    def start_sampling(self, sim, interval: int) -> None:
        """Sample all gauges every ``interval`` cycles of ``sim``.  The
        schedule lives on the simulator's event queue; call
        :meth:`stop_sampling` (or attach to a fresh simulator) to stop.
        The first sample fires ``interval`` cycles from now."""
        if interval <= 0:
            raise MetricError(f"sample interval must be positive: {interval}")
        self._sample_gen += 1
        self._sampling = True
        gen = self._sample_gen

        def tick() -> None:
            if not self._sampling or self._sample_gen != gen:
                return
            self.sample(sim.now)
            sim.after(interval, tick)

        sim.after(interval, tick)

    def stop_sampling(self) -> None:
        """Stop periodic sampling.  Idempotent: safe before any
        :meth:`start_sampling` and safe to call repeatedly.  Any
        in-flight tick becomes inert (generation bump), so stopping
        mid-run leaves no live events behind."""
        self._sampling = False
        self._sample_gen += 1

    @property
    def is_sampling(self) -> bool:
        """Whether a periodic sampling schedule is currently active."""
        return self._sampling

    # ------------------------------------------------------------------ #
    # export

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump: the ``metrics`` section of a RunReport."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.read() for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
            "series": {
                name: [[t, v] for t, v in pts]
                for name, pts in sorted(self.series.items())
            },
        }

    # ------------------------------------------------------------------ #
    # cross-process state transfer (the sweep runner's merge path)

    def to_state(self) -> Dict[str, Any]:
        """Exact, mergeable registry state (full float precision).

        Unlike :meth:`to_dict` — which emits lossy histogram *summaries*
        for reports — this dump carries raw buckets and accumulator
        moments, so a parent process can fold many shard registries
        together with :meth:`merge_state` and only then summarize.
        Gauges travel as ``{value, merge}`` pairs, merged under their
        declared policy (last-writer-wins in spec order by default,
        ``max``/``min``/``sum`` for watermarks and additive values);
        a gauge registered with ``merge="skip"`` is excluded.  Series
        (already (time, value) logs) transfer verbatim.
        """
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.read(), "merge": g.merge}
                for name, g in sorted(self._gauges.items())
                if g.merge != "skip"
            },
            "histograms": {
                name: h.to_dict()
                for name, h in sorted(self._histograms.items())
            },
            "series": {
                name: [[t, v] for t, v in pts]
                for name, pts in sorted(self.series.items())
            },
        }

    def merge_state(self, state: Dict[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`to_state` dump into this registry: counters add,
        gauges combine under their declared merge policy, histograms
        merge bucket-exactly (same-width check included), series
        concatenate in call order.  Deterministic: merging shard states
        in a fixed order always yields the same registry, which is what
        makes the parallel sweep byte-identical to the serial one.
        States dumped before gauges carried merge policies (no
        ``gauges`` table) still merge fine.  Returns ``self``."""
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, spec in state.get("gauges", {}).items():
            value = spec["value"]
            policy = spec.get("merge", "last")
            fresh = name not in self._gauges
            g = self.gauge(name, merge=policy)
            if policy == "skip":
                continue
            if fresh or policy == "last":
                g.set(value)
            elif policy == "max":
                g.set(max(g.read(), value))
            elif policy == "min":
                g.set(min(g.read(), value))
            elif policy == "sum":
                g.set(g.read() + value)
        for name, h in state.get("histograms", {}).items():
            self.histogram(
                name, bucket_width=h["bucket_width"]
            ).merge(Histogram.from_dict(h))
        for name, pts in state.get("series", {}).items():
            self.series.setdefault(name, []).extend(
                (t, v) for t, v in pts
            )
        return self
