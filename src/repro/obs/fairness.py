"""Fairness & starvation observatory (``repro.obs.fairness``).

The paper's headline claim is *fairness*, so the repo needs more than
end-of-run aggregates: this module turns every lock acquisition into a
ledger entry and answers the time-resolved questions — who waited, who
was overtaken (and by whom), when did a waiter cross into starvation,
and how long was a latency SLO violated.

Three layers, all passive:

* :class:`OvertakeLedger` — the single source of truth for "what counts
  as an overtake": arrival order (request seq) vs grant order, with
  exact (victim, overtaker) attribution, per-mode-pair totals, and the
  reader-batch exemption (a reader joining an in-progress read batch may
  legally pass waiting writers on reader-preference hardware; the
  exemption is *recorded*, not hidden).  The conformance oracle
  (:class:`repro.check.oracle.RWLockOracle`) delegates its bounded-
  overtake accounting to this class, so the checker and the observatory
  can never disagree about what an overtake is.
* :class:`FairnessObservatory` — attaches to the observer events of any
  :class:`~repro.locks.base.LockAlgorithm` (the same surface the
  conformance monitor uses) plus the machine's probe surfaces: a bounded
  :class:`~repro.sim.trace.Tracer` ring over the network (the *flight
  recorder* snapshotted into every :class:`StarvationAlert`) and the
  SSB's ``probe`` attr (retry-storm attribution).  It maintains per-lock
  per-mode wait histograms (p50/p99/p999), a sliding completion window
  feeding live Jain-index / writer-share gauges, a longest-outstanding-
  waiter starvation watchdog, and per-lock SLO time-in-violation.
* the export surface — :meth:`FairnessObservatory.to_dict` produces the
  versioned ``fairness`` section of RunReport v4 (validated by
  :func:`validate_fairness`); :meth:`publish` folds counters, wait
  histograms and watermark gauges (``merge="max"``) into a
  :class:`~repro.obs.registry.MetricsRegistry`, which is what makes
  fairness data survive the multiprocess ``repro sweep`` merge.

Zero-cost contract: everything here runs on the *host* side of probe and
observer callbacks.  Nothing schedules simulator events, so attaching an
observatory leaves simulated cycle counts bit-identical (pinned by the
overhead-guard test and by ``repro fairness``'s own first-cell check).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.stats import Histogram, jain_fairness
from repro.sim.trace import Tracer

FAIRNESS_SCHEMA = "repro.fairness"
FAIRNESS_VERSION = 1

#: bucket width (cycles) of the per-mode wait histograms — finer than the
#: harness acquire-latency histogram because tail attribution is the point
WAIT_BUCKET = 64

#: mode-pair keys of :attr:`OvertakeLedger.by_mode` ("<victim>_by_<grantee>")
MODE_PAIRS = (
    "reader_by_reader", "reader_by_writer",
    "writer_by_reader", "writer_by_writer",
)


class FairnessError(ValueError):
    """A fairness section does not conform to the schema."""


def _mode(write: bool) -> str:
    return "writer" if write else "reader"


# --------------------------------------------------------------------- #
# the ledger


class OvertakeLedger:
    """Arrival-order vs grant-order accounting for one lock.

    The rule (shared with the check oracle): when a grant goes to the
    requester with arrival sequence ``seq``, every *still-waiting*
    requester with an earlier sequence has been overtaken once more —
    unless it is ``excused`` (frozen by an injected fault; it could not
    have consumed the grant) or covered by the reader-batch exemption.

    Reader-batch exemption (``reader_batch_exempt=True``): a reader
    granted while readers already hold the lock is joining an
    in-progress read batch; passing waiting *writers* is the designed
    behaviour of reader-preference hardware (SSB, LRT overflow
    read-sharing), not a fairness bug.  Exempted passes are counted in
    :attr:`exempted` — visible, but they don't advance any victim's
    overtake count.  The oracle runs with the exemption off, keeping its
    historical (deliberately loose) budget byte-identical.
    """

    __slots__ = ("reader_batch_exempt", "counts", "pairs", "by_mode",
                 "total", "exempted", "max_overtake", "per_victim_max")

    def __init__(self, reader_batch_exempt: bool = False) -> None:
        self.reader_batch_exempt = reader_batch_exempt
        #: tid -> overtakes suffered since its current request (reset on
        #: grant/abandon, mirroring the oracle's ``overtaken`` dict)
        self.counts: Dict[int, int] = {}
        #: (victim tid, overtaker tid) -> total overtakes, run-lifetime
        self.pairs: Dict[Tuple[int, int], int] = {}
        self.by_mode: Dict[str, int] = {k: 0 for k in MODE_PAIRS}
        self.total = 0
        self.exempted = 0
        #: worst per-request overtake count seen on any waiter
        self.max_overtake = 0
        #: tid -> worst per-request overtake count it ever suffered
        self.per_victim_max: Dict[int, int] = {}

    def note_request(self, tid: int) -> None:
        """A new request entered the queue: open its overtake count."""
        self.counts.setdefault(tid, 0)

    def clear(self, tid: int) -> None:
        """The waiter was granted, abandoned, or died: close its count."""
        self.counts.pop(tid, None)

    def note_grant(
        self,
        tid: int,
        seq: int,
        write: bool,
        waiting: Iterable[Tuple[int, int, bool]],
        excused: Optional[set] = None,
        read_held: bool = False,
    ) -> List[Tuple[int, int]]:
        """Record a grant to ``tid`` (arrival ``seq``, mode ``write``)
        over the still-``waiting`` ``(tid, seq, write)`` entries.

        Returns the ``(victim, new_count)`` increments actually charged,
        in waiting order — the oracle applies its overtake bound to
        exactly this list.
        """
        increments: List[Tuple[int, int]] = []
        gmode = _mode(write)
        for other, oseq, owrite in waiting:
            if oseq >= seq:
                continue
            if excused is not None and other in excused:
                continue
            if (self.reader_batch_exempt and not write and read_held
                    and owrite):
                # reader joining an active read batch past a waiting
                # writer: legal on reader-preference designs — recorded,
                # not charged
                self.exempted += 1
                continue
            count = self.counts.get(other, 0) + 1
            self.counts[other] = count
            if count > self.max_overtake:
                self.max_overtake = count
            if count > self.per_victim_max.get(other, 0):
                self.per_victim_max[other] = count
            pair = (other, tid)
            self.pairs[pair] = self.pairs.get(pair, 0) + 1
            self.by_mode[f"{_mode(owrite)}_by_{gmode}"] += 1
            self.total += 1
            increments.append((other, count))
        return increments

    def top_pairs(self, n: int = 8) -> List[Tuple[int, int, int]]:
        """The ``n`` worst (victim, overtaker, count) attributions."""
        ranked = sorted(
            self.pairs.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [(v, o, c) for (v, o), c in ranked[:n]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "max": self.max_overtake,
            "exempted": self.exempted,
            "by_mode": dict(self.by_mode),
            "top_pairs": [list(t) for t in self.top_pairs()],
        }


# --------------------------------------------------------------------- #
# starvation alerts


@dataclasses.dataclass
class StarvationAlert:
    """A waiter crossed the starvation bound while still waiting."""

    lock: str           # observatory lock label
    tid: int
    write: bool
    waited: int         # cycles outstanding when the watchdog fired
    t: int              # simulated time of detection
    bound: int          # the configured starvation bound
    events: List[str]   # flight-recorder ring snapshot (rendered records)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"StarvationAlert: {_mode(self.write)} tid {self.tid} on "
            f"{self.lock} waited {self.waited} cycles (bound {self.bound}) "
            f"at t={self.t}"
        )


# --------------------------------------------------------------------- #
# per-lock state


class _Waiter:
    __slots__ = ("seq", "write", "t_req", "alerted")

    def __init__(self, seq: int, write: bool, t_req: int) -> None:
        self.seq = seq
        self.write = write
        self.t_req = t_req
        self.alerted = False


class _LockState:
    __slots__ = (
        "label", "ledger", "seq", "waiting", "holders", "wait_hist",
        "per_thread", "grants", "abandons", "longest_wait",
        "slo_violations", "slo_excess", "slo_intervals", "slo_checked",
        "alerts_total", "ssb_failed_acquires",
    )

    def __init__(self, label: str, reader_batch_exempt: bool) -> None:
        self.label = label
        self.ledger = OvertakeLedger(reader_batch_exempt=reader_batch_exempt)
        self.seq = 0
        self.waiting: Dict[int, _Waiter] = {}
        self.holders: Dict[int, bool] = {}
        self.wait_hist = {
            "read": Histogram(bucket_width=WAIT_BUCKET),
            "write": Histogram(bucket_width=WAIT_BUCKET),
        }
        #: tid -> [grants, wait_total, wait_max]
        self.per_thread: Dict[int, List[int]] = {}
        self.grants = {"read": 0, "write": 0}
        self.abandons = 0
        self.longest_wait = 0
        self.slo_violations = 0
        self.slo_excess = 0
        #: (start, end) intervals during which an eventual grant was past
        #: its SLO deadline; unioned at export for time-in-violation
        self.slo_intervals: List[Tuple[int, int]] = []
        self.slo_checked = 0
        self.alerts_total = 0
        self.ssb_failed_acquires = 0


def _union_cycles(intervals: List[Tuple[int, int]]) -> int:
    """Total length of the union of (start, end) intervals."""
    total = 0
    end = None
    for s, e in sorted(intervals):
        if end is None or s > end:
            total += e - s
            end = e
        elif e > end:
            total += e - end
            end = e
    return total


# --------------------------------------------------------------------- #
# the observatory


class FairnessObservatory:
    """Passive fairness instrumentation for any set of observed locks.

    Parameters
    ----------
    slo:
        per-acquisition latency target in cycles (None: no SLO tracking).
        A grant whose wait exceeded the target counts one violation, adds
        the overshoot to ``slo.excess_cycles``, and contributes the
        ``[deadline, grant]`` interval to ``slo.time_in_violation``.
    starvation_bound:
        cycles a waiter may be outstanding before the watchdog raises a
        :class:`StarvationAlert` (one per request, at the crossing).
    window:
        sliding completion-window length (cycles) behind the live
        ``fairness.window.jain`` / ``fairness.window.writer_share``
        gauges (sampled into registry time series like any gauge).
    ring_capacity:
        flight-recorder depth: the newest N network records kept for
        alert diagnosis (bounded deque; old records fall off).
    max_alert_details:
        alerts carried in full (with ring snapshot) per lock; further
        alerts only bump the counter.
    """

    def __init__(
        self,
        slo: Optional[int] = None,
        starvation_bound: int = 100_000,
        window: int = 50_000,
        ring_capacity: int = 64,
        max_alert_details: int = 16,
        reader_batch_exempt: bool = True,
    ) -> None:
        if slo is not None and slo <= 0:
            raise FairnessError(f"slo must be positive, got {slo}")
        if starvation_bound <= 0:
            raise FairnessError(
                f"starvation_bound must be positive, got {starvation_bound}"
            )
        self.slo = slo
        self.starvation_bound = starvation_bound
        self.window = window
        self.ring_capacity = ring_capacity
        self.max_alert_details = max_alert_details
        self.reader_batch_exempt = reader_batch_exempt
        self.alerts: List[StarvationAlert] = []
        self._locks: Dict[Any, _LockState] = {}
        self._algos: List[Tuple[Any, Any]] = []   # (algo, observer fn)
        self._ring: Optional[Tracer] = None
        self._machine = None
        self._ssb = None
        self._ssb_prev_probe = None
        #: (sim time, tid, write) completions inside the sliding window
        self._window_events: deque = deque()

    # -- attachment ----------------------------------------------------- #

    def attach_machine(self, machine) -> "FairnessObservatory":
        """Install the flight-recorder ring (a bounded network tracer)
        and the SSB probe.  Deliberately does *not* claim the LCU/LRT
        probe attrs — those belong to the contention profiler, and the
        observatory must co-exist with it on the same run."""
        self._machine = machine
        self._ring = Tracer.attach(machine, capacity=self.ring_capacity)
        ssb = getattr(machine, "ssb", None)
        if ssb is not None and hasattr(ssb, "probe"):
            self._ssb = ssb
            self._ssb_prev_probe = ssb.probe
            ssb.probe = self._on_ssb_probe
        return self

    def attach_algorithm(self, algo, name: Optional[str] = None
                         ) -> "FairnessObservatory":
        """Observe one lock algorithm's request/acquire/release events.
        ``name`` defaults to the algorithm's registry name."""
        prefix = name if name is not None else algo.name

        def observer(event, thread, handle, write,
                     _algo=algo, _prefix=prefix):
            self._on_event(_prefix, _algo, event, thread, handle, write)

        algo.add_observer(observer)
        self._algos.append((algo, observer))
        return self

    def detach(self) -> None:
        """Remove every observer/probe and the flight recorder.  Runs a
        final watchdog pass so waiters still starving at the end of the
        run are reported even if no further event would have fired."""
        if self._machine is not None:
            now = self._machine.sim.now
            for st in self._locks.values():
                self._check_starvation(st, now)
        for algo, fn in self._algos:
            algo.remove_observer(fn)
        self._algos.clear()
        if self._ssb is not None:
            self._ssb.probe = self._ssb_prev_probe
            self._ssb = self._ssb_prev_probe = None
        if self._ring is not None:
            self._ring.detach()
        self._machine = None

    def attach_registry(self, registry) -> "FairnessObservatory":
        """Register the live sliding-window gauges so periodic registry
        sampling captures fairness time series."""
        registry.gauge("fairness.window.jain", self.window_jain)
        registry.gauge("fairness.window.writer_share",
                       self.window_writer_share)
        return self

    # -- event intake ---------------------------------------------------- #

    def _state(self, key: Any, prefix: str) -> _LockState:
        st = self._locks.get(key)
        if st is None:
            label = (f"{prefix}@{key:#x}" if isinstance(key, int)
                     else f"{prefix}#{len(self._locks)}")
            st = self._locks[key] = _LockState(
                label, self.reader_batch_exempt
            )
        return st

    def _on_event(self, prefix, algo, event, thread, handle, write) -> None:
        now = algo.machine.sim.now
        st = self._state(algo.lock_id(handle), prefix)
        tid = thread.tid
        if event == "request":
            st.seq += 1
            st.waiting[tid] = _Waiter(st.seq, bool(write), now)
            st.ledger.note_request(tid)
        elif event == "acquire":
            waiter = st.waiting.pop(tid, None)
            if waiter is None:      # raw-path mix-in: synthesize arrival
                waiter = _Waiter(st.seq, bool(write), now)
            st.ledger.clear(tid)
            st.ledger.note_grant(
                tid, waiter.seq, bool(write),
                [(o, w.seq, w.write) for o, w in st.waiting.items()],
                read_held=any(not w for w in st.holders.values()),
            )
            wait = now - waiter.t_req
            mode = "write" if write else "read"
            st.wait_hist[mode].add(wait)
            st.grants[mode] += 1
            if wait > st.longest_wait:
                st.longest_wait = wait
            pt = st.per_thread.get(tid)
            if pt is None:
                pt = st.per_thread[tid] = [0, 0, 0]
            pt[0] += 1
            pt[1] += wait
            if wait > pt[2]:
                pt[2] = wait
            st.holders[tid] = bool(write)
            if self.slo is not None:
                st.slo_checked += 1
                if wait > self.slo:
                    st.slo_violations += 1
                    st.slo_excess += wait - self.slo
                    st.slo_intervals.append(
                        (waiter.t_req + self.slo, now)
                    )
                    if len(st.slo_intervals) > 4096:
                        merged = _merge_intervals(st.slo_intervals)
                        st.slo_intervals = merged
            self._window_events.append((now, tid, bool(write)))
            self._prune_window(now)
        elif event == "release":
            st.holders.pop(tid, None)
        elif event == "abandon":
            st.waiting.pop(tid, None)
            st.ledger.clear(tid)
            st.abandons += 1
        # unknown events (e.g. "enqueued") only feed the watchdog clock
        self._check_starvation(st, now)

    def _on_ssb_probe(self, event, addr, tid, write) -> None:
        if event == "acq_fail":
            st = self._locks.get(addr)
            if st is not None:
                st.ssb_failed_acquires += 1
        if self._ssb_prev_probe is not None:
            self._ssb_prev_probe(event, addr, tid, write)

    # -- watchdog -------------------------------------------------------- #

    def _check_starvation(self, st: _LockState, now: int) -> None:
        for tid, waiter in st.waiting.items():
            if waiter.alerted:
                continue
            waited = now - waiter.t_req
            if waited > self.starvation_bound:
                waiter.alerted = True
                st.alerts_total += 1
                if st.alerts_total <= self.max_alert_details:
                    events = ([r.render() for r in self._ring.records]
                              if self._ring is not None else [])
                    self.alerts.append(StarvationAlert(
                        lock=st.label, tid=tid, write=waiter.write,
                        waited=waited, t=now,
                        bound=self.starvation_bound, events=events,
                    ))

    # -- sliding window --------------------------------------------------- #

    def _prune_window(self, now: int) -> None:
        horizon = now - self.window
        evts = self._window_events
        while evts and evts[0][0] < horizon:
            evts.popleft()

    def window_jain(self) -> float:
        """Jain index over per-thread completions in the current window."""
        counts: Dict[int, int] = {}
        for _t, tid, _w in self._window_events:
            counts[tid] = counts.get(tid, 0) + 1
        return jain_fairness(list(counts.values()))

    def window_writer_share(self) -> float:
        """Writer share of completions in the current window."""
        if not self._window_events:
            return 0.0
        writes = sum(1 for _t, _tid, w in self._window_events if w)
        return writes / len(self._window_events)

    # -- export ---------------------------------------------------------- #

    @property
    def lock_labels(self) -> List[str]:
        return sorted(st.label for st in self._locks.values())

    def lock_summary(self, key: Any) -> Optional[Dict[str, Any]]:
        """The fairness dict of one lock by its ``lock_id`` key."""
        st = self._locks.get(key)
        return None if st is None else self._lock_dict(st)

    def _lock_dict(self, st: _LockState) -> Dict[str, Any]:
        def wait_summary(h: Histogram) -> Dict[str, float]:
            return {
                "count": h.acc.n,
                "mean": h.acc.mean,
                "max": h.acc.max if h.acc.max is not None else 0.0,
                "p50": 0.0 if h.empty else h.percentile(50),
                "p99": 0.0 if h.empty else h.percentile(99),
                "p999": 0.0 if h.empty else h.percentile(99.9),
            }

        grants = [pt[0] for pt in st.per_thread.values()]
        total_grants = st.grants["read"] + st.grants["write"]
        out: Dict[str, Any] = {
            "grants": dict(st.grants),
            "abandoned": st.abandons,
            "jain": jain_fairness(grants),
            "writer_share": (
                st.grants["write"] / total_grants if total_grants else 0.0
            ),
            "longest_wait": st.longest_wait,
            "wait": {
                "read": wait_summary(st.wait_hist["read"]),
                "write": wait_summary(st.wait_hist["write"]),
            },
            "per_thread": {
                str(tid): {
                    "grants": pt[0],
                    "wait_total": pt[1],
                    "wait_max": pt[2],
                    "overtaken_max": st.ledger.per_victim_max.get(tid, 0),
                }
                for tid, pt in sorted(st.per_thread.items())
            },
            "overtakes": st.ledger.to_dict(),
            "starvation": {
                "bound": self.starvation_bound,
                "alerts": st.alerts_total,
                "alerts_detail": [
                    a.to_dict() for a in self.alerts if a.lock == st.label
                ],
            },
            "slo": {
                "target": self.slo,
                "checked": st.slo_checked,
                "violations": st.slo_violations,
                "excess_cycles": st.slo_excess,
                "time_in_violation": _union_cycles(st.slo_intervals),
            },
        }
        if st.ssb_failed_acquires:
            out["ssb_failed_acquires"] = st.ssb_failed_acquires
        return out

    def to_dict(self) -> Dict[str, Any]:
        """The ``fairness`` section of a RunReport v4."""
        section = {
            "schema": FAIRNESS_SCHEMA,
            "version": FAIRNESS_VERSION,
            "params": {
                "slo": self.slo,
                "starvation_bound": self.starvation_bound,
                "window": self.window,
                "ring_capacity": self.ring_capacity,
            },
            "locks": {
                st.label: self._lock_dict(st)
                for _key, st in sorted(
                    self._locks.items(), key=lambda kv: kv[1].label
                )
            },
        }
        validate_fairness(section)
        return section

    def publish(self, registry) -> None:
        """Fold fairness data into ``registry`` — the mergeable surface
        (``repro sweep`` combines shard registries through
        ``to_state``/``merge_state``): counters add, wait histograms
        bucket-merge, watermarks survive as ``merge="max"`` gauges."""
        from repro.obs.instrument import _sanitize

        for _key, st in sorted(self._locks.items(),
                               key=lambda kv: kv[1].label):
            base = f"fairness.{_sanitize(st.label)}"
            registry.counter(f"{base}.grants.read").inc(st.grants["read"])
            registry.counter(f"{base}.grants.write").inc(st.grants["write"])
            registry.counter(f"{base}.abandoned").inc(st.abandons)
            led = st.ledger
            registry.counter(f"{base}.overtakes.total").inc(led.total)
            registry.counter(f"{base}.overtakes.exempted").inc(led.exempted)
            for pair, n in sorted(led.by_mode.items()):
                registry.counter(f"{base}.overtakes.{pair}").inc(n)
            registry.counter(f"{base}.starvation.alerts").inc(
                st.alerts_total
            )
            if self.slo is not None:
                registry.counter(f"{base}.slo.violations").inc(
                    st.slo_violations
                )
                registry.counter(f"{base}.slo.excess_cycles").inc(
                    st.slo_excess
                )
                registry.counter(f"{base}.slo.time_in_violation").inc(
                    _union_cycles(st.slo_intervals)
                )
            for mode in ("read", "write"):
                h = st.wait_hist[mode]
                if not h.empty:
                    registry.histogram(
                        f"{base}.wait.{mode}", bucket_width=h.bucket_width
                    ).merge(h)
            g = registry.gauge(f"{base}.max_overtake", merge="max")
            if led.max_overtake > g.read():
                g.set(led.max_overtake)
            g = registry.gauge(f"{base}.longest_wait", merge="max")
            if st.longest_wait > g.read():
                g.set(st.longest_wait)


def _merge_intervals(
    intervals: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Union a (start, end) interval list into disjoint sorted form."""
    merged: List[Tuple[int, int]] = []
    for s, e in sorted(intervals):
        if merged and s <= merged[-1][1]:
            if e > merged[-1][1]:
                merged[-1] = (merged[-1][0], e)
        else:
            merged.append((s, e))
    return merged


# --------------------------------------------------------------------- #
# validation (RunReport v4 delegates here)

_NUMBER = (int, float)


def validate_fairness(section: Any) -> None:
    """Raise :class:`FairnessError` unless ``section`` is a valid
    ``repro.fairness`` v1 section."""
    errors: List[str] = []

    def err(msg: str) -> None:
        errors.append(msg)

    if not isinstance(section, dict):
        raise FairnessError("fairness section must be an object")
    if section.get("schema") != FAIRNESS_SCHEMA:
        err(f"schema must be {FAIRNESS_SCHEMA!r}")
    if section.get("version") != FAIRNESS_VERSION:
        err(f"version must be {FAIRNESS_VERSION}")
    locks = section.get("locks")
    if not isinstance(locks, dict):
        err("'locks' must be an object")
        locks = {}
    for label, d in locks.items():
        if not isinstance(d, dict):
            err(f"locks[{label!r}] must be an object")
            continue
        for key in ("grants", "wait", "per_thread", "overtakes",
                    "starvation", "slo"):
            if not isinstance(d.get(key), dict):
                err(f"locks[{label!r}].{key} must be an object")
        for key in ("jain", "writer_share", "longest_wait", "abandoned"):
            v = d.get(key)
            if not isinstance(v, _NUMBER) or isinstance(v, bool):
                err(f"locks[{label!r}].{key} must be a number")
        wait = d.get("wait")
        if isinstance(wait, dict):
            for mode in ("read", "write"):
                w = wait.get(mode)
                if not isinstance(w, dict):
                    err(f"locks[{label!r}].wait.{mode} must be an object")
                    continue
                for k in ("count", "mean", "max", "p50", "p99", "p999"):
                    v = w.get(k)
                    if not isinstance(v, _NUMBER) or isinstance(v, bool):
                        err(f"locks[{label!r}].wait.{mode}.{k} "
                            f"must be a number")
        ot = d.get("overtakes")
        if isinstance(ot, dict):
            for k in ("total", "max", "exempted"):
                v = ot.get(k)
                if not isinstance(v, _NUMBER) or isinstance(v, bool):
                    err(f"locks[{label!r}].overtakes.{k} must be a number")
    if errors:
        raise FairnessError("; ".join(errors))


def summarize_fairness(section: Dict[str, Any]) -> str:
    """Human-readable digest printed by the CLI when no report file is
    requested."""
    lines = []
    for label, d in section.get("locks", {}).items():
        ot = d["overtakes"]
        slo = d["slo"]
        lines.append(
            f"{label}: jain={d['jain']:.3f} "
            f"writer_share={d['writer_share']:.2f} "
            f"overtakes={ot['total']} (max {ot['max']}, "
            f"exempt {ot['exempted']}) "
            f"p999_wait(r/w)={d['wait']['read']['p999']:.0f}/"
            f"{d['wait']['write']['p999']:.0f} "
            f"starvation_alerts={d['starvation']['alerts']}"
        )
        if slo.get("target") is not None:
            lines.append(
                f"  slo {slo['target']} cyc: {slo['violations']}/"
                f"{slo['checked']} violations, "
                f"{slo['time_in_violation']} cycles in violation"
            )
    return "\n".join(lines) if lines else "(no lock activity observed)"
