"""Host-performance observatory: where does *host* time go?

``repro.obs`` measures the simulated machine; this module measures the
simulator itself.  It is the evidence-gathering half of the engine-speed
roadmap item: before rewriting the discrete-event core we want the same
measurement discipline the paper applies to lock fairness applied to our
own hot path.

Three pieces:

* :class:`HostProfiler` — the attribution sink for the engine's
  instrumented dispatch loop (:meth:`repro.sim.engine.Simulator.
  attach_host_profiler`).  Every host nanosecond spent inside
  ``Simulator.run`` is charged to exactly one bucket: the event
  handler's *subsystem* (classified once per code object from the
  handler's defining module — ``repro.net`` -> ``net``, ``repro.lcu``
  -> ``lcu``, ...), ``obs`` for invariant probes and sampling ticks, or
  ``engine`` for the loop itself (heap ops, bound checks).  Because the
  charge intervals tile the loop's wall time, per-subsystem totals sum
  to ``total_ns`` *by construction*.  Per-handler totals feed a folded-
  stack export for host flamegraphs and the ``host`` section of
  RunReport schema v3.
* :func:`env_fingerprint` — the environment stamp every bench record
  carries (python version/implementation, platform, CPU count) so a
  trajectory mixing machines is visible instead of silently noisy.
* The **bench trajectory** schema (``repro.bench-trajectory``) —
  the machine-readable, append-only record list behind
  ``BENCH_engine.json`` and ``python -m repro bench``; see
  :mod:`repro.harness.bench` for the runner that produces records.

Zero-cost contract: nothing here is imported by the simulator; with no
profiler attached the engine runs its original loop and ``--host-prof``
off costs only one falsy check per ``Simulator.run`` call.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

#: attribution buckets, in report order.  ``engine`` is the event loop
#: itself; ``obs`` is observability overhead (probes, sampling ticks,
#: span bookkeeping) charged to its own bucket so telemetry can never
#: masquerade as simulation work; ``other`` catches handlers defined
#: outside the repro package (tests, examples, ad-hoc scripts).
SUBSYSTEMS = (
    "engine", "net", "mem", "lcu", "ssb", "stm", "locks", "cpu",
    "apps", "harness", "obs", "check", "faults", "other",
)

#: second component of a ``repro.*`` module path -> subsystem bucket.
_PKG_TO_SUBSYSTEM = {
    "sim": "engine",
    "net": "net",
    "mem": "mem",
    "lcu": "lcu",
    "ssb": "ssb",
    "stm": "stm",
    "locks": "locks",
    "cpu": "cpu",
    "apps": "apps",
    "harness": "harness",
    "obs": "obs",
    "check": "check",
    "faults": "faults",
}


class HostProfileError(ValueError):
    """Malformed host section / bench trajectory."""


def classify_module(module: Optional[str]) -> str:
    """Map a handler's defining module to its attribution bucket."""
    if not module:
        return "other"
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return "other"
    return _PKG_TO_SUBSYSTEM.get(parts[1], "other")


class HostProfiler:
    """Charges host nanoseconds to subsystems and per-event handlers.

    The engine's instrumented loop calls :meth:`charge` (loop/probe
    intervals) and :meth:`charge_event` (handler intervals); both are a
    couple of dict operations, which is the entire per-event overhead of
    ``--host-prof``.  Handler classification is cached per code object,
    so the string work happens once per handler *kind*, not per event.
    """

    #: host clock, overridable in tests for deterministic charging
    clock: Callable[[], int] = staticmethod(time.perf_counter_ns)

    def __init__(self) -> None:
        self.subsystems: Dict[str, int] = {}
        #: handler qualname -> [subsystem, ns, events]
        self._handlers: Dict[str, List[Any]] = {}
        self.total_ns: int = 0
        #: classification cache keyed by code object (closures share one)
        self._cache: Dict[Any, Tuple[str, str]] = {}
        self._sims: List[Any] = []
        #: engine event-queue stats folded in at detach time
        self.engine_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # attachment

    def attach(self, sim) -> None:
        """Route ``sim``'s run loop through the instrumented dispatch."""
        sim.attach_host_profiler(self)
        if sim not in self._sims:
            self._sims.append(sim)

    def detach(self) -> None:
        """Detach from every simulator, folding each one's event-queue
        stats (:meth:`~repro.sim.engine.Simulator.engine_stats`) into
        :attr:`engine_stats` (sums; depth peak as max, depth mean
        event-weighted).  Idempotent."""
        for sim in self._sims:
            self._merge_engine_stats(sim.engine_stats())
            sim.detach_host_profiler()
        self._sims = []

    def _merge_engine_stats(self, stats: Dict[str, float]) -> None:
        acc = self.engine_stats
        old_events = acc.get("events_processed", 0)
        new_events = stats.get("events_processed", 0)
        for key, value in stats.items():
            if key == "queue_depth_peak":
                acc[key] = max(acc.get(key, 0), value)
            elif key == "queue_depth_mean":
                total = old_events + new_events
                if total:
                    acc[key] = (
                        acc.get(key, 0.0) * old_events + value * new_events
                    ) / total
            else:
                acc[key] = acc.get(key, 0) + value

    # ------------------------------------------------------------------ #
    # charging (called from the engine's instrumented loop)

    def charge(self, subsystem: str, ns: int) -> None:
        """Charge ``ns`` host nanoseconds to ``subsystem``."""
        if ns < 0:  # non-monotonic clock hiccup: drop, never go negative
            return
        self.total_ns += ns
        self.subsystems[subsystem] = self.subsystems.get(subsystem, 0) + ns

    def charge_event(self, fn: Callable[[], None], ns: int) -> None:
        """Charge ``ns`` to the subsystem and handler that ``fn``
        belongs to.

        Classification is cached: per code object for plain functions
        and closures, per (code, owner class) for bound methods — the
        slotted-dispatch rework schedules bound methods and callable
        objects where closures used to be, and a bound method's
        *function* can live in a different module than the object it is
        bound to (mixins, monkeypatched handlers), so when the function
        module classifies ``other`` the owner's class module decides.
        Builtin bound methods (``deque.popleft`` and friends) have no
        ``__code__`` at all and classify purely by owner class.
        """
        owner = getattr(fn, "__self__", None)
        func = getattr(fn, "__func__", fn)
        code = getattr(func, "__code__", None)
        if code is not None:
            key = code if owner is None else (code, type(owner))
        elif owner is not None:  # builtin bound method
            key = (type(owner), getattr(fn, "__name__", ""))
        else:  # callable object
            key = type(fn)
        ent = self._cache.get(key)
        if ent is None:
            if code is not None:
                module = getattr(func, "__module__", None)
                qual = getattr(func, "__qualname__", repr(fn))
                sub = classify_module(module)
                if sub == "other" and owner is not None:
                    sub = classify_module(type(owner).__module__)
            elif owner is not None:
                cls = type(owner)
                qual = (cls.__qualname__ + "."
                        + (getattr(fn, "__name__", None) or "?"))
                sub = classify_module(cls.__module__)
            else:  # callable object: classify by its class
                cls = type(fn)
                qual = cls.__qualname__ + ".__call__"
                sub = classify_module(cls.__module__)
            ent = self._cache[key] = (sub, qual)
        subsystem, qual = ent
        if ns < 0:
            return
        self.total_ns += ns
        self.subsystems[subsystem] = self.subsystems.get(subsystem, 0) + ns
        h = self._handlers.get(qual)
        if h is None:
            self._handlers[qual] = [subsystem, ns, 1]
        else:
            h[1] += ns
            h[2] += 1

    # ------------------------------------------------------------------ #
    # export

    @property
    def handlers(self) -> Dict[str, Dict[str, Any]]:
        return {
            qual: {"subsystem": sub, "ns": ns, "events": events}
            for qual, (sub, ns, events) in sorted(self._handlers.items())
        }

    def to_dict(self) -> Dict[str, Any]:
        """The ``host`` section of a RunReport (schema v3)."""
        out: Dict[str, Any] = {
            "enabled": True,
            "total_ns": self.total_ns,
            "subsystems": {
                name: ns for name, ns in sorted(self.subsystems.items())
            },
            "handlers": self.handlers,
        }
        if self.engine_stats:
            out["engine"] = dict(self.engine_stats)
        return out

    def folded(self) -> str:
        """Folded-stack lines (``host;<subsystem>;<handler> <ns>``) for
        flamegraph.pl / speedscope, one frame path per handler plus a
        synthetic frame for unattributed loop/probe time."""
        rows: Dict[str, int] = {}
        for qual, (sub, ns, _events) in self._handlers.items():
            rows[f"host;{sub};{qual}"] = rows.get(f"host;{sub};{qual}", 0) + ns
        attributed: Dict[str, int] = {}
        for _path, _ns in rows.items():
            sub = _path.split(";", 2)[1]
            attributed[sub] = attributed.get(sub, 0) + _ns
        for sub, ns in self.subsystems.items():
            rest = ns - attributed.get(sub, 0)
            if rest > 0:
                label = "loop" if sub == "engine" else "overhead"
                rows[f"host;{sub};[{label}]"] = rest
        return "".join(
            f"{path} {ns}\n" for path, ns in sorted(rows.items()) if ns > 0
        )

    def write_folded(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.folded())

    def summarize(self, top: int = 8) -> str:
        """Human-readable digest for the CLI."""
        lines = [f"host time: {self.total_ns / 1e6:.1f} ms attributed"]
        total = self.total_ns or 1
        for name, ns in sorted(
            self.subsystems.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {name:8s} {ns / 1e6:9.2f} ms  {100.0 * ns / total:5.1f}%"
            )
        hot = sorted(
            self._handlers.items(), key=lambda kv: -kv[1][1]
        )[:top]
        if hot:
            lines.append(f"hottest handlers ({len(hot)}):")
            for qual, (sub, ns, events) in hot:
                per = ns / events if events else 0.0
                lines.append(
                    f"  {sub:7s} {qual:44.44s} {ns / 1e6:8.2f} ms  "
                    f"{events:>8d} ev  {per:6.0f} ns/ev"
                )
        eng = self.engine_stats
        if eng:
            lines.append(
                "event queue: "
                f"{eng.get('heap_pushes', 0):.0f} pushes, "
                f"{eng.get('heap_pops', 0):.0f} pops, "
                f"depth peak {eng.get('queue_depth_peak', 0):.0f} / "
                f"mean {eng.get('queue_depth_mean', 0.0):.1f}; "
                f"signals {eng.get('signal_waits', 0):.0f} waits / "
                f"{eng.get('signal_cancels', 0):.0f} cancels / "
                f"{eng.get('signal_fires', 0):.0f} fires"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# host-section validation (RunReport schema v3)

_NUMBER = (int, float)


def validate_host_section(host: Any) -> None:
    """Raise :class:`HostProfileError` unless ``host`` is a well-formed
    ``host`` section of a v3 RunReport."""
    errors: List[str] = []
    if not isinstance(host, dict):
        raise HostProfileError("host section must be an object")
    if not isinstance(host.get("enabled"), bool):
        errors.append("host.enabled must be a boolean")
    if not isinstance(host.get("total_ns"), _NUMBER) or isinstance(
        host.get("total_ns"), bool
    ):
        errors.append("host.total_ns must be a number")
    subs = host.get("subsystems")
    if not isinstance(subs, dict):
        errors.append("host.subsystems must be an object")
    else:
        for name, ns in subs.items():
            if not isinstance(ns, _NUMBER) or isinstance(ns, bool):
                errors.append(f"host.subsystems[{name!r}] must be a number")
    handlers = host.get("handlers")
    if handlers is not None:
        if not isinstance(handlers, dict):
            errors.append("host.handlers must be an object")
        else:
            for qual, h in handlers.items():
                if not isinstance(h, dict) or not all(
                    isinstance(h.get(k), _NUMBER) and
                    not isinstance(h.get(k), bool)
                    for k in ("ns", "events")
                ):
                    errors.append(
                        f"host.handlers[{qual!r}] must have numeric "
                        f"ns/events"
                    )
    engine = host.get("engine")
    if engine is not None and not isinstance(engine, dict):
        errors.append("host.engine must be an object")
    if errors:
        raise HostProfileError("; ".join(errors))


# ---------------------------------------------------------------------- #
# environment fingerprint

def env_fingerprint() -> Dict[str, Any]:
    """The environment stamp carried by every bench-trajectory record.
    Two records with different fingerprints are still diffable, but
    ``repro diff --host`` warns: cross-machine host numbers are a
    comparison of machines, not of code."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


def fingerprint_mismatches(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[Tuple[str, Any, Any]]:
    """Keys on which two environment fingerprints disagree."""
    keys = sorted(set(old) | set(new))
    return [
        (k, old.get(k), new.get(k))
        for k in keys if old.get(k) != new.get(k)
    ]


# ---------------------------------------------------------------------- #
# bench trajectory (the BENCH_*.json record-list schema)

TRAJECTORY_SCHEMA = "repro.bench-trajectory"
TRAJECTORY_VERSION = 1


def empty_trajectory() -> Dict[str, Any]:
    return {
        "schema": TRAJECTORY_SCHEMA,
        "version": TRAJECTORY_VERSION,
        "records": [],
    }


def is_trajectory(obj: Any) -> bool:
    return isinstance(obj, dict) and obj.get("schema") == TRAJECTORY_SCHEMA


def validate_record(record: Any) -> None:
    """Raise :class:`HostProfileError` unless ``record`` is one valid
    trajectory record."""
    errors: List[str] = []
    if not isinstance(record, dict):
        raise HostProfileError("record must be an object")
    if not isinstance(record.get("env"), dict):
        errors.append("record.env must be an object (env_fingerprint)")
    cells = record.get("cells")
    if not isinstance(cells, list):
        errors.append("record.cells must be a list")
    else:
        for i, cell in enumerate(cells):
            if not isinstance(cell, dict):
                errors.append(f"record.cells[{i}] must be an object")
                continue
            for key in ("lock", "model"):
                if not isinstance(cell.get(key), str):
                    errors.append(f"record.cells[{i}].{key} must be a string")
            for key in ("threads", "cycles_per_host_sec",
                        "simulated_cycles"):
                v = cell.get(key)
                if not isinstance(v, _NUMBER) or isinstance(v, bool):
                    errors.append(f"record.cells[{i}].{key} must be a number")
            if not isinstance(cell.get("engine"), dict):
                errors.append(f"record.cells[{i}].engine must be an object")
            if "host" in cell:
                try:
                    validate_host_section(cell["host"])
                except HostProfileError as exc:
                    errors.append(f"record.cells[{i}].{exc}")
    label = record.get("label")
    if label is not None and not isinstance(label, str):
        errors.append("record.label must be a string")
    report = record.get("report")
    if report is not None:
        from repro.obs.report import ReportValidationError, validate_run_report
        try:
            validate_run_report(report)
        except ReportValidationError as exc:
            errors.append(f"record.report: {exc}")
    if errors:
        raise HostProfileError("; ".join(errors))


def validate_trajectory(obj: Any) -> None:
    """Raise :class:`HostProfileError` unless ``obj`` is a valid
    trajectory document."""
    if not isinstance(obj, dict):
        raise HostProfileError("trajectory must be a JSON object")
    if obj.get("schema") != TRAJECTORY_SCHEMA:
        raise HostProfileError(f"schema must be {TRAJECTORY_SCHEMA!r}")
    if obj.get("version") != TRAJECTORY_VERSION:
        raise HostProfileError(f"version must be {TRAJECTORY_VERSION}")
    records = obj.get("records")
    if not isinstance(records, list):
        raise HostProfileError("records must be a list")
    for i, record in enumerate(records):
        try:
            validate_record(record)
        except HostProfileError as exc:
            raise HostProfileError(f"records[{i}]: {exc}") from None


def load_trajectory(path: str) -> Dict[str, Any]:
    """Read and validate a trajectory; a missing file is an empty one."""
    if not os.path.exists(path):
        return empty_trajectory()
    with open(path) as f:
        obj = json.load(f)
    validate_trajectory(obj)
    return obj


def write_trajectory(path: str, trajectory: Dict[str, Any]) -> None:
    validate_trajectory(trajectory)
    with open(path, "w") as f:
        json.dump(trajectory, f, indent=1, sort_keys=True)
        f.write("\n")


def append_record(path: str, record: Dict[str, Any]) -> Dict[str, Any]:
    """Append ``record`` to the trajectory at ``path`` (created if
    missing) and write it back.  Appending is *label-idempotent*: a
    record carrying the same non-empty ``label`` as an existing one
    replaces it in place instead of duplicating the trajectory — re-
    running a labelled baseline refresh converges instead of growing.
    Returns the updated trajectory."""
    validate_record(record)
    trajectory = load_trajectory(path)
    label = record.get("label")
    replaced = False
    if label:
        for i, existing in enumerate(trajectory["records"]):
            if existing.get("label") == label:
                trajectory["records"][i] = record
                replaced = True
                break
    if not replaced:
        trajectory["records"].append(record)
    write_trajectory(path, trajectory)
    return trajectory


def latest_record(
    obj: Dict[str, Any], index: int = -1
) -> Dict[str, Any]:
    """Record ``index`` (default: last) of a trajectory document."""
    records = obj.get("records") or []
    if not records:
        raise HostProfileError("trajectory has no records")
    try:
        return records[index]
    except IndexError:
        raise HostProfileError(
            f"trajectory has {len(records)} record(s); "
            f"index {index} is out of range"
        ) from None
