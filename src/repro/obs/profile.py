"""Post-hoc contention profiler: per-lock wait attribution.

The telemetry layer (PR 1) answers *how much* — counters, histograms,
raw spans.  This module answers *where the time went*: it decomposes
every lock acquisition into the paper's transfer pipeline,

    enqueue -> queue_wait -> transfer -> handoff -> critical_section

using timestamp *probes* fired by the hardware models themselves
(:class:`~repro.lcu.lcu.LockControlUnit`,
:class:`~repro.lcu.lrt.LockReservationTable`,
:class:`~repro.net.network.Network`) plus the lock-algorithm observer
events of :class:`~repro.locks.base.LockAlgorithm` — no span-name string
parsing anywhere.  Phase boundaries, per acquisition of thread *t*:

    t0  request   thread enters the acquire path (observer "request")
    t1  enqueue   the home LRT accepts the request into the queue
                  (probe "enqueue"; software locks: observer "enqueued"
                  fired when the thread links into the queue)
    t2  grant     the grant targeting *t* leaves the previous holder
                  (LRT/LCU probe "grant_sent")
    t3  arrival   the grant lands in *t*'s LCU (probe "grant_recv")
    t4  acquired  the thread claims the lock (observer "acquire")
    t5  released  the critical section ends (observer "release")

Missing interior timestamps (software locks have no grant messages; an
FLT hit has no LRT traffic) are resolved conservatively — t1 falls back
to t0, t3 to t4, t2 to t3 — and every timestamp is clamped into its
neighbours' window, so the four acquire phases *always* telescope to
exactly ``t4 - t0``, the same end-to-end latency the harness measures.

Besides the decomposition the profiler keeps, per lock:

* a queue-depth timeline — ``(t, waiting_readers, waiting_writers,
  holders)`` at every state change — plus time-weighted means;
* protocol-message attribution (count / inter-chip crossings / by type)
  via the network probe, keyed on the ``addr`` field every LCU/LRT
  message carries;
* the serialization **critical path**: the alternating
  critical-section / handoff edge chain in grant order, with top-N
  edges by cost.

Export targets: a JSON ``profile`` section for version-2 RunReports
(:func:`validate_profile` is the schema check), a folded-stack text file
(``lock;mode;phase weight`` — flamegraph.pl / speedscope format) and a
Chrome trace-event JSON of phase spans that loads in Perfetto.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple

PROFILE_SCHEMA = "repro.profile"
PROFILE_VERSION = 1

#: acquire-phase names, in pipeline order (critical_section rides behind)
ACQUIRE_PHASES = ("enqueue", "queue_wait", "transfer", "handoff")
ALL_PHASES = ACQUIRE_PHASES + ("critical_section",)


class ProfileError(ValueError):
    """A profile object does not conform to the schema."""


def _clamp(t: Optional[int], lo: int, hi: int, default: int) -> int:
    if t is None:
        t = default
    return max(lo, min(hi, t))


@dataclasses.dataclass
class Acquisition:
    """One lock acquisition's timestamp skeleton (cycles)."""

    lock: str
    tid: int
    write: bool
    t_request: int
    t_enqueue: Optional[int] = None     # last wins (covers LRT retries)
    t_grant_sent: Optional[int] = None  # first wins (first enabling grant)
    t_grant_recv: Optional[int] = None  # first wins
    t_acquired: Optional[int] = None
    t_released: Optional[int] = None

    def phases(self) -> Dict[str, int]:
        """Telescoped acquire-phase durations; sums to exactly
        ``t_acquired - t_request`` by construction."""
        t0, t4 = self.t_request, self.t_acquired
        assert t4 is not None, "phases() on an unfinished acquisition"
        t1 = _clamp(self.t_enqueue, t0, t4, default=t0)
        t3 = _clamp(self.t_grant_recv, t1, t4, default=t4)
        t2 = _clamp(self.t_grant_sent, t1, t3, default=t3)
        return {
            "enqueue": t1 - t0,
            "queue_wait": t2 - t1,
            "transfer": t3 - t2,
            "handoff": t4 - t3,
        }

    @property
    def acquire_latency(self) -> int:
        assert self.t_acquired is not None
        return self.t_acquired - self.t_request

    @property
    def cs_cycles(self) -> Optional[int]:
        if self.t_released is None or self.t_acquired is None:
            return None
        return self.t_released - self.t_acquired


class _PhaseStat:
    """Total / count / max accumulator for one phase."""

    __slots__ = ("total", "count", "max")

    def __init__(self) -> None:
        self.total = 0
        self.count = 0
        self.max = 0

    def add(self, x: int) -> None:
        self.total += x
        self.count += 1
        if x > self.max:
            self.max = x

    def to_dict(self) -> Dict[str, float]:
        return {
            "total": self.total,
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "max": self.max,
        }


class _LockState:
    """Live bookkeeping for one lock while profiling runs."""

    __slots__ = (
        "label", "pending", "active", "completed", "waiting_read",
        "waiting_write", "holders", "timeline", "timeline_dropped",
        "abandoned", "messages", "inter_chip", "msg_types",
    )

    def __init__(self, label: str) -> None:
        self.label = label
        #: tid -> Acquisition not yet acquired
        self.pending: Dict[int, Acquisition] = {}
        #: tid -> Acquisition held (acquired, not released)
        self.active: Dict[int, Acquisition] = {}
        self.completed: List[Acquisition] = []
        self.waiting_read = 0
        self.waiting_write = 0
        self.holders = 0
        self.timeline: List[Tuple[int, int, int, int]] = []
        self.timeline_dropped = 0
        self.abandoned = 0
        self.messages = 0
        self.inter_chip = 0
        self.msg_types: Dict[str, int] = {}


class ContentionProfiler:
    """Collects lock-phase timestamps from machine probes and algorithm
    observers; exports decomposition / timelines / critical paths.

    Usage (the harness does this when ``profiler=`` is passed)::

        prof = ContentionProfiler()
        prof.attach_machine(machine)        # LCU + LRT + network probes
        prof.attach_algorithm(algo, "lcu")  # thread-level request/acquire
        ... run ...
        prof.detach()
        print(prof.summarize())
        report["profile"] = prof.to_dict()

    Probes are passive: they never schedule events or send messages, so
    the simulated cycle counts of a profiled run are identical to an
    unprofiled one (``BENCH_profile.json`` tracks the host-time cost).
    """

    def __init__(self, max_timeline: int = 20_000) -> None:
        self._sim = None
        self._machine = None
        self._locks: Dict[Any, _LockState] = {}
        self._algos: List[Tuple[Any, Any]] = []   # (algo, observer fn)
        self._lock_names: Dict[Any, str] = {}     # lock key -> algo name
        self.max_timeline = max_timeline
        self.unmatched_probes = 0

    # ------------------------------------------------------------------ #
    # attachment

    def attach_machine(self, machine) -> "ContentionProfiler":
        """Install LCU / LRT / network probes on ``machine``.  Replaces
        any previous attachment (one machine at a time)."""
        self.detach_machine()
        self._machine = machine
        self._sim = machine.sim
        for lcu in machine.lcus:
            lcu.probe = self._on_lcu_probe
        for lrt in machine.lrts:
            lrt.probe = self._on_lrt_probe
        machine.net.probe = self._on_net_probe
        return self

    def attach_algorithm(self, algo, name: Optional[str] = None) -> None:
        """Observe thread-level lock lifecycle events (request / enqueued
        / acquire / release / abandon) issued through ``algo``'s observed
        wrappers.  ``name`` labels this algorithm's locks in the output
        (default: the algorithm's registry name)."""
        if self._sim is None:
            self._sim = algo.machine.sim
        prefix = name if name is not None else algo.name

        def observer(event, thread, handle, write, _algo=algo, _p=prefix):
            self._on_algo_event(event, thread, handle, write, _algo, _p)

        algo.add_observer(observer)
        self._algos.append((algo, observer))

    def detach_machine(self) -> None:
        if self._machine is None:
            return
        for lcu in self._machine.lcus:
            lcu.probe = None
        for lrt in self._machine.lrts:
            lrt.probe = None
        self._machine.net.probe = None
        self._machine = None

    def detach(self) -> None:
        """Remove every probe and observer installed by this profiler."""
        self.detach_machine()
        for algo, observer in self._algos:
            algo.remove_observer(observer)
        self._algos.clear()

    # ------------------------------------------------------------------ #
    # event intake

    def _now(self) -> int:
        return self._sim.now if self._sim is not None else 0

    def _state_for(self, key: Any, label: str) -> _LockState:
        st = self._locks.get(key)
        if st is None:
            st = self._locks[key] = _LockState(label)
        return st

    def _mark(self, st: _LockState) -> None:
        point = (self._now(), st.waiting_read, st.waiting_write, st.holders)
        if st.timeline and st.timeline[-1] == point:
            return
        if len(st.timeline) < self.max_timeline:
            st.timeline.append(point)
        else:
            st.timeline_dropped += 1

    def _on_algo_event(self, event, thread, handle, write, algo, prefix):
        key = algo.lock_id(handle)
        st = self._state_for(key, f"{prefix}@{key:#x}"
                             if isinstance(key, int) else f"{prefix}@{key}")
        self._lock_names.setdefault(key, prefix)
        tid = thread.tid
        now = self._now()
        if event == "request":
            st.pending[tid] = Acquisition(st.label, tid, write, now)
            if write:
                st.waiting_write += 1
            else:
                st.waiting_read += 1
            self._mark(st)
        elif event == "enqueued":
            rec = st.pending.get(tid)
            if rec is not None and rec.t_enqueue is None:
                # Probe-side enqueue events (LCU/LRT) carry the exact
                # hardware enqueue time and fire before the thread
                # resumes; never overwrite them with the (later)
                # software-observed join.
                rec.t_enqueue = now
        elif event == "acquire":
            rec = st.pending.pop(tid, None)
            if rec is None:          # acquired without an observed request
                rec = Acquisition(st.label, tid, write, now)
            rec.t_acquired = now
            st.active[tid] = rec
            if rec.write:
                st.waiting_write = max(0, st.waiting_write - 1)
            else:
                st.waiting_read = max(0, st.waiting_read - 1)
            st.holders += 1
            self._mark(st)
        elif event == "release":
            rec = st.active.pop(tid, None)
            if rec is not None:
                rec.t_released = now
                st.completed.append(rec)
                st.holders = max(0, st.holders - 1)
                self._mark(st)
        elif event == "abandon":
            rec = st.pending.pop(tid, None)
            if rec is not None:
                st.abandoned += 1
                if rec.write:
                    st.waiting_write = max(0, st.waiting_write - 1)
                else:
                    st.waiting_read = max(0, st.waiting_read - 1)
                self._mark(st)

    # -- machine probes --------------------------------------------------- #
    # Probe signatures are positional and tiny: the hardware models call
    # them on hot paths guarded by a single ``is not None`` check.

    def _pending_rec(self, addr: int, tid: int) -> Optional[Acquisition]:
        st = self._locks.get(addr)
        if st is None:
            self.unmatched_probes += 1
            return None
        rec = st.pending.get(tid)
        if rec is None:
            self.unmatched_probes += 1
        return rec

    def _on_lcu_probe(self, event: str, addr: int, tid: int,
                      write: bool) -> None:
        rec = self._pending_rec(addr, tid)
        if rec is None:
            return
        now = self._now()
        if event == "grant_recv":
            if rec.t_grant_recv is None:
                rec.t_grant_recv = now
        elif event == "grant_sent":
            if rec.t_grant_sent is None:
                rec.t_grant_sent = now
        elif event == "req_sent":
            # A (re-)issued request: the thread is not in the queue yet.
            rec.t_enqueue = None

    def _on_lrt_probe(self, event: str, addr: int, tid: int,
                      write: bool) -> None:
        rec = self._pending_rec(addr, tid)
        if rec is None:
            return
        now = self._now()
        if event == "enqueue":
            rec.t_enqueue = now      # last wins: retries restart the clock
        elif event == "grant_sent":
            if rec.t_grant_sent is None:
                rec.t_grant_sent = now

    def _on_net_probe(self, src, dst, payload, inter_chip: bool) -> None:
        addr = getattr(payload, "addr", None)
        if addr is None:
            return
        st = self._locks.get(addr)
        if st is None:
            return
        st.messages += 1
        if inter_chip:
            st.inter_chip += 1
        tname = type(payload).__name__
        st.msg_types[tname] = st.msg_types.get(tname, 0) + 1

    # ------------------------------------------------------------------ #
    # analysis

    @property
    def lock_keys(self) -> List[Any]:
        return sorted(self._locks, key=str)

    def _records(self, st: _LockState) -> List[Acquisition]:
        done = [r for r in st.completed if r.t_acquired is not None]
        held = [r for r in st.active.values() if r.t_acquired is not None]
        return done + held

    def _critical_path(self, st: _LockState, top: int) -> Dict[str, Any]:
        """Serialization chain in grant order: alternating
        critical-section and handoff edges.  Overlapping acquisitions
        (concurrent readers) contribute no handoff edge."""
        recs = sorted(
            (r for r in self._records(st) if r.t_released is not None),
            key=lambda r: (r.t_acquired, r.tid),
        )
        edges: List[Dict[str, Any]] = []
        cs_total = 0
        handoff_total = 0
        prev: Optional[Acquisition] = None
        for r in recs:
            if prev is not None:
                gap = r.t_acquired - prev.t_released
                if gap > 0:
                    edges.append({
                        "kind": "handoff",
                        "from_tid": prev.tid,
                        "to_tid": r.tid,
                        "start": prev.t_released,
                        "duration": gap,
                    })
                    handoff_total += gap
            edges.append({
                "kind": "critical_section",
                "from_tid": r.tid,
                "to_tid": r.tid,
                "start": r.t_acquired,
                "duration": r.cs_cycles,
            })
            cs_total += r.cs_cycles
            prev = r
        top_edges = sorted(
            edges, key=lambda e: (-e["duration"], e["start"])
        )[:top]
        return {
            "links": len(recs),
            "length": cs_total + handoff_total,
            "cs_total": cs_total,
            "handoff_total": handoff_total,
            "top_edges": top_edges,
        }

    def _queue_depth(self, st: _LockState) -> Dict[str, Any]:
        max_r = max_w = 0
        area_r = area_w = area_h = 0.0
        for i, (t, r, w, h) in enumerate(st.timeline):
            max_r = max(max_r, r)
            max_w = max(max_w, w)
            if i + 1 < len(st.timeline):
                dt = st.timeline[i + 1][0] - t
                area_r += r * dt
                area_w += w * dt
                area_h += h * dt
        span = (st.timeline[-1][0] - st.timeline[0][0]) if len(
            st.timeline) > 1 else 0
        return {
            "max_waiting_readers": max_r,
            "max_waiting_writers": max_w,
            "mean_waiting_readers": area_r / span if span else 0.0,
            "mean_waiting_writers": area_w / span if span else 0.0,
            "mean_holders": area_h / span if span else 0.0,
            "points": len(st.timeline),
            "dropped_points": st.timeline_dropped,
            "timeline": [list(p) for p in st.timeline],
        }

    def _lock_dict(self, st: _LockState, top: int) -> Dict[str, Any]:
        recs = self._records(st)
        phases: Dict[str, _PhaseStat] = {p: _PhaseStat() for p in ALL_PHASES}
        by_mode: Dict[str, Dict[str, _PhaseStat]] = {
            "read": {p: _PhaseStat() for p in ALL_PHASES},
            "write": {p: _PhaseStat() for p in ALL_PHASES},
        }
        per_thread: Dict[int, Dict[str, int]] = {}
        acquire_total = 0
        for r in recs:
            mode = "write" if r.write else "read"
            for name, dur in r.phases().items():
                phases[name].add(dur)
                by_mode[mode][name].add(dur)
            cs = r.cs_cycles
            if cs is not None:
                phases["critical_section"].add(cs)
                by_mode[mode]["critical_section"].add(cs)
            acquire_total += r.acquire_latency
            t = per_thread.setdefault(
                r.tid, {"acquisitions": 0, "wait_total": 0, "cs_total": 0}
            )
            t["acquisitions"] += 1
            t["wait_total"] += r.acquire_latency
            t["cs_total"] += cs if cs is not None else 0
        reads = sum(1 for r in recs if not r.write)
        return {
            "acquisitions": len(recs),
            "reads": reads,
            "writes": len(recs) - reads,
            "abandoned": st.abandoned,
            "unreleased": len(st.active),
            "acquire_latency_total": acquire_total,
            "phases": {p: s.to_dict() for p, s in phases.items()},
            "by_mode": {
                m: {p: s.to_dict() for p, s in table.items()}
                for m, table in by_mode.items()
            },
            "per_thread": {
                str(tid): v for tid, v in sorted(per_thread.items())
            },
            "queue_depth": self._queue_depth(st),
            "messages": {
                "total": st.messages,
                "inter_chip": st.inter_chip,
                "by_type": dict(sorted(st.msg_types.items())),
            },
            "critical_path": self._critical_path(st, top),
        }

    # ------------------------------------------------------------------ #
    # exports

    def to_dict(self, top: int = 10) -> Dict[str, Any]:
        """The ``profile`` section of a version-2 RunReport."""
        out = {
            "schema": PROFILE_SCHEMA,
            "version": PROFILE_VERSION,
            "unmatched_probes": self.unmatched_probes,
            "locks": {
                self._locks[k].label: self._lock_dict(self._locks[k], top)
                for k in self.lock_keys
            },
        }
        validate_profile(out)
        return out

    def folded(self) -> str:
        """Folded-stack (collapsed) text: ``lock;mode;phase weight`` per
        line, weights in cycles — feed to flamegraph.pl or speedscope."""
        lines = []
        for key in self.lock_keys:
            st = self._locks[key]
            agg: Dict[Tuple[str, str], int] = {}
            for r in self._records(st):
                mode = "write" if r.write else "read"
                for name, dur in r.phases().items():
                    agg[(mode, name)] = agg.get((mode, name), 0) + dur
                cs = r.cs_cycles
                if cs is not None:
                    agg[(mode, "critical_section")] = (
                        agg.get((mode, "critical_section"), 0) + cs
                    )
            for (mode, name), weight in sorted(agg.items()):
                lines.append(f"{st.label};{mode};{name} {weight}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.folded())

    def to_chrome_trace(self, capacity: int = 500_000) -> Dict[str, Any]:
        """Phase spans as Chrome trace-event JSON (Perfetto-loadable):
        one track per thread, one ``X`` event per phase per acquisition."""
        events: List[Dict[str, Any]] = [{
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": "repro contention profile"},
        }]
        tids: Dict[int, int] = {}

        def track(tid: int) -> int:
            t = tids.get(tid)
            if t is None:
                t = tids[tid] = len(tids) + 1
                events.append({
                    "ph": "M", "pid": 0, "tid": t, "name": "thread_name",
                    "args": {"name": f"thread {tid}"},
                })
            return t

        n = 0
        for key in self.lock_keys:
            st = self._locks[key]
            for r in sorted(self._records(st),
                            key=lambda r: (r.t_request, r.tid)):
                cursor = r.t_request
                segs = list(r.phases().items())
                if r.cs_cycles is not None:
                    segs.append(("critical_section", r.cs_cycles))
                for name, dur in segs:
                    if n >= capacity:
                        break
                    events.append({
                        "ph": "X", "name": name, "cat": "profile",
                        "pid": 0, "tid": track(r.tid),
                        "ts": cursor, "dur": dur,
                        "args": {"lock": st.label,
                                 "mode": "write" if r.write else "read"},
                    })
                    cursor += dur
                    n += 1
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"clock_unit": "cycles"},
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f, indent=1, sort_keys=True)
            f.write("\n")

    def summarize(self, top: int = 5) -> str:
        """Human-readable per-lock wait decomposition (the ``repro
        profile`` verb's output)."""
        locks = self.lock_keys
        total_acq = sum(len(self._records(self._locks[k])) for k in locks)
        lines = [
            f"Contention profile: {len(locks)} lock(s), "
            f"{total_acq} acquisitions"
        ]
        for key in locks:
            st = self._locks[key]
            d = self._lock_dict(st, top)
            lines.append("")
            lines.append(
                f"lock {st.label} — {d['acquisitions']} acquisitions "
                f"({d['writes']} write / {d['reads']} read, "
                f"{d['abandoned']} abandoned)"
            )
            acq_total = d["acquire_latency_total"]
            lines.append("  acquire-latency decomposition "
                         "(cycles: total / mean / max):")
            phase_sum = 0
            for name in ALL_PHASES:
                s = d["phases"][name]
                if name in ACQUIRE_PHASES:
                    phase_sum += s["total"]
                pct = (100.0 * s["total"] / acq_total
                       if acq_total and name in ACQUIRE_PHASES else None)
                pct_txt = f"  ({pct:5.1f}% of wait)" if pct is not None else ""
                lines.append(
                    f"    {name:<16s} {s['total']:>10d} / "
                    f"{s['mean']:>8.1f} / {s['max']:>7d}{pct_txt}"
                )
            if acq_total:
                lines.append(
                    f"  phase sum = {phase_sum} cycles = "
                    f"{100.0 * phase_sum / acq_total:.2f}% of end-to-end "
                    f"acquire latency ({acq_total})"
                )
            q = d["queue_depth"]
            lines.append(
                f"  queue depth: max waiters "
                f"{q['max_waiting_writers']}w/{q['max_waiting_readers']}r, "
                f"time-weighted mean "
                f"{q['mean_waiting_writers']:.2f}w/"
                f"{q['mean_waiting_readers']:.2f}r, "
                f"mean holders {q['mean_holders']:.2f}"
            )
            m = d["messages"]
            top_types = sorted(
                m["by_type"].items(), key=lambda kv: -kv[1]
            )[:4]
            lines.append(
                f"  messages: {m['total']} total, "
                f"{m['inter_chip']} inter-chip"
                + (("; top: " + ", ".join(
                    f"{t}={c}" for t, c in top_types)) if top_types else "")
            )
            cp = d["critical_path"]
            lines.append(
                f"  critical path: {cp['length']} cycles over "
                f"{cp['links']} links "
                f"(cs {cp['cs_total']}, handoff {cp['handoff_total']}); "
                f"top edges:"
            )
            for i, e in enumerate(cp["top_edges"][:top], 1):
                lines.append(
                    f"    {i}. {e['kind']:<16s} tid {e['from_tid']} -> "
                    f"tid {e['to_tid']}  {e['duration']} cycles "
                    f"@ t={e['start']}"
                )
        if self.unmatched_probes:
            lines.append("")
            lines.append(f"(unmatched hardware probes: "
                         f"{self.unmatched_probes})")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# schema validation

def validate_profile(obj: Any) -> None:
    """Structural check of a profile section; raises
    :class:`ProfileError` describing the first problem found."""
    if not isinstance(obj, dict):
        raise ProfileError("profile must be a JSON object")
    if obj.get("schema") != PROFILE_SCHEMA:
        raise ProfileError(f"profile.schema must be {PROFILE_SCHEMA!r}")
    if obj.get("version") != PROFILE_VERSION:
        raise ProfileError(f"profile.version must be {PROFILE_VERSION}")
    locks = obj.get("locks")
    if not isinstance(locks, dict):
        raise ProfileError("profile.locks must be an object")
    for label, d in locks.items():
        ctx = f"profile.locks[{label!r}]"
        if not isinstance(d, dict):
            raise ProfileError(f"{ctx} must be an object")
        for field in ("acquisitions", "reads", "writes",
                      "acquire_latency_total"):
            if not isinstance(d.get(field), int):
                raise ProfileError(f"{ctx}.{field} must be an int")
        phases = d.get("phases")
        if not isinstance(phases, dict):
            raise ProfileError(f"{ctx}.phases must be an object")
        for p in ALL_PHASES:
            s = phases.get(p)
            if not isinstance(s, dict) or not all(
                k in s for k in ("total", "mean", "max", "count")
            ):
                raise ProfileError(
                    f"{ctx}.phases[{p!r}] must have total/mean/max/count"
                )
        acq_phase_sum = sum(phases[p]["total"] for p in ACQUIRE_PHASES)
        if acq_phase_sum != d["acquire_latency_total"]:
            raise ProfileError(
                f"{ctx}: acquire phases sum to {acq_phase_sum}, "
                f"not acquire_latency_total={d['acquire_latency_total']}"
            )
        q = d.get("queue_depth")
        if not isinstance(q, dict) or "timeline" not in q:
            raise ProfileError(f"{ctx}.queue_depth must have a timeline")
        for pt in q["timeline"]:
            if not (isinstance(pt, list) and len(pt) == 4):
                raise ProfileError(
                    f"{ctx}.queue_depth.timeline entries must be "
                    f"[t, readers, writers, holders]"
                )
        msgs = d.get("messages")
        if not isinstance(msgs, dict) or not all(
            k in msgs for k in ("total", "inter_chip", "by_type")
        ):
            raise ProfileError(
                f"{ctx}.messages must have total/inter_chip/by_type"
            )
        cp = d.get("critical_path")
        if not isinstance(cp, dict) or not isinstance(
            cp.get("top_edges"), list
        ):
            raise ProfileError(
                f"{ctx}.critical_path.top_edges must be a list"
            )
        for e in cp["top_edges"]:
            if not isinstance(e, dict) or not all(
                k in e for k in ("kind", "from_tid", "to_tid", "duration")
            ):
                raise ProfileError(
                    f"{ctx}.critical_path edges need "
                    f"kind/from_tid/to_tid/duration"
                )
            if e["duration"] < 0:
                raise ProfileError(f"{ctx}: negative critical-path edge")
