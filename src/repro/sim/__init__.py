"""Discrete-event simulation kernel."""

from repro.sim.engine import Server, Signal, SimulationError, Simulator
from repro.sim.stats import Accumulator, Histogram, jain_fairness

__all__ = [
    "Server", "Signal", "SimulationError", "Simulator",
    "Accumulator", "Histogram", "jain_fairness",
]
