"""Discrete-event simulation engine.

The whole reproduction runs on this small deterministic event kernel.
Time is measured in integer *cycles*.  Events scheduled for the same cycle
fire in schedule order (a monotonic sequence number breaks ties), which
makes every simulation run bit-reproducible for a given seed.

The three building blocks are:

``Simulator``
    The event queue and clock.

``Signal``
    A broadcast condition: processes block on it and are resumed when it
    fires.  Used to model local spinning (a waiter consumes zero simulated
    traffic until the thing it watches changes).

``Server``
    A serially-serviced resource with FIFO queueing — memory controllers,
    switch stages and inter-chip links are Servers, which is where all
    contention in the model comes from.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator with an integer cycle clock.

    ``tiebreak_seed`` perturbs the order in which *same-cycle* events fire:
    instead of pure schedule order, each event draws a deterministic random
    key from the seed and same-cycle events fire in key order (schedule
    order still breaks key collisions).  Every seed is one reproducible
    interleaving — the schedule fuzzer (:mod:`repro.check.fuzz`) sweeps
    seeds to explore interleavings the default order never produces.
    """

    def __init__(self, tiebreak_seed: Optional[int] = None) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._tiebreak: Optional[random.Random] = (
            random.Random(tiebreak_seed) if tiebreak_seed is not None else None
        )
        self._probes: List[Callable[[], None]] = []
        # event-queue telemetry: plain integer bumps in at()/run() (a few
        # adds per event next to heappush/heappop, well under timing noise;
        # the engine overhead guard in tests/test_obs_host.py keeps it so).
        # None of these feed back into the simulation — simulated time and
        # event order are bit-identical whether anyone reads them or not.
        self.queue_depth_peak: int = 0
        self._queue_depth_sum: int = 0
        self.signal_waits: int = 0
        self.signal_cancels: int = 0
        self.signal_fires: int = 0
        self._host: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # scheduling

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``time`` cycles."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} (now={self.now})"
            )
        key = self._seq if self._tiebreak is None else self._tiebreak.getrandbits(30)
        heapq.heappush(self._queue, (int(time), key, self._seq, fn))
        self._seq += 1
        depth = len(self._queue)
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + int(delay), fn)

    # ------------------------------------------------------------------ #
    # execution

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when simulated time would exceed
        ``until``, when ``max_events`` events have been processed, or when
        ``stop_when()`` becomes true (checked between events).  Returns the
        number of events processed by this call.
        """
        if self._host is not None:
            return self._run_profiled(until, max_events, stop_when)
        processed = 0
        while self._queue:
            if stop_when is not None and stop_when():
                break
            if max_events is not None and processed >= max_events:
                break
            time, _key, _seq, fn = self._queue[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self._queue_depth_sum += len(self._queue)
            self.now = time
            fn()
            processed += 1
            if self._probes:
                for probe in self._probes:
                    probe()
        self._events_processed += processed
        return processed

    def _run_profiled(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> int:
        """The :meth:`run` loop with host-time attribution.

        Identical event semantics to the plain loop (same pops, same
        clock updates, same probe ordering) — only host-clock reads are
        interleaved.  Every nanosecond between loop entry and loop exit
        is charged to exactly one bucket: the event handler's subsystem,
        ``obs`` for invariant probes, or ``engine`` for the loop itself
        (heap ops, bound checks), so the attribution sums to the total
        by construction.
        """
        host = self._host
        clock = host.clock
        processed = 0
        t_mark = clock()
        while self._queue:
            if stop_when is not None and stop_when():
                break
            if max_events is not None and processed >= max_events:
                break
            time, _key, _seq, fn = self._queue[0]
            if until is not None and time > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            self._queue_depth_sum += len(self._queue)
            self.now = time
            t0 = clock()
            fn()
            t1 = clock()
            processed += 1
            if self._probes:
                for probe in self._probes:
                    probe()
                t2 = clock()
                host.charge("obs", t2 - t1)
            else:
                t2 = t1
            host.charge("engine", t0 - t_mark)
            host.charge_event(fn, t1 - t0)
            t_mark = t2
        host.charge("engine", clock() - t_mark)
        self._events_processed += processed
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------ #
    # engine telemetry (event-queue internals)

    @property
    def heap_pushes(self) -> int:
        """Events ever pushed (== event-tuple allocations): ``at`` count."""
        return self._seq

    @property
    def heap_pops(self) -> int:
        """Events popped and dispatched across all :meth:`run` calls."""
        return self._events_processed

    @property
    def queue_depth_mean(self) -> float:
        """Mean queue depth observed at dispatch (post-pop)."""
        if self._events_processed == 0:
            return 0.0
        return self._queue_depth_sum / self._events_processed

    def engine_stats(self) -> Dict[str, float]:
        """Event-queue internals as a flat dict (the ``engine`` block of
        a bench-trajectory cell; also harvested into ``engine.*``
        counters by :func:`repro.obs.instrument.harvest_machine_metrics`).
        """
        return {
            "events_processed": self._events_processed,
            "heap_pushes": self._seq,
            "heap_pops": self._events_processed,
            "queue_depth_peak": self.queue_depth_peak,
            "queue_depth_mean": self.queue_depth_mean,
            "pending_events": len(self._queue),
            "signal_waits": self.signal_waits,
            "signal_cancels": self.signal_cancels,
            "signal_fires": self.signal_fires,
        }

    # ------------------------------------------------------------------ #
    # host-time attribution

    def attach_host_profiler(self, host: Any) -> None:
        """Route :meth:`run` through the instrumented dispatch loop,
        charging host nanoseconds to ``host`` (a
        :class:`repro.obs.host.HostProfiler`).  With no profiler attached
        the plain loop runs and the hot path pays nothing."""
        if self._host is not None and self._host is not host:
            raise SimulationError("a host profiler is already attached")
        self._host = host

    def detach_host_profiler(self) -> None:
        """Return :meth:`run` to the uninstrumented loop.  Idempotent."""
        self._host = None

    # ------------------------------------------------------------------ #
    # probes

    def add_probe(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run after every processed event.  Probes are
        the pull-based hook invariant monitors attach to
        (:mod:`repro.check.invariants`); with none registered the event
        loop pays a single falsy check per event."""
        self._probes.append(fn)

    def remove_probe(self, fn: Callable[[], None]) -> bool:
        """Deregister a probe; returns whether it was registered."""
        try:
            self._probes.remove(fn)
        except ValueError:
            return False
        return True


class Signal:
    """A broadcast wake-up: callbacks registered with :meth:`wait` all run
    (in registration order) when :meth:`fire` is called.

    Waiters are one-shot; a waiter that wants to keep watching re-registers.
    ``cancel`` removes a waiter that is no longer interested (e.g. a thread
    that got preempted while spinning).
    """

    __slots__ = ("_sim", "_waiters", "_next_id")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._waiters: Dict[int, Callable[[Any], None]] = {}
        self._next_id = 0

    def wait(self, fn: Callable[[Any], None]) -> int:
        """Register ``fn`` to be called with the fire payload. Returns a
        token usable with :meth:`cancel`."""
        token = self._next_id
        self._next_id += 1
        self._waiters[token] = fn
        self._sim.signal_waits += 1
        return token

    def cancel(self, token: int) -> bool:
        """Deregister a waiter; returns whether it was still registered."""
        if self._waiters.pop(token, None) is None:
            return False
        self._sim.signal_cancels += 1
        return True

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters *now* (same cycle). Returns the number
        of waiters woken.  Waiters registered during the firing are not
        woken by this call."""
        waiters = self._waiters
        self._waiters = {}
        self._sim.signal_fires += 1
        for fn in waiters.values():
            fn(payload)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Server:
    """A resource that services requests one at a time, FIFO.

    ``request(service, fn)`` schedules ``fn`` to run once the server has
    finished all previously accepted work plus ``service`` cycles for this
    request.  Utilisation statistics are tracked for reporting (e.g. link
    saturation in the Model B interconnect).
    """

    __slots__ = ("_sim", "name", "_free_at", "busy_cycles", "requests")

    def __init__(self, sim: Simulator, name: str = "server") -> None:
        self._sim = sim
        self.name = name
        self._free_at: int = 0
        self.busy_cycles: int = 0
        self.requests: int = 0

    def request(self, service: int, fn: Callable[[], None]) -> int:
        """Enqueue work taking ``service`` cycles; ``fn`` runs at completion.
        Returns the completion time."""
        if service < 0:
            raise SimulationError(f"negative service time {service}")
        start = max(self._sim.now, self._free_at)
        done = start + int(service)
        self._free_at = done
        self.busy_cycles += int(service)
        self.requests += 1
        self._sim.at(done, fn)
        return done

    def queue_delay(self) -> int:
        """Cycles a request arriving now would wait before service begins."""
        return max(0, self._free_at - self._sim.now)

    def utilisation(self) -> float:
        """Fraction of elapsed simulated time this server was busy."""
        if self._sim.now == 0:
            return 0.0
        return min(1.0, self.busy_cycles / self._sim.now)
