"""Discrete-event simulation engine.

The whole reproduction runs on this small deterministic event kernel.
Time is measured in integer *cycles*.  Events scheduled for the same cycle
fire in schedule order (FIFO within a cycle), which makes every simulation
run bit-reproducible for a given seed.

The building blocks are:

``Simulator``
    The event queue and clock.

``CalendarQueue``
    The default event store: a calendar/bucketed queue keyed by exact
    cycle.  Events for one cycle live in one FIFO bucket list; a small
    integer min-heap of *distinct armed cycles* finds the next non-empty
    bucket, so advancing the clock across a run of empty cycles is one
    heap pop instead of per-cycle work.  Drained bucket lists are
    recycled through a preallocated free pool.  See DESIGN.md "Event
    queue internals" for the bucket math and lifecycle.

``ReferenceScheduler``
    The pre-calendar event store: a single heapq of ``(time, key, seq,
    fn)`` tuples.  It is kept for two jobs — it is the oracle the
    differential tests (tests/test_engine_equiv.py) compare the calendar
    queue against, and it is the only store that supports *perturbed*
    same-cycle ordering (``tiebreak_seed``), which the schedule fuzzer
    needs.

``Signal``
    A broadcast condition: processes block on it and are resumed when it
    fires.  Used to model local spinning (a waiter consumes zero simulated
    traffic until the thing it watches changes).

``Server``
    A serially-serviced resource with FIFO queueing — memory controllers,
    switch stages and inter-chip links are Servers, which is where all
    contention in the model comes from.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Dict, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (e.g. scheduling in the past)."""


class CalendarQueue:
    """Cycle-keyed bucket store with a free pool of drained buckets.

    Invariants (pinned by tests/test_engine_equiv.py property tests):

    * ``buckets[t]`` exists iff cycle ``t`` appears exactly once in the
      ``times`` heap; ``size`` equals the total number of queued events.
    * Events within one bucket fire in append (schedule) order — the
      same total order the reference scheduler's monotonic sequence
      number produces when no tiebreak perturbation is active.
    * A fully drained bucket list is cleared and parked on ``pool``
      (capped at ``pool_cap``) for reuse by the next new cycle, so the
      steady state allocates no per-cycle list objects.

    The :class:`Simulator` hot loop operates on these fields directly
    (method-call overhead per event is what this class exists to avoid);
    the methods below express the same invariants one step at a time for
    tests and cold paths.
    """

    __slots__ = ("buckets", "times", "pool", "size", "pool_cap")

    def __init__(self, pool_cap: int = 512) -> None:
        self.buckets: Dict[int, List[Callable[[], None]]] = {}
        self.times: List[int] = []          # min-heap of distinct cycles
        self.pool: List[List[Callable[[], None]]] = []
        self.size = 0
        self.pool_cap = pool_cap

    def push(self, time: int, fn: Callable[[], None]) -> None:
        bucket = self.buckets.get(time)
        if bucket is None:
            pool = self.pool
            if pool:
                bucket = pool.pop()
                bucket.append(fn)
            else:
                bucket = [fn]
            self.buckets[time] = bucket
            heapq.heappush(self.times, time)
        else:
            bucket.append(fn)
        self.size += 1

    def peek_time(self) -> Optional[int]:
        return self.times[0] if self.times else None

    def pop(self) -> Tuple[int, Callable[[], None]]:
        """Remove and return the next ``(time, fn)`` in dispatch order."""
        if not self.times:
            raise IndexError("pop from an empty CalendarQueue")
        t = self.times[0]
        bucket = self.buckets[t]
        fn = bucket.pop(0)
        self.size -= 1
        if not bucket:
            self.retire_bucket(t, bucket)
        return t, fn

    def retire_bucket(self, time: int, bucket: List) -> None:
        """Unlink a fully drained bucket and recycle its list."""
        heapq.heappop(self.times)
        del self.buckets[time]
        if len(self.pool) < self.pool_cap:
            bucket.clear()
            self.pool.append(bucket)

    def __len__(self) -> int:
        return self.size


class ReferenceScheduler:
    """The original single-heapq event store (the differential oracle).

    Each push allocates one ``(time, key, seq, fn)`` tuple; ``key`` is
    the sequence number itself (stable FIFO) or, with a tiebreak RNG, a
    deterministic random 30-bit draw that perturbs same-cycle order
    (schedule order still breaks key collisions).
    """

    __slots__ = ("heap", "seq", "tiebreak")

    def __init__(self, tiebreak: Optional[random.Random] = None) -> None:
        self.heap: List[Tuple[int, int, int, Callable[[], None]]] = []
        self.seq = 0
        self.tiebreak = tiebreak

    def push(self, time: int, fn: Callable[[], None]) -> None:
        key = self.seq if self.tiebreak is None else self.tiebreak.getrandbits(30)
        heapq.heappush(self.heap, (time, key, self.seq, fn))
        self.seq += 1

    def peek_time(self) -> Optional[int]:
        return self.heap[0][0] if self.heap else None

    def pop(self) -> Tuple[int, Callable[[], None]]:
        time, _key, _seq, fn = heapq.heappop(self.heap)
        return time, fn

    def __len__(self) -> int:
        return len(self.heap)


class Simulator:
    """Deterministic discrete-event simulator with an integer cycle clock.

    Events default to the :class:`CalendarQueue` store.  ``tiebreak_seed``
    perturbs the order in which *same-cycle* events fire: instead of pure
    schedule order, each event draws a deterministic random key from the
    seed and same-cycle events fire in key order.  Every seed is one
    reproducible interleaving — the schedule fuzzer (:mod:`repro.check.
    fuzz`) sweeps seeds to explore interleavings the default order never
    produces.  A tiebreak forces the :class:`ReferenceScheduler` store
    (the calendar queue is FIFO by construction and cannot express a
    perturbed order); ``scheduler="reference"`` selects it explicitly,
    which the differential tests use to compare both stores over the
    same workload.

    ``event_hook`` (when set to ``fn(time, event)``) observes every event
    just before it is dispatched — the differential tests' event-order
    capture point.  It costs one local None-check per event when unset.
    """

    def __init__(
        self,
        tiebreak_seed: Optional[int] = None,
        scheduler: Optional[str] = None,
    ) -> None:
        if scheduler not in (None, "calendar", "reference"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.now: int = 0
        self._seq: int = 0
        self._events_processed: int = 0
        self._tiebreak: Optional[random.Random] = (
            random.Random(tiebreak_seed) if tiebreak_seed is not None else None
        )
        if self._tiebreak is not None or scheduler == "reference":
            self._ref: Optional[ReferenceScheduler] = ReferenceScheduler(
                self._tiebreak
            )
            self._cal: Optional[CalendarQueue] = None
        else:
            self._ref = None
            self._cal = CalendarQueue()
        self._probes: List[Callable[[], None]] = []
        self.event_hook: Optional[Callable[[int, Callable], None]] = None
        self._stop = False
        self._running = False
        # event-queue telemetry: plain integer bumps in at()/run() (a few
        # adds per event next to the bucket ops, well under timing noise;
        # the engine overhead guard in tests/test_obs_host.py keeps it so).
        # None of these feed back into the simulation — simulated time and
        # event order are bit-identical whether anyone reads them or not.
        self.queue_depth_peak: int = 0
        self._queue_depth_sum: int = 0
        self.signal_waits: int = 0
        self.signal_cancels: int = 0
        self.signal_fires: int = 0
        self._host: Optional[Any] = None

    @property
    def stable_order(self) -> bool:
        """True when same-cycle events fire in pure schedule order (no
        tiebreak perturbation) — the mode in which per-pair network FIFO
        holds by construction (see :mod:`repro.net.network`)."""
        return self._tiebreak is None

    # ------------------------------------------------------------------ #
    # scheduling

    def at(self, time: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute ``time`` cycles."""
        if type(time) is not int:
            time = int(time)
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} (now={self.now})"
            )
        ref = self._ref
        if ref is not None:
            ref.push(time, fn)
            self._seq += 1
            depth = len(ref.heap)
            if depth > self.queue_depth_peak:
                self.queue_depth_peak = depth
            return
        # inlined CalendarQueue.push (this is the hottest allocation site
        # in the repo; a method call per event costs ~15% of the loop)
        cal = self._cal
        bucket = cal.buckets.get(time)
        if bucket is None:
            pool = cal.pool
            if pool:
                bucket = pool.pop()
                bucket.append(fn)
            else:
                bucket = [fn]
            cal.buckets[time] = bucket
            heapq.heappush(cal.times, time)
        else:
            bucket.append(fn)
        self._seq += 1
        cal.size = depth = cal.size + 1
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, fn)

    def request_stop(self) -> None:
        """Stop the current (or next) :meth:`run` call before the next
        event is dispatched.  Cheaper than a ``stop_when`` callable — the
        loop pays one attribute check per event instead of a Python call
        — and used by :meth:`repro.cpu.os_sched.OS.run_all`."""
        self._stop = True

    # ------------------------------------------------------------------ #
    # execution

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Drain the event queue.

        Stops when the queue is empty, when simulated time would exceed
        ``until``, when ``max_events`` events have been processed, when
        ``stop_when()`` becomes true (checked between events), or when
        :meth:`request_stop` was called.  Returns the number of events
        processed by this call.  ``run`` must not be re-entered from an
        event handler.
        """
        if self._running:
            raise SimulationError("run() re-entered from an event handler")
        if self._host is not None:
            return self._run_profiled(until, max_events, stop_when)
        if self._ref is not None:
            return self._run_reference(until, max_events, stop_when)
        if max_events is not None and max_events <= 0:
            return 0

        cal = self._cal
        buckets = cal.buckets
        times = cal.times
        pool = cal.pool
        probes = self._probes
        hook = self.event_hook
        pop_time = heapq.heappop
        nmax = -1 if max_events is None else max_events
        processed = 0
        depth_sum = 0
        bucket: Optional[List] = None
        i = 0
        self._running = True
        try:
            while times:
                if self._stop or (stop_when is not None and stop_when()):
                    self._stop = False
                    break
                if processed == nmax:
                    break
                t = times[0]
                if until is not None and t > until:
                    self.now = until
                    break
                bucket = buckets[t]
                self.now = t
                i = 0
                broke = False
                while True:
                    fn = bucket[i]
                    i += 1
                    cal.size = size = cal.size - 1
                    depth_sum += size
                    if hook is not None:
                        hook(t, fn)
                    fn()
                    processed += 1
                    if probes:
                        for probe in probes:
                            probe()
                    if i == len(bucket):
                        break       # drained (len re-read: same-cycle
                        # appends made during fn() grow the bucket)
                    if self._stop or (stop_when is not None and stop_when()):
                        self._stop = False
                        del bucket[:i]
                        broke = True
                        break
                    if processed == nmax:
                        del bucket[:i]
                        broke = True
                        break
                if broke:
                    break
                # batched advance: retire the bucket and jump straight to
                # the next armed cycle — empty cycles cost nothing.
                pop_time(times)
                del buckets[t]
                if len(pool) < cal.pool_cap:
                    bucket.clear()
                    pool.append(bucket)
                bucket = None
        except BaseException:
            # keep the store consistent if a handler raised mid-bucket:
            # events [0, i) were dispatched, the rest stay queued.  If the
            # raising handler was the bucket's last event, retire the
            # bucket outright — an empty bucket left armed would crash
            # the next run() call.
            if bucket is not None and i:
                if i == len(bucket):
                    pop_time(times)
                    del buckets[self.now]
                    if len(pool) < cal.pool_cap:
                        bucket.clear()
                        pool.append(bucket)
                else:
                    del bucket[:i]
            raise
        finally:
            self._running = False
            self._queue_depth_sum += depth_sum
            self._events_processed += processed
        return processed

    def _run_reference(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> int:
        """The :meth:`run` loop over the :class:`ReferenceScheduler` heap
        (tiebreak runs and the differential oracle).  Semantically the
        original pre-calendar loop."""
        heap = self._ref.heap
        hook = self.event_hook
        processed = 0
        self._running = True
        try:
            while heap:
                if self._stop or (stop_when is not None and stop_when()):
                    self._stop = False
                    break
                if max_events is not None and processed >= max_events:
                    break
                time = heap[0][0]
                if until is not None and time > until:
                    self.now = until
                    break
                time, _key, _seq, fn = heapq.heappop(heap)
                self._queue_depth_sum += len(heap)
                self.now = time
                if hook is not None:
                    hook(time, fn)
                fn()
                processed += 1
                if self._probes:
                    for probe in self._probes:
                        probe()
        finally:
            self._running = False
            self._events_processed += processed
        return processed

    def _run_profiled(
        self,
        until: Optional[int],
        max_events: Optional[int],
        stop_when: Optional[Callable[[], bool]],
    ) -> int:
        """The :meth:`run` loop with host-time attribution.

        Identical event semantics to the plain loops (same dispatch
        order, same clock updates, same probe ordering) — only host-clock
        reads are interleaved.  Every nanosecond between loop entry and
        loop exit is charged to exactly one bucket: the event handler's
        subsystem, ``obs`` for invariant probes, or ``engine`` for the
        loop itself (queue ops, bound checks), so the attribution sums to
        the total by construction.
        """
        host = self._host
        clock = host.clock
        hook = self.event_hook
        processed = 0
        self._running = True
        t_mark = clock()
        try:
            if self._ref is not None:
                heap = self._ref.heap
                while heap:
                    if self._stop or (stop_when is not None and stop_when()):
                        self._stop = False
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    time = heap[0][0]
                    if until is not None and time > until:
                        self.now = until
                        break
                    time, _key, _seq, fn = heapq.heappop(heap)
                    self._queue_depth_sum += len(heap)
                    self.now = time
                    if hook is not None:
                        hook(time, fn)
                    t0 = clock()
                    fn()
                    t1 = clock()
                    processed += 1
                    if self._probes:
                        for probe in self._probes:
                            probe()
                        t2 = clock()
                        host.charge("obs", t2 - t1)
                    else:
                        t2 = t1
                    host.charge("engine", t0 - t_mark)
                    host.charge_event(fn, t1 - t0)
                    t_mark = t2
            else:
                cal = self._cal
                buckets = cal.buckets
                times = cal.times
                pool = cal.pool
                bucket: Optional[List] = None
                i = 0
                try:
                    while times:
                        if self._stop or (
                            stop_when is not None and stop_when()
                        ):
                            self._stop = False
                            break
                        if max_events is not None and processed >= max_events:
                            break
                        t = times[0]
                        if until is not None and t > until:
                            self.now = until
                            break
                        bucket = buckets[t]
                        self.now = t
                        i = 0
                        broke = False
                        while True:
                            fn = bucket[i]
                            i += 1
                            cal.size = size = cal.size - 1
                            self._queue_depth_sum += size
                            if hook is not None:
                                hook(t, fn)
                            t0 = clock()
                            fn()
                            t1 = clock()
                            processed += 1
                            if self._probes:
                                for probe in self._probes:
                                    probe()
                                t2 = clock()
                                host.charge("obs", t2 - t1)
                            else:
                                t2 = t1
                            host.charge("engine", t0 - t_mark)
                            host.charge_event(fn, t1 - t0)
                            t_mark = t2
                            if i == len(bucket):
                                break
                            if self._stop or (
                                stop_when is not None and stop_when()
                            ):
                                self._stop = False
                                del bucket[:i]
                                broke = True
                                break
                            if max_events is not None and processed >= max_events:
                                del bucket[:i]
                                broke = True
                                break
                        if broke:
                            break
                        heapq.heappop(times)
                        del buckets[t]
                        if len(pool) < cal.pool_cap:
                            bucket.clear()
                            pool.append(bucket)
                        bucket = None
                except BaseException:
                    if bucket is not None and i:
                        if i == len(bucket):
                            heapq.heappop(times)
                            del buckets[self.now]
                            if len(pool) < cal.pool_cap:
                                bucket.clear()
                                pool.append(bucket)
                        else:
                            del bucket[:i]
                    raise
        finally:
            self._running = False
            host.charge("engine", clock() - t_mark)
            self._events_processed += processed
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._ref) if self._ref is not None else self._cal.size

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------------ #
    # engine telemetry (event-queue internals)

    @property
    def heap_pushes(self) -> int:
        """Events ever pushed (``at`` count; the name predates the
        calendar queue and is kept for trajectory comparability)."""
        return self._seq

    @property
    def heap_pops(self) -> int:
        """Events popped and dispatched across all :meth:`run` calls."""
        return self._events_processed

    @property
    def queue_depth_mean(self) -> float:
        """Mean queue depth observed at dispatch (post-pop)."""
        if self._events_processed == 0:
            return 0.0
        return self._queue_depth_sum / self._events_processed

    def engine_stats(self) -> Dict[str, float]:
        """Event-queue internals as a flat dict (the ``engine`` block of
        a bench-trajectory cell; also harvested into ``engine.*``
        counters by :func:`repro.obs.instrument.harvest_machine_metrics`).
        """
        return {
            "events_processed": self._events_processed,
            "heap_pushes": self._seq,
            "heap_pops": self._events_processed,
            "queue_depth_peak": self.queue_depth_peak,
            "queue_depth_mean": self.queue_depth_mean,
            "pending_events": self.pending_events,
            "signal_waits": self.signal_waits,
            "signal_cancels": self.signal_cancels,
            "signal_fires": self.signal_fires,
        }

    # ------------------------------------------------------------------ #
    # host-time attribution

    def attach_host_profiler(self, host: Any) -> None:
        """Route :meth:`run` through the instrumented dispatch loop,
        charging host nanoseconds to ``host`` (a
        :class:`repro.obs.host.HostProfiler`).  With no profiler attached
        the plain loop runs and the hot path pays nothing."""
        if self._host is not None and self._host is not host:
            raise SimulationError("a host profiler is already attached")
        self._host = host

    def detach_host_profiler(self) -> None:
        """Return :meth:`run` to the uninstrumented loop.  Idempotent."""
        self._host = None

    # ------------------------------------------------------------------ #
    # probes

    def add_probe(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run after every processed event.  Probes are
        the pull-based hook invariant monitors attach to
        (:mod:`repro.check.invariants`); with none registered the event
        loop pays a single falsy check per event."""
        self._probes.append(fn)

    def remove_probe(self, fn: Callable[[], None]) -> bool:
        """Deregister a probe; returns whether it was registered."""
        try:
            self._probes.remove(fn)
        except ValueError:
            return False
        return True


class Signal:
    """A broadcast wake-up: callbacks registered with :meth:`wait` all run
    (in registration order) when :meth:`fire` is called.

    Waiters are one-shot; a waiter that wants to keep watching re-registers.
    ``cancel`` removes a waiter that is no longer interested (e.g. a thread
    that got preempted while spinning).
    """

    __slots__ = ("_sim", "_waiters", "_next_id")

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._waiters: Dict[int, Callable[[Any], None]] = {}
        self._next_id = 0

    def wait(self, fn: Callable[[Any], None]) -> int:
        """Register ``fn`` to be called with the fire payload. Returns a
        token usable with :meth:`cancel`."""
        token = self._next_id
        self._next_id += 1
        self._waiters[token] = fn
        self._sim.signal_waits += 1
        return token

    def cancel(self, token: int) -> bool:
        """Deregister a waiter; returns whether it was still registered."""
        if self._waiters.pop(token, None) is None:
            return False
        self._sim.signal_cancels += 1
        return True

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters *now* (same cycle). Returns the number
        of waiters woken.  Waiters registered during the firing are not
        woken by this call."""
        waiters = self._waiters
        self._waiters = {}
        self._sim.signal_fires += 1
        for fn in waiters.values():
            fn(payload)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)


class Server:
    """A resource that services requests one at a time, FIFO.

    ``request(service, fn)`` schedules ``fn`` to run once the server has
    finished all previously accepted work plus ``service`` cycles for this
    request.  Utilisation statistics are tracked for reporting (e.g. link
    saturation in the Model B interconnect).
    """

    __slots__ = ("_sim", "name", "_free_at", "busy_cycles", "requests")

    def __init__(self, sim: Simulator, name: str = "server") -> None:
        self._sim = sim
        self.name = name
        self._free_at: int = 0
        self.busy_cycles: int = 0
        self.requests: int = 0

    def request(self, service: int, fn: Callable[[], None]) -> int:
        """Enqueue work taking ``service`` (integer) cycles; ``fn`` runs
        at completion.  Returns the completion time."""
        if service < 0:
            raise SimulationError(f"negative service time {service}")
        sim = self._sim
        now = sim.now
        free = self._free_at
        done = (free if free > now else now) + service
        self._free_at = done
        self.busy_cycles += service
        self.requests += 1
        sim.at(done, fn)
        return done

    def queue_delay(self) -> int:
        """Cycles a request arriving now would wait before service begins."""
        return max(0, self._free_at - self._sim.now)

    def utilisation(self) -> float:
        """Fraction of elapsed simulated time this server was busy."""
        if self._sim.now == 0:
            return 0.0
        return min(1.0, self.busy_cycles / self._sim.now)
