"""Optional event tracing for protocol debugging and analysis.

A :class:`Tracer` collects timestamped records (network messages by
default) with bounded memory, supports address/type filters, and renders
ladder-style text dumps — the tool used to debug the LCU/LRT protocol
during development, shipped for anyone extending it.

Usage::

    tracer = Tracer.attach(machine, addr_filter={lock_addr})
    ... run ...
    print(tracer.render())
"""

from __future__ import annotations

import collections
from typing import Any, Deque, Iterable, List, NamedTuple, Optional, Set


class TraceRecord(NamedTuple):
    time: int
    src: Any
    dst: Any
    payload: Any

    def render(self) -> str:
        return (
            f"{self.time:>10d}  {_ep(self.src):>10s} -> {_ep(self.dst):<10s}"
            f"  {self.payload!r}"
        )


def _ep(ep: Any) -> str:
    if isinstance(ep, tuple) and len(ep) == 2:
        return f"{ep[0]}{ep[1]}"
    return str(ep)


class Tracer:
    """Bounded in-memory message trace attached to a machine's network."""

    def __init__(
        self,
        capacity: int = 10_000,
        addr_filter: Optional[Set[int]] = None,
        type_filter: Optional[Set[type]] = None,
    ) -> None:
        self.records: Deque[TraceRecord] = collections.deque(maxlen=capacity)
        self.addr_filter = addr_filter
        self.type_filter = type_filter
        self.dropped = 0
        self._net = None
        self._wrapper = None
        self._original = None

    # ------------------------------------------------------------------ #

    @classmethod
    def attach(cls, machine, **kwargs) -> "Tracer":
        """Wrap ``machine.net.send`` to record matching messages.  Call
        :meth:`detach` to restore the original send.

        Tracers nest: attaching a second tracer wraps the first one's
        wrapper, and detaching must happen in LIFO order.  Detaching out
        of order raises instead of silently leaving a stale wrapper
        installed (the historical behaviour)."""
        tracer = cls(**kwargs)
        net = machine.net
        original = net.send

        def traced_send(src, dst, payload, on_deliver=None):
            tracer.record(machine.sim.now, src, dst, payload)
            return original(src, dst, payload, on_deliver)

        net.send = traced_send
        tracer._net = net
        tracer._wrapper = traced_send
        tracer._original = original
        return tracer

    @property
    def attached(self) -> bool:
        return self._net is not None

    def detach(self) -> None:
        """Restore the ``send`` this tracer wrapped.  Idempotent; raises
        if another wrapper was attached on top and not yet detached."""
        if self._net is None:
            return
        if self._net.send is not self._wrapper:
            raise RuntimeError(
                "Tracer.detach out of order: another wrapper is attached "
                "on top of this tracer; detach tracers in LIFO order"
            )
        self._net.send = self._original
        self._net = self._wrapper = self._original = None

    # ------------------------------------------------------------------ #

    def record(self, time: int, src: Any, dst: Any, payload: Any) -> None:
        if self.addr_filter is not None:
            addr = getattr(payload, "addr", None)
            if addr not in self.addr_filter:
                self.dropped += 1
                return
        if self.type_filter is not None and not isinstance(
            payload, tuple(self.type_filter)
        ):
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, src, dst, payload))

    def between(self, t0: int, t1: int) -> List[TraceRecord]:
        return [r for r in self.records if t0 <= r.time <= t1]

    def of_type(self, *types: type) -> List[TraceRecord]:
        return [r for r in self.records if isinstance(r.payload, types)]

    def render(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        recs = list(records) if records is not None else list(self.records)
        if not recs:
            return "(no trace records)"
        return "\n".join(r.render() for r in recs)

    def __len__(self) -> int:
        return len(self.records)
