"""Lightweight statistics accumulators used by the harness and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Accumulator:
    """Streaming mean / variance / min / max accumulator (Welford)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self.min = x if self.min is None else min(self.min, x)
        self.max = x if self.max is None else max(self.max, x)

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def confidence95(self) -> float:
        """Half-width of a normal-approximation 95% confidence interval."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Accumulator(n={self.n}, mean={self.mean:.2f})"


def jain_fairness(values: Iterable[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = maximally unfair.

    Used to quantify the fairness claims of the paper (LCU's FIFO-ish
    queueing vs SSB's reader preference / TAS's coherence capture).
    """
    vals: List[float] = list(values)
    if not vals:
        return 1.0
    s = sum(vals)
    sq = sum(v * v for v in vals)
    if sq == 0:
        return 1.0
    return (s * s) / (len(vals) * sq)


class Histogram:
    """Fixed-bucket histogram for latency distributions."""

    def __init__(self, bucket_width: int = 100) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.bucket_width = bucket_width
        self.buckets: Dict[int, int] = {}
        self.acc = Accumulator()

    def add(self, x: float) -> None:
        self.acc.add(x)
        b = int(x // self.bucket_width)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    def percentile(self, p: float) -> float:
        """Approximate percentile (bucket upper bound), p in [0, 100]."""
        if not self.buckets:
            return 0.0
        target = self.acc.n * p / 100.0
        seen = 0
        for b in sorted(self.buckets):
            seen += self.buckets[b]
            if seen >= target:
                return (b + 1) * self.bucket_width
        return (max(self.buckets) + 1) * self.bucket_width
