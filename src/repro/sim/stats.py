"""Lightweight statistics accumulators used by the harness and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Accumulator:
    """Streaming mean / variance / min / max accumulator (Welford)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self.min = x if self.min is None else min(self.min, x)
        self.max = x if self.max is None else max(self.max, x)

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "Accumulator") -> "Accumulator":
        """Fold ``other``'s samples into this accumulator (Chan et al.'s
        parallel combine), so multi-seed harness runs can merge statistics
        without re-streaming raw values.  Returns ``self``."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.n * other.n / n
        self._mean += delta * other.n / n
        self.n = n
        self.total += other.total
        self.min = min(self.min, other.min)  # type: ignore[type-var]
        self.max = max(self.max, other.max)  # type: ignore[type-var]
        return self

    def to_dict(self) -> Dict[str, object]:
        """Exact-state dump (full float precision, not a rounded summary)
        so a merge can continue in another process: ``from_dict(to_dict())``
        reproduces the accumulator bit-for-bit.  Used by the multiprocess
        sweep runner to ship per-shard moments back to the parent."""
        return {
            "n": self.n,
            "mean": self._mean,
            "m2": self._m2,
            "min": self.min,
            "max": self.max,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "Accumulator":
        acc = cls()
        acc.n = d["n"]
        acc._mean = d["mean"]
        acc._m2 = d["m2"]
        acc.min = d["min"]
        acc.max = d["max"]
        acc.total = d["total"]
        return acc

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def confidence95(self) -> float:
        """Half-width of a normal-approximation 95% confidence interval."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Accumulator(n={self.n}, mean={self.mean:.2f})"


def dispersion(values: Iterable[float]) -> Dict[str, float]:
    """Best-of-N summary for repeated *host* timings.

    The repo's simulated quantities are deterministic, but host
    wall-clock is not: ``repro bench`` repeats every cell and records
    best (the least-interfered-with run, the number to optimise),
    mean/stdev (the noise), and the relative spread ``(max - min) /
    best`` — a large spread means the machine was busy and the record
    should be trusted less.
    """
    acc = Accumulator()
    acc.extend(values)
    if acc.n == 0:
        return {"n": 0, "best": 0.0, "mean": 0.0, "stdev": 0.0,
                "max": 0.0, "rel_spread": 0.0}
    best = acc.min or 0.0
    return {
        "n": acc.n,
        "best": best,
        "mean": acc.mean,
        "stdev": acc.stdev,
        "max": acc.max,
        "rel_spread": ((acc.max - acc.min) / best) if best > 0 else 0.0,
    }


def jain_fairness(values: Iterable[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = maximally unfair.

    Used to quantify the fairness claims of the paper (LCU's FIFO-ish
    queueing vs SSB's reader preference / TAS's coherence capture).
    """
    vals: List[float] = list(values)
    if not vals:
        return 1.0
    s = sum(vals)
    sq = sum(v * v for v in vals)
    if sq == 0:
        return 1.0
    # Cauchy-Schwarz guarantees (Σx)² ≤ n·Σx² exactly; float rounding can
    # still nudge the quotient past 1.0, so clamp to the mathematical range.
    return min(1.0, (s * s) / (len(vals) * sq))


class Histogram:
    """Fixed-bucket histogram for latency distributions."""

    def __init__(self, bucket_width: int = 100) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.bucket_width = bucket_width
        self.buckets: Dict[int, int] = {}
        self.acc = Accumulator()

    def add(self, x: float) -> None:
        self.acc.add(x)
        b = int(x // self.bucket_width)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s buckets and moments into this histogram.
        Both histograms must share the same bucket width."""
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"cannot merge histograms with bucket widths "
                f"{self.bucket_width} and {other.bucket_width}"
            )
        for b, count in other.buckets.items():
            self.buckets[b] = self.buckets.get(b, 0) + count
        self.acc.merge(other.acc)
        return self

    def to_dict(self) -> Dict[str, object]:
        """Exact-state dump (buckets + accumulator moments), the mergeable
        counterpart of the lossy :meth:`summary`.  Bucket keys are emitted
        as strings so the dump survives a JSON round trip."""
        return {
            "bucket_width": self.bucket_width,
            "buckets": {str(b): c for b, c in sorted(self.buckets.items())},
            "acc": self.acc.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "Histogram":
        h = cls(bucket_width=d["bucket_width"])
        h.buckets = {int(b): c for b, c in d["buckets"].items()}
        h.acc = Accumulator.from_dict(d["acc"])
        return h

    @property
    def empty(self) -> bool:
        return self.acc.n == 0

    def percentile(self, p: float) -> float:
        """Approximate percentile, p in [0, 100], interpolating linearly
        within the bucket the target rank falls into.

        Raises ``ValueError`` on an empty histogram (a percentile of
        nothing is undefined; 0.0 would be silently wrong) and for p
        outside [0, 100].  Callers that want a sentinel should check
        :attr:`empty` first."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile p must be in [0, 100], got {p}")
        if not self.buckets:
            raise ValueError("percentile of an empty histogram is undefined")
        target = self.acc.n * p / 100.0
        seen = 0
        for b in sorted(self.buckets):
            count = self.buckets[b]
            if seen + count >= target:
                frac = (target - seen) / count if count else 1.0
                return (b + max(0.0, min(1.0, frac))) * self.bucket_width
            seen += count
        return (max(self.buckets) + 1) * self.bucket_width

    def summary(self, percentiles: Iterable[float] = (50, 90, 95, 99)) -> Dict:
        """JSON-friendly summary used by run reports.  An empty histogram
        reports an empty ``percentiles`` table rather than fabricating
        zeros that would read as real (excellent) latencies."""
        return {
            "count": self.acc.n,
            "mean": self.acc.mean,
            "min": self.acc.min if self.acc.min is not None else 0.0,
            "max": self.acc.max if self.acc.max is not None else 0.0,
            "bucket_width": self.bucket_width,
            "percentiles": {} if self.empty else {
                f"p{g:g}": self.percentile(g) for g in percentiles
            },
        }
