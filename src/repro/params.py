"""Machine model parameters (paper Figure 8).

Two machine models are evaluated in the paper:

* **Model A** ("in-order"): 32 single-core chips behind a hierarchical
  switch network that provides a global order for requests — latencies
  resemble a SunFire E25K.
* **Model B** ("m-CMP"): a 4-chip multi-CMP based on the Sun T5440 — each
  chip has 8 cores, an 8-banked shared L2 and 2 memory controllers; the 4
  chips connect through coherence hubs with *finite bandwidth* and no
  global order.

All latencies below are taken from Figure 8 of the paper.  One-way network
latencies are derived from the round-trip memory figures (the paper reports
round trips including miss penalties).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Complete description of one simulated machine model."""

    name: str
    chips: int
    cores_per_chip: int

    # cache / memory latencies (cycles)
    l1_latency: int
    l2_latency: int
    local_mem_latency: int
    remote_mem_latency: int

    # LCU / LRT hardware (the paper's proposal)
    lcu_ordinary_entries: int
    lcu_latency: int
    num_lrts: int
    lrt_entries: int
    lrt_assoc: int
    lrt_latency: int

    # interconnect model
    intra_chip_hop: int          # one-way latency between on-chip endpoints
    inter_chip_hop: int          # one-way latency across chips
    link_service: int            # per-message occupancy of a link (1/bandwidth)
    inter_chip_link_service: int  # per-message occupancy of an inter-chip hub link
    global_order: bool           # Model A's hierarchical switch orders requests

    # OS model
    timeslice: int = 200_000     # preemption quantum in cycles

    # LCU behaviour knobs
    lcu_grant_timeout: int = 300     # cycles an unclaimed grant waits before
                                     # being forwarded (suspension/migration).
                                     # A short hardware timer: long enough for
                                     # a running spinner to collect its grant
                                     # (a few LCU accesses), short enough that
                                     # dead queue nodes left by preempted or
                                     # migrated threads cost little lock idle
                                     # time (see the grant-timeout ablation).
    lrt_reservation_timeout: int = 50_000
    # Free Lock Table (the paper's Section IV-C future-work biasing unit):
    # number of locks each LCU may keep parked locally after an
    # uncontended release.  0 disables the FLT (the paper's base design).
    flt_entries: int = 0

    # cache line size (bytes); addresses are byte addresses
    line_size: int = 64

    @property
    def cores(self) -> int:
        return self.chips * self.cores_per_chip

    def chip_of_core(self, core: int) -> int:
        return core // self.cores_per_chip

    def validate(self) -> None:
        if self.chips <= 0 or self.cores_per_chip <= 0:
            raise ValueError("need at least one chip and one core per chip")
        if self.num_lrts <= 0:
            raise ValueError("need at least one LRT")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a power of two")


def model_a(**overrides) -> MachineConfig:
    """Paper Model A: 32 single-core chips, hierarchical switch, MESI."""
    base = dict(
        name="A",
        chips=32,
        cores_per_chip=1,
        l1_latency=3,
        l2_latency=10,
        local_mem_latency=186,
        remote_mem_latency=186,
        lcu_ordinary_entries=8,
        lcu_latency=3,
        num_lrts=32,
        lrt_entries=512,
        lrt_assoc=16,
        lrt_latency=6,
        intra_chip_hop=25,
        inter_chip_hop=25,   # model A is flat: every hop crosses the switch
        link_service=2,
        inter_chip_link_service=2,
        global_order=True,
    )
    base.update(overrides)
    cfg = MachineConfig(**base)
    cfg.validate()
    return cfg


def model_b(**overrides) -> MachineConfig:
    """Paper Model B: 4 x 8-core CMPs (T5440-like), hub-connected."""
    base = dict(
        name="B",
        chips=4,
        cores_per_chip=8,
        l1_latency=3,
        l2_latency=16,
        local_mem_latency=210,
        remote_mem_latency=315,
        lcu_ordinary_entries=16,
        lcu_latency=3,
        num_lrts=8,          # 2 memory controllers per chip
        lrt_entries=512,
        lrt_assoc=16,
        lrt_latency=6,
        intra_chip_hop=8,
        inter_chip_hop=55,
        link_service=1,
        inter_chip_link_service=20,  # hub links are the scarce resource
        global_order=False,
    )
    base.update(overrides)
    cfg = MachineConfig(**base)
    cfg.validate()
    return cfg


def small_test_model(**overrides) -> MachineConfig:
    """A small, fast configuration for unit tests (not from the paper)."""
    base = dict(
        name="T",
        chips=1,
        cores_per_chip=4,
        l1_latency=1,
        l2_latency=4,
        local_mem_latency=30,
        remote_mem_latency=30,
        lcu_ordinary_entries=4,
        lcu_latency=1,
        num_lrts=2,
        lrt_entries=16,
        lrt_assoc=4,
        lrt_latency=2,
        intra_chip_hop=5,
        inter_chip_hop=5,
        link_service=1,
        inter_chip_link_service=1,
        global_order=True,
        lcu_grant_timeout=500,
        lrt_reservation_timeout=5_000,
    )
    base.update(overrides)
    cfg = MachineConfig(**base)
    cfg.validate()
    return cfg


def figure8_rows(configs: Optional[List[MachineConfig]] = None) -> List[List[str]]:
    """Rows of the paper's Figure 8 parameter table, for the harness."""
    if configs is None:
        configs = [model_a(), model_b()]
    rows = [["Parameter"] + [f"Model {c.name}" for c in configs]]

    def row(label, fn):
        rows.append([label] + [str(fn(c)) for c in configs])

    row("Chips", lambda c: c.chips)
    row("Cores", lambda c: f"{c.cores} ({c.chips}x{c.cores_per_chip})")
    row("L1 access latency (cycles)", lambda c: c.l1_latency)
    row("L2 access latency (cycles)", lambda c: c.l2_latency)
    row("Local mem. latency (cycles)", lambda c: c.local_mem_latency)
    row("Remote mem. latency (cycles)", lambda c: c.remote_mem_latency)
    row("LCU entries", lambda c: f"{c.lcu_ordinary_entries}+2")
    row("LCU lat (cycles)", lambda c: c.lcu_latency)
    row("LRTs", lambda c: c.num_lrts)
    row("per-LRT entries", lambda c: c.lrt_entries)
    row("LRT latency", lambda c: c.lrt_latency)
    return rows
