"""Interconnect models for the two machine configurations."""

from repro.net.network import Endpoint, Network

__all__ = ["Endpoint", "Network"]
