"""Message-passing interconnect with queueing and finite link bandwidth.

Two topologies are modelled through one class, parameterised by the
machine config:

* **Model A** — a hierarchical switch: every message crosses a per-endpoint
  access link and a shared root stage.  The root stage gives the global
  ordering point GEMS approximates for model A; it has generous bandwidth,
  so model A contention shows up mostly as latency, not saturation.

* **Model B** — per-chip crossbars for intra-chip traffic and four
  coherence-hub links for inter-chip traffic.  The hub links have a much
  larger per-message occupancy (``inter_chip_link_service``), so protocols
  that busy-wait with *remote* messages (the SSB's retry loop) saturate
  them — the effect behind the paper's Figure 9b.

Messages between a fixed (src, dst) pair are delivered FIFO — all messages
take the same server chain with constant propagation, which is the network
ordering assumption the LCU/LRT state machines rely on (the paper notes
transient states would otherwise be needed).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.params import MachineConfig
from repro.sim.engine import Server, Simulator

# An endpoint is any hashable id; the machine uses ("core", i) and ("mc", j).
Endpoint = Tuple[str, int]


class Network:
    """Routes payloads between registered endpoints, charging latency and
    link occupancy along the way."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        chip_of: Callable[[Endpoint], int],
    ) -> None:
        self._sim = sim
        self._config = config
        self._chip_of = chip_of
        self._handlers: Dict[Endpoint, Callable[[Endpoint, Any], None]] = {}

        # Fabric resources.
        self._access: Dict[Endpoint, Server] = {}
        self._crossbars: Dict[int, Server] = {
            c: Server(sim, f"xbar{c}") for c in range(config.chips)
        }
        self._hub_out: Dict[int, Server] = {
            c: Server(sim, f"hub_out{c}") for c in range(config.chips)
        }
        self._hub_in: Dict[int, Server] = {
            c: Server(sim, f"hub_in{c}") for c in range(config.chips)
        }
        # Model A's root switch (ordering point).  Only used when
        # config.global_order is set.
        self._root = Server(sim, "root_switch")

        self.messages_sent = 0
        self.inter_chip_messages = 0
        #: optional hook ``fn(src, dst, payload, inter_chip)`` observing
        #: every injection — the profiler's per-lock message attribution
        #: point (payloads carrying an ``addr`` identify their lock)
        self.probe: Optional[Callable[[Endpoint, Endpoint, Any, bool], None]] = None

    # ------------------------------------------------------------------ #

    def register(
        self, endpoint: Endpoint, handler: Callable[[Endpoint, Any], None]
    ) -> None:
        """Attach ``handler(src, payload)`` to ``endpoint``."""
        if endpoint in self._handlers:
            raise ValueError(f"endpoint {endpoint} already registered")
        self._handlers[endpoint] = handler
        self._access[endpoint] = Server(self._sim, f"acc{endpoint}")

    def is_registered(self, endpoint: Endpoint) -> bool:
        return endpoint in self._handlers

    # ------------------------------------------------------------------ #

    def latency_estimate(self, src: Endpoint, dst: Endpoint) -> int:
        """Uncongested one-way latency between two endpoints."""
        if src == dst:
            return 1
        if self._chip_of(src) == self._chip_of(dst) and not self._config.global_order:
            return self._config.intra_chip_hop
        if self._chip_of(src) == self._chip_of(dst):
            return self._config.intra_chip_hop
        return self._config.inter_chip_hop

    def send(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        on_deliver: Optional[Callable[[], None]] = None,
    ) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        The destination handler runs at delivery time; ``on_deliver`` (if
        given) runs right after it.  Self-sends are delivered after one
        cycle without touching the fabric.
        """
        if dst not in self._handlers:
            raise KeyError(f"no handler registered for endpoint {dst}")
        self.messages_sent += 1
        if self.probe is not None:
            self.probe(
                src, dst, payload,
                src != dst and self._chip_of(src) != self._chip_of(dst),
            )

        def deliver() -> None:
            self._handlers[dst](src, payload)
            if on_deliver is not None:
                on_deliver()

        if src == dst:
            self._sim.after(1, deliver)
            return

        cfg = self._config
        same_chip = self._chip_of(src) == self._chip_of(dst)
        prop = self.latency_estimate(src, dst)

        # Chain of servers the message occupies, in order.
        chain = [self._access.get(src)]
        if cfg.global_order:
            chain.append(self._root)
        elif same_chip:
            chain.append(self._crossbars[self._chip_of(src)])
        else:
            self.inter_chip_messages += 1
            chain.append(self._crossbars[self._chip_of(src)])
            chain.append(self._hub_out[self._chip_of(src)])
            chain.append(self._hub_in[self._chip_of(dst)])
        chain.append(self._access.get(dst))
        servers = [s for s in chain if s is not None]

        def step(i: int) -> None:
            if i == len(servers):
                self._sim.after(prop, deliver)
                return
            server = servers[i]
            service = cfg.link_service
            if server.name.startswith("hub"):
                service = cfg.inter_chip_link_service
            server.request(service, lambda: step(i + 1))

        step(0)

    # ------------------------------------------------------------------ #
    # introspection used by the harness and the telemetry layer

    def fabric_servers(self):
        """Yield ``(group, label, Server)`` for every fabric resource —
        the telemetry layer's inventory (``repro.obs.instrument``)."""
        for ep in sorted(self._access):
            yield ("access", f"{ep[0]}{ep[1]}", self._access[ep])
        for c in sorted(self._crossbars):
            yield ("xbar", str(c), self._crossbars[c])
        for c in sorted(self._hub_out):
            yield ("hub_out", str(c), self._hub_out[c])
        for c in sorted(self._hub_in):
            yield ("hub_in", str(c), self._hub_in[c])
        yield ("root", "", self._root)

    def hub_utilisation(self) -> float:
        """Mean utilisation of the inter-chip hub links (Model B)."""
        hubs = list(self._hub_out.values()) + list(self._hub_in.values())
        if not hubs:
            return 0.0
        return sum(h.utilisation() for h in hubs) / len(hubs)

    def root_utilisation(self) -> float:
        return self._root.utilisation()
