"""Message-passing interconnect with queueing and finite link bandwidth.

Two topologies are modelled through one class, parameterised by the
machine config:

* **Model A** — a hierarchical switch: every message crosses a per-endpoint
  access link and a shared root stage.  The root stage gives the global
  ordering point GEMS approximates for model A; it has generous bandwidth,
  so model A contention shows up mostly as latency, not saturation.

* **Model B** — per-chip crossbars for intra-chip traffic and four
  coherence-hub links for inter-chip traffic.  The hub links have a much
  larger per-message occupancy (``inter_chip_link_service``), so protocols
  that busy-wait with *remote* messages (the SSB's retry loop) saturate
  them — the effect behind the paper's Figure 9b.

Mechanically, each message rides one slotted :class:`_Transit` frame
object through the fabric.  The sequence of servers a (src, dst) pair
occupies — and the service cycles each charges — never changes, so it is
resolved once into a cached *route* (a tuple of ``(server, service)``
hops plus the propagation delay); the transit frame then walks the route
by re-scheduling itself at each hop completion.  Drained frames are
recycled through a free list.  This replaces the closure-per-hop
dispatch the hub previously allocated per message (~5 closures/message)
with zero per-message allocations in the steady state, while keeping the
event schedule bit-identical: same ``Server.request`` calls at the same
cycles in the same order.

Messages between a fixed (src, dst) pair are delivered FIFO — this is the
network ordering assumption the LCU/LRT state machines rely on (the paper
notes transient states would otherwise be needed).  Under the default
*stable* event order (``Simulator.stable_order``) the guarantee holds by
construction: FIFO servers, constant per-pair propagation and FIFO
same-cycle event dispatch cannot reorder a pair's messages, so the wire
delivers directly.  Under a perturbed ``tiebreak_seed`` two same-cycle
arrivals on one pair *can* invert — e.g. a pair of one-cycle self-sends —
so there the guarantee is *enforced*: every message is stamped with a
per-(src, dst) sequence number at fabric entry and the delivery stage
holds back any arrival that would overtake a lower-stamped one (same
cycles, same healed order as the stable schedule).

Fault injection (``repro.faults``) plugs in at two points, both inert
when unused:

* ``fault_filter`` — called at fabric entry for every non-self message;
  returns the (possibly empty) list of ``(extra_delay, payload)`` copies
  to actually transmit.  Drop/duplicate/delay faults live here, *before*
  the FIFO stamp is assigned, so a delayed copy is genuinely reordered
  relative to later traffic.
* a reliable-delivery layer (:mod:`repro.net.reliable`) that wraps
  covered traffic in sequence-numbered frames with ack/retransmit, so
  the protocol survives what the filter does to the wire.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.params import MachineConfig
from repro.sim.engine import Server, Simulator

# An endpoint is any hashable id; the machine uses ("core", i) and ("mc", j).
Endpoint = Tuple[str, int]

#: fault filter: (src, dst, payload) -> iterable of (extra_delay, payload)
#: copies to transmit.  Empty iterable == message dropped on the wire.
FaultFilter = Callable[[Endpoint, Endpoint, Any], Iterable[Tuple[int, Any]]]

#: a resolved route: ((server, service) hops, propagation delay,
#: crosses-a-chip-boundary flag)
Route = Tuple[Tuple[Tuple[Server, int], ...], int, bool]


class _Transit:
    """One in-flight message: a slotted, reusable event frame.

    The frame is its own event callback: each invocation advances one
    phase — occupy the next route hop, then wait out the propagation
    delay, then hand off to delivery.  ``hop`` counts phases: values
    ``0..len(hops)-1`` are server hops, ``len(hops)`` is propagation,
    beyond that is delivery.
    """

    __slots__ = (
        "net", "src", "dst", "payload", "on_deliver", "hops", "prop",
        "hop", "stamp",
    )

    def __init__(self, net: "Network") -> None:
        self.net = net
        self.src: Any = None
        self.dst: Any = None
        self.payload: Any = None
        self.on_deliver: Optional[Callable[[], None]] = None
        self.hops: Tuple[Tuple[Server, int], ...] = ()
        self.prop = 0
        self.hop = 0
        self.stamp = 0

    def __call__(self) -> None:
        hop = self.hop
        hops = self.hops
        if hop < len(hops):
            self.hop = hop + 1
            server, service = hops[hop]
            server.request(service, self)
            return
        if hop == len(hops):
            self.hop = hop + 1
            self.net._sim.after(self.prop, self)
            return
        self.net._finish(self)


class Network:
    """Routes payloads between registered endpoints, charging latency and
    link occupancy along the way."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        chip_of: Callable[[Endpoint], int],
    ) -> None:
        self._sim = sim
        self._config = config
        self._chip_of = chip_of
        self._handlers: Dict[Endpoint, Callable[[Endpoint, Any], None]] = {}

        # Fabric resources.
        self._access: Dict[Endpoint, Server] = {}
        self._crossbars: Dict[int, Server] = {
            c: Server(sim, f"xbar{c}") for c in range(config.chips)
        }
        self._hub_out: Dict[int, Server] = {
            c: Server(sim, f"hub_out{c}") for c in range(config.chips)
        }
        self._hub_in: Dict[int, Server] = {
            c: Server(sim, f"hub_in{c}") for c in range(config.chips)
        }
        # Model A's root switch (ordering point).  Only used when
        # config.global_order is set.
        self._root = Server(sim, "root_switch")

        self.messages_sent = 0
        self.inter_chip_messages = 0
        #: same-cycle arrival inversions healed by the per-pair FIFO stage
        #: (only ever non-zero under a perturbed ``tiebreak_seed``)
        self.reorders_healed = 0
        #: optional hook ``fn(src, dst, payload, inter_chip)`` observing
        #: every injection — the profiler's per-lock message attribution
        #: point (payloads carrying an ``addr`` identify their lock)
        self.probe: Optional[Callable[[Endpoint, Endpoint, Any, bool], None]] = None
        #: fault-injection hook (see module docstring); None == no faults
        self.fault_filter: Optional[FaultFilter] = None
        # reliable-delivery layer (repro.net.reliable); None == raw wire
        self._reliable = None

        # Resolved (src, dst) -> Route cache and the transit free list.
        self._routes: Dict[Tuple[Endpoint, Endpoint], Route] = {}
        self._transit_pool: list = []

        # Per-(src, dst) FIFO enforcement (tiebreak runs only — see
        # module docstring): fabric-entry stamps, the next stamp each
        # pair expects to deliver, and held-back arrivals.
        self._fifo_enforced = not sim.stable_order
        self._pair_stamp: Dict[Tuple[Endpoint, Endpoint], int] = {}
        self._pair_expect: Dict[Tuple[Endpoint, Endpoint], int] = {}
        self._pair_stash: Dict[
            Tuple[Endpoint, Endpoint], Dict[int, "_Transit"]
        ] = {}

    # ------------------------------------------------------------------ #

    def register(
        self, endpoint: Endpoint, handler: Callable[[Endpoint, Any], None]
    ) -> None:
        """Attach ``handler(src, payload)`` to ``endpoint``."""
        if endpoint in self._handlers:
            raise ValueError(f"endpoint {endpoint} already registered")
        self._handlers[endpoint] = handler
        self._access[endpoint] = Server(self._sim, f"acc{endpoint}")
        # a late registration grows the fabric: resolved routes that
        # predate this endpoint's access link are stale
        self._routes.clear()

    def is_registered(self, endpoint: Endpoint) -> bool:
        return endpoint in self._handlers

    def set_reliable(self, layer) -> None:
        """Install (or remove, with ``None``) the reliable-delivery layer."""
        self._reliable = layer

    @property
    def reliable(self):
        return self._reliable

    # ------------------------------------------------------------------ #

    def latency_estimate(self, src: Endpoint, dst: Endpoint) -> int:
        """Uncongested one-way latency between two endpoints."""
        if src == dst:
            return 1
        if self._chip_of(src) == self._chip_of(dst):
            return self._config.intra_chip_hop
        return self._config.inter_chip_hop

    def send(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        on_deliver: Optional[Callable[[], None]] = None,
    ) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        The destination handler runs at delivery time; ``on_deliver`` (if
        given) runs right after it.  Self-sends are delivered after one
        cycle without touching the fabric.

        This is the *logical* send: tracers wrap it, and the reliable
        layer (when armed) takes over from here.  Frames, acks and
        retransmissions enter below it through :meth:`_inject`.
        """
        if dst not in self._handlers:
            raise KeyError(f"no handler registered for endpoint {dst}")
        if self._reliable is not None and self._reliable.covers(
            src, dst, payload
        ):
            self._reliable.send(src, dst, payload, on_deliver)
            return
        self._inject(src, dst, payload, on_deliver)

    # ------------------------------------------------------------------ #
    # wire layer

    def _inject(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        on_deliver: Optional[Callable[[], None]] = None,
    ) -> None:
        """Put one message on the wire (fault filter applies here)."""
        self.messages_sent += 1
        if self.probe is not None:
            self.probe(
                src, dst, payload,
                src != dst and self._chip_of(src) != self._chip_of(dst),
            )

        if self.fault_filter is not None and src != dst:
            for extra_delay, copy in list(
                self.fault_filter(src, dst, payload)
            ):
                if extra_delay > 0:
                    self._sim.after(
                        extra_delay,
                        lambda c=copy: self._transmit(src, dst, c, on_deliver),
                    )
                else:
                    self._transmit(src, dst, copy, on_deliver)
            return
        self._transmit(src, dst, payload, on_deliver)

    def _transmit(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        on_deliver: Optional[Callable[[], None]],
    ) -> None:
        """Carry ``payload`` through the fabric on a transit frame.  The
        per-pair FIFO stamp (tiebreak runs) is assigned *here* — after
        any fault-injected delay — so delayed copies are genuinely
        reordered rather than holding back the pair."""
        route = self._routes.get((src, dst))
        if route is None:
            route = self._resolve_route(src, dst)
        hops, prop, inter = route
        if inter:
            self.inter_chip_messages += 1

        pool = self._transit_pool
        tr = pool.pop() if pool else _Transit(self)
        tr.src = src
        tr.dst = dst
        tr.payload = payload
        tr.on_deliver = on_deliver
        tr.hops = hops
        tr.prop = prop
        tr.hop = 0
        if self._fifo_enforced:
            pair = (src, dst)
            stamp = self._pair_stamp.get(pair, 0)
            self._pair_stamp[pair] = stamp + 1
            tr.stamp = stamp
        tr()

    def _resolve_route(self, src: Endpoint, dst: Endpoint) -> Route:
        """Build and cache the (src, dst) route: the server chain the
        message occupies in order, each with its service time, plus the
        propagation delay added after the last hop."""
        cfg = self._config
        if src == dst:
            route: Route = ((), 1, False)
        else:
            same_chip = self._chip_of(src) == self._chip_of(dst)
            hops = []
            acc = self._access.get(src)
            if acc is not None:
                hops.append((acc, cfg.link_service))
            if cfg.global_order:
                hops.append((self._root, cfg.link_service))
            elif same_chip:
                hops.append((self._crossbars[self._chip_of(src)],
                             cfg.link_service))
            else:
                hops.append((self._crossbars[self._chip_of(src)],
                             cfg.link_service))
                hops.append((self._hub_out[self._chip_of(src)],
                             cfg.inter_chip_link_service))
                hops.append((self._hub_in[self._chip_of(dst)],
                             cfg.inter_chip_link_service))
            acc = self._access.get(dst)
            if acc is not None:
                hops.append((acc, cfg.link_service))
            prop = (cfg.intra_chip_hop if same_chip else cfg.inter_chip_hop)
            # the inter-chip counter only ticks for hub traffic (model B);
            # model A's root path is a latency effect, not hub occupancy
            route = (tuple(hops), prop,
                     not same_chip and not cfg.global_order)
        self._routes[(src, dst)] = route
        return route

    def _finish(self, tr: "_Transit") -> None:
        """A transit frame cleared its last hop and the propagation
        delay: hand off to delivery (directly, or via the FIFO stage on
        tiebreak runs)."""
        if self._fifo_enforced:
            self._arrive(tr)
            return
        self._deliver(tr)

    def _arrive(self, tr: "_Transit") -> None:
        """Per-pair FIFO stage: deliver in fabric-entry order.

        Messages on one pair reach here with non-decreasing arrival
        cycles (FIFO servers, constant propagation), so any inversion is
        same-cycle tie-break noise — the held-back message's predecessor
        is already queued at this very cycle and the stash drains before
        the clock advances.
        """
        pair = (tr.src, tr.dst)
        expect = self._pair_expect.get(pair, 0)
        if tr.stamp != expect:
            self.reorders_healed += 1
            self._pair_stash.setdefault(pair, {})[tr.stamp] = tr
            return
        self._deliver(tr)
        expect += 1
        stash = self._pair_stash.get(pair)
        if stash:
            while expect in stash:
                nxt = stash.pop(expect)
                expect += 1
                # update before delivering: the handler may send again
                self._pair_expect[pair] = expect
                self._deliver(nxt)
        self._pair_expect[pair] = expect

    def _deliver(self, tr: "_Transit") -> None:
        src = tr.src
        dst = tr.dst
        payload = tr.payload
        on_deliver = tr.on_deliver
        # The frame is fully consumed: clear its references and recycle
        # it *before* running the handler, which may send again.
        tr.src = tr.dst = tr.payload = None
        tr.on_deliver = None
        tr.hops = ()
        if len(self._transit_pool) < 64:
            self._transit_pool.append(tr)
        if self._reliable is not None and self._reliable.intercepts(payload):
            self._reliable.on_wire(src, dst, payload)
            return
        self._handlers[dst](src, payload)
        if on_deliver is not None:
            on_deliver()

    # ------------------------------------------------------------------ #
    # introspection used by the harness and the telemetry layer

    def fabric_servers(self):
        """Yield ``(group, label, Server)`` for every fabric resource —
        the telemetry layer's inventory (``repro.obs.instrument``)."""
        for ep in sorted(self._access):
            yield ("access", f"{ep[0]}{ep[1]}", self._access[ep])
        for c in sorted(self._crossbars):
            yield ("xbar", str(c), self._crossbars[c])
        for c in sorted(self._hub_out):
            yield ("hub_out", str(c), self._hub_out[c])
        for c in sorted(self._hub_in):
            yield ("hub_in", str(c), self._hub_in[c])
        yield ("root", "", self._root)

    def hub_utilisation(self) -> float:
        """Mean utilisation of the inter-chip hub links (Model B)."""
        hubs = list(self._hub_out.values()) + list(self._hub_in.values())
        if not hubs:
            return 0.0
        return sum(h.utilisation() for h in hubs) / len(hubs)

    def root_utilisation(self) -> float:
        return self._root.utilisation()
