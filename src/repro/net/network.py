"""Message-passing interconnect with queueing and finite link bandwidth.

Two topologies are modelled through one class, parameterised by the
machine config:

* **Model A** — a hierarchical switch: every message crosses a per-endpoint
  access link and a shared root stage.  The root stage gives the global
  ordering point GEMS approximates for model A; it has generous bandwidth,
  so model A contention shows up mostly as latency, not saturation.

* **Model B** — per-chip crossbars for intra-chip traffic and four
  coherence-hub links for inter-chip traffic.  The hub links have a much
  larger per-message occupancy (``inter_chip_link_service``), so protocols
  that busy-wait with *remote* messages (the SSB's retry loop) saturate
  them — the effect behind the paper's Figure 9b.

Messages between a fixed (src, dst) pair are delivered FIFO — this is the
network ordering assumption the LCU/LRT state machines rely on (the paper
notes transient states would otherwise be needed).  The guarantee is
*enforced*, not emergent: every message is stamped with a per-(src, dst)
sequence number when it enters the fabric, and the delivery stage holds
back any arrival that would overtake a lower-stamped one.  Without the
stage, a perturbed event tie-break (``tiebreak_seed``) could invert two
same-cycle arrivals on one pair — e.g. a pair of one-cycle self-sends —
and break the protocol in ways no real fabric can.  With the default
stable tie-break the stage is a pure pass-through (same cycles, same
order), so baseline results are unchanged.

Fault injection (``repro.faults``) plugs in at two points, both inert
when unused:

* ``fault_filter`` — called at fabric entry for every non-self message;
  returns the (possibly empty) list of ``(extra_delay, payload)`` copies
  to actually transmit.  Drop/duplicate/delay faults live here, *before*
  the FIFO stamp is assigned, so a delayed copy is genuinely reordered
  relative to later traffic.
* a reliable-delivery layer (:mod:`repro.net.reliable`) that wraps
  covered traffic in sequence-numbered frames with ack/retransmit, so
  the protocol survives what the filter does to the wire.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.params import MachineConfig
from repro.sim.engine import Server, Simulator

# An endpoint is any hashable id; the machine uses ("core", i) and ("mc", j).
Endpoint = Tuple[str, int]

#: fault filter: (src, dst, payload) -> iterable of (extra_delay, payload)
#: copies to transmit.  Empty iterable == message dropped on the wire.
FaultFilter = Callable[[Endpoint, Endpoint, Any], Iterable[Tuple[int, Any]]]


class Network:
    """Routes payloads between registered endpoints, charging latency and
    link occupancy along the way."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        chip_of: Callable[[Endpoint], int],
    ) -> None:
        self._sim = sim
        self._config = config
        self._chip_of = chip_of
        self._handlers: Dict[Endpoint, Callable[[Endpoint, Any], None]] = {}

        # Fabric resources.
        self._access: Dict[Endpoint, Server] = {}
        self._crossbars: Dict[int, Server] = {
            c: Server(sim, f"xbar{c}") for c in range(config.chips)
        }
        self._hub_out: Dict[int, Server] = {
            c: Server(sim, f"hub_out{c}") for c in range(config.chips)
        }
        self._hub_in: Dict[int, Server] = {
            c: Server(sim, f"hub_in{c}") for c in range(config.chips)
        }
        # Model A's root switch (ordering point).  Only used when
        # config.global_order is set.
        self._root = Server(sim, "root_switch")

        self.messages_sent = 0
        self.inter_chip_messages = 0
        #: same-cycle arrival inversions healed by the per-pair FIFO stage
        #: (only ever non-zero under a perturbed ``tiebreak_seed``)
        self.reorders_healed = 0
        #: optional hook ``fn(src, dst, payload, inter_chip)`` observing
        #: every injection — the profiler's per-lock message attribution
        #: point (payloads carrying an ``addr`` identify their lock)
        self.probe: Optional[Callable[[Endpoint, Endpoint, Any, bool], None]] = None
        #: fault-injection hook (see module docstring); None == no faults
        self.fault_filter: Optional[FaultFilter] = None
        # reliable-delivery layer (repro.net.reliable); None == raw wire
        self._reliable = None

        # Per-(src, dst) FIFO enforcement: fabric-entry stamps, the next
        # stamp each pair expects to deliver, and held-back arrivals.
        self._pair_stamp: Dict[Tuple[Endpoint, Endpoint], int] = {}
        self._pair_expect: Dict[Tuple[Endpoint, Endpoint], int] = {}
        self._pair_stash: Dict[
            Tuple[Endpoint, Endpoint], Dict[int, Callable[[], None]]
        ] = {}

    # ------------------------------------------------------------------ #

    def register(
        self, endpoint: Endpoint, handler: Callable[[Endpoint, Any], None]
    ) -> None:
        """Attach ``handler(src, payload)`` to ``endpoint``."""
        if endpoint in self._handlers:
            raise ValueError(f"endpoint {endpoint} already registered")
        self._handlers[endpoint] = handler
        self._access[endpoint] = Server(self._sim, f"acc{endpoint}")

    def is_registered(self, endpoint: Endpoint) -> bool:
        return endpoint in self._handlers

    def set_reliable(self, layer) -> None:
        """Install (or remove, with ``None``) the reliable-delivery layer."""
        self._reliable = layer

    @property
    def reliable(self):
        return self._reliable

    # ------------------------------------------------------------------ #

    def latency_estimate(self, src: Endpoint, dst: Endpoint) -> int:
        """Uncongested one-way latency between two endpoints."""
        if src == dst:
            return 1
        if self._chip_of(src) == self._chip_of(dst) and not self._config.global_order:
            return self._config.intra_chip_hop
        if self._chip_of(src) == self._chip_of(dst):
            return self._config.intra_chip_hop
        return self._config.inter_chip_hop

    def send(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        on_deliver: Optional[Callable[[], None]] = None,
    ) -> None:
        """Send ``payload`` from ``src`` to ``dst``.

        The destination handler runs at delivery time; ``on_deliver`` (if
        given) runs right after it.  Self-sends are delivered after one
        cycle without touching the fabric.

        This is the *logical* send: tracers wrap it, and the reliable
        layer (when armed) takes over from here.  Frames, acks and
        retransmissions enter below it through :meth:`_inject`.
        """
        if dst not in self._handlers:
            raise KeyError(f"no handler registered for endpoint {dst}")
        if self._reliable is not None and self._reliable.covers(
            src, dst, payload
        ):
            self._reliable.send(src, dst, payload, on_deliver)
            return
        self._inject(src, dst, payload, on_deliver)

    # ------------------------------------------------------------------ #
    # wire layer

    def _inject(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        on_deliver: Optional[Callable[[], None]] = None,
    ) -> None:
        """Put one message on the wire (fault filter applies here)."""
        self.messages_sent += 1
        if self.probe is not None:
            self.probe(
                src, dst, payload,
                src != dst and self._chip_of(src) != self._chip_of(dst),
            )

        if self.fault_filter is not None and src != dst:
            copies = list(self.fault_filter(src, dst, payload))
        else:
            copies = [(0, payload)]
        for extra_delay, copy in copies:
            if extra_delay > 0:
                self._sim.after(
                    extra_delay,
                    lambda c=copy: self._transmit(src, dst, c, on_deliver),
                )
            else:
                self._transmit(src, dst, copy, on_deliver)

    def _transmit(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        on_deliver: Optional[Callable[[], None]],
    ) -> None:
        """Carry ``payload`` through the fabric.  The per-pair FIFO stamp
        is assigned *here* — after any fault-injected delay — so delayed
        copies are genuinely reordered rather than holding back the pair."""
        pair = (src, dst)
        stamp = self._pair_stamp.get(pair, 0)
        self._pair_stamp[pair] = stamp + 1

        def deliver() -> None:
            self._arrive(pair, stamp, payload, on_deliver)

        if src == dst:
            self._sim.after(1, deliver)
            return

        cfg = self._config
        same_chip = self._chip_of(src) == self._chip_of(dst)
        prop = self.latency_estimate(src, dst)

        # Chain of servers the message occupies, in order.
        chain = [self._access.get(src)]
        if cfg.global_order:
            chain.append(self._root)
        elif same_chip:
            chain.append(self._crossbars[self._chip_of(src)])
        else:
            self.inter_chip_messages += 1
            chain.append(self._crossbars[self._chip_of(src)])
            chain.append(self._hub_out[self._chip_of(src)])
            chain.append(self._hub_in[self._chip_of(dst)])
        chain.append(self._access.get(dst))
        servers = [s for s in chain if s is not None]

        def step(i: int) -> None:
            if i == len(servers):
                self._sim.after(prop, deliver)
                return
            server = servers[i]
            service = cfg.link_service
            if server.name.startswith("hub"):
                service = cfg.inter_chip_link_service
            server.request(service, lambda: step(i + 1))

        step(0)

    def _arrive(
        self,
        pair: Tuple[Endpoint, Endpoint],
        stamp: int,
        payload: Any,
        on_deliver: Optional[Callable[[], None]],
    ) -> None:
        """Per-pair FIFO stage: deliver in fabric-entry order.

        Messages on one pair reach here with non-decreasing arrival
        cycles (FIFO servers, constant propagation), so any inversion is
        same-cycle tie-break noise — the held-back message's predecessor
        is already queued at this very cycle and the stash drains before
        the clock advances.
        """
        expect = self._pair_expect.get(pair, 0)
        if stamp != expect:
            self.reorders_healed += 1
            self._pair_stash.setdefault(pair, {})[stamp] = (
                lambda: self._deliver(pair, payload, on_deliver)
            )
            return
        self._deliver(pair, payload, on_deliver)
        expect += 1
        stash = self._pair_stash.get(pair)
        if stash:
            while expect in stash:
                fn = stash.pop(expect)
                expect += 1
                # update before running: the callback may send again
                self._pair_expect[pair] = expect
                fn()
        self._pair_expect[pair] = expect

    def _deliver(
        self,
        pair: Tuple[Endpoint, Endpoint],
        payload: Any,
        on_deliver: Optional[Callable[[], None]],
    ) -> None:
        src, dst = pair
        if self._reliable is not None and self._reliable.intercepts(payload):
            self._reliable.on_wire(src, dst, payload)
            return
        self._handlers[dst](src, payload)
        if on_deliver is not None:
            on_deliver()

    # ------------------------------------------------------------------ #
    # introspection used by the harness and the telemetry layer

    def fabric_servers(self):
        """Yield ``(group, label, Server)`` for every fabric resource —
        the telemetry layer's inventory (``repro.obs.instrument``)."""
        for ep in sorted(self._access):
            yield ("access", f"{ep[0]}{ep[1]}", self._access[ep])
        for c in sorted(self._crossbars):
            yield ("xbar", str(c), self._crossbars[c])
        for c in sorted(self._hub_out):
            yield ("hub_out", str(c), self._hub_out[c])
        for c in sorted(self._hub_in):
            yield ("hub_in", str(c), self._hub_in[c])
        yield ("root", "", self._root)

    def hub_utilisation(self) -> float:
        """Mean utilisation of the inter-chip hub links (Model B)."""
        hubs = list(self._hub_out.values()) + list(self._hub_in.values())
        if not hubs:
            return 0.0
        return sum(h.utilisation() for h in hubs) / len(hubs)

    def root_utilisation(self) -> float:
        return self._root.utilisation()
