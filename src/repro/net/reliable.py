"""Reliable delivery over a faulty wire: frames, acks, retransmission.

The LCU/LRT state machines assume the interconnect never loses,
duplicates or reorders a message between one (src, dst) pair.  Fault
injection (:mod:`repro.faults`) deliberately breaks that assumption at
the wire, so covered traffic is carried inside sequence-numbered
:class:`Frame` envelopes with the classic go-back-nothing recipe:

* **sender** — every logical send gets the pair's next frame sequence
  number and is kept in a pending table until cumulatively acked; an
  unacked frame is retransmitted after a timeout that backs off
  exponentially (``rto_base`` doubling up to ``rto_cap``).
* **receiver** — frames are delivered to the real handler strictly in
  sequence order.  A frame below the expected sequence is a duplicate
  (suppressed, but re-acked so the sender stops retransmitting); a frame
  above it is held back until the gap fills.  Every arrival triggers a
  cumulative :class:`AckFrame`.

Acks travel over the same faulty wire — a lost ack simply means one more
retransmission and one more suppressed duplicate.  The layer is armed
only while a fault plan is active: without it the network's ``send``
path never touches this module, so fault-free runs pay zero overhead
and simulate bit-identically to a build without it.

``on_deliver`` callbacks (receiver-side continuations the memory system
relies on) are looked up from the sender's pending table at first
in-order delivery, so they run exactly once even when the wire delivers
five copies of the frame.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional, Tuple

from repro.lcu import messages as lcu_msgs
from repro.sim.engine import Simulator

Endpoint = Tuple[str, int]
Pair = Tuple[Endpoint, Endpoint]

# Only distributed-queue protocol messages ride inside frames.  Coherence
# fills and SSB replies are request/response with an on_deliver
# continuation at the requester; wrapping them would let a retransmit
# race resume a thread twice, and the fault filter leaves them alone.
_PROTOCOL_MESSAGE_TYPES = tuple(
    cls
    for cls in vars(lcu_msgs).values()
    if dataclasses.is_dataclass(cls) and isinstance(cls, type)
)


@dataclasses.dataclass(frozen=True)
class Frame:
    """Wire envelope: ``seq`` within its (src, dst) pair, plus payload.

    ``era`` is the pair's crash epoch: a core crash bumps the era of
    every pair the core participates in (see :meth:`ReliableLayer.
    bump_era`), restarting both sequence spaces at zero.  A frame whose
    era does not match the receiver's current era was sent before the
    crash — its sender's pending table is gone and its payload refers to
    pre-crash protocol state — so it is dropped, never delivered or
    acked.  This is what makes a restarted core's sequence numbers safe:
    a stale ``seq=3`` from the old era can never be confused with the
    fresh ``seq=3`` after rebirth."""
    seq: int
    payload: Any
    era: int = 0


@dataclasses.dataclass(frozen=True)
class AckFrame:
    """Cumulative ack: every frame with ``seq < upto`` has been delivered.
    Era-tagged like :class:`Frame`; a stale-era ack is ignored."""
    upto: int
    era: int = 0


@dataclasses.dataclass(frozen=True)
class Datagram:
    """Best-effort envelope: faulted like a :class:`Frame` (blackholes
    and drops apply at the wire), but unsequenced, never acked and never
    retransmitted — no pending state at all.

    Liveness beacons ride in these.  A heartbeat's *absence* is the
    failure detector's signal, so retransmitting one would defeat its
    purpose; worse, N cores beating every LRT as sequenced frames under
    a lossy wire melts the fabric with retransmissions (each beat
    occupies per-pair sequence space and head-of-line-blocks real lock
    traffic behind its ack).  Losing a datagram costs nothing: the next
    beat is a full liveness proof on its own."""
    payload: Any


#: payload types carried as datagrams instead of sequenced frames
_DATAGRAM_TYPES = (lcu_msgs.Heartbeat,)


class _Pending:
    __slots__ = ("payload", "on_deliver", "attempt", "delivered")

    def __init__(self, payload: Any, on_deliver: Optional[Callable[[], None]]):
        self.payload = payload
        self.on_deliver = on_deliver
        self.attempt = 0
        self.delivered = False


class ReliableLayer:
    """Per-pair sequenced frames with ack + capped-backoff retransmit.

    One instance manages both directions of every covered pair (the
    simulation is a single process, so sender and receiver state share
    the object).  ``covers(src, dst, payload)`` decides which traffic is
    wrapped: the link predicate passed at construction gates on the
    endpoint pair, and only LCU/LRT protocol messages are wrapped at all
    — coherence fills and SSB replies resume blocked thread generators
    from their ``on_deliver`` callback, which a retransmitted frame must
    never run twice, and the fault filter never touches them either.  The
    covered link set should match the links the fault filter targets;
    protecting more links than are faulted only adds ack traffic.
    """

    def __init__(
        self,
        sim: Simulator,
        covers: Callable[[Endpoint, Endpoint], bool],
        rto_base: int = 256,
        rto_cap: int = 4096,
    ) -> None:
        self._sim = sim
        self._covers = covers
        self._rto_base = rto_base
        self._rto_cap = rto_cap
        self._net = None  # set by attach()

        self._send_seq: Dict[Pair, int] = {}
        self._pending: Dict[Pair, Dict[int, _Pending]] = {}
        self._recv_next: Dict[Pair, int] = {}
        self._holdback: Dict[Pair, Dict[int, Frame]] = {}
        self._era: Dict[Pair, int] = {}

        self.frames_sent = 0
        self.datagrams_sent = 0
        self.acks_sent = 0
        self.retransmits = 0
        self.dups_suppressed = 0
        self.holdbacks = 0
        self.era_bumps = 0
        self.era_drops = 0

    # ------------------------------------------------------------------ #

    def attach(self, net) -> None:
        self._net = net
        net.set_reliable(self)

    def detach(self) -> None:
        """Disarm.  Call only once in-flight traffic has drained — a
        frame arriving afterwards would hit the raw handler."""
        if self._net is not None:
            self._net.set_reliable(None)
            self._net = None

    def covers(self, src: Endpoint, dst: Endpoint, payload: Any) -> bool:
        return (
            src != dst
            and isinstance(payload, _PROTOCOL_MESSAGE_TYPES)
            and self._covers(src, dst)
        )

    @staticmethod
    def intercepts(payload: Any) -> bool:
        return isinstance(payload, (Frame, AckFrame, Datagram))

    def pending_frames(self) -> int:
        """Logical sends not yet acked (0 == channel fully drained)."""
        return sum(len(p) for p in self._pending.values())

    def stats(self) -> Dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "datagrams_sent": self.datagrams_sent,
            "acks_sent": self.acks_sent,
            "retransmits": self.retransmits,
            "dups_suppressed": self.dups_suppressed,
            "holdbacks": self.holdbacks,
            "era_bumps": self.era_bumps,
            "era_drops": self.era_drops,
            "pending": self.pending_frames(),
        }

    def bump_era(self, ep: Endpoint) -> int:
        """Crash notification: endpoint ``ep`` died with all its frame
        state.  Every pair it participates in (either direction) opens a
        new era — pending frames are abandoned (their payloads refer to
        pre-crash protocol state), both sequence spaces restart at zero,
        and holdback frames from the old era are discarded.  In-flight
        old-era frames and acks are dropped on arrival by the era check.
        Returns the number of pairs bumped."""
        pairs = set()
        for table in (
            self._send_seq, self._recv_next,
            self._pending, self._holdback, self._era,
        ):
            for pair in table:
                if ep in pair:
                    pairs.add(pair)
        for pair in pairs:
            self._era[pair] = self._era.get(pair, 0) + 1
            self._send_seq[pair] = 0
            self._recv_next[pair] = 0
            self._pending.pop(pair, None)
            self._holdback.pop(pair, None)
        self.era_bumps += 1
        return len(pairs)

    # ------------------------------------------------------------------ #
    # sender side

    def send(
        self,
        src: Endpoint,
        dst: Endpoint,
        payload: Any,
        on_deliver: Optional[Callable[[], None]],
    ) -> None:
        if isinstance(payload, _DATAGRAM_TYPES):
            # Best-effort: onto the wire once, no sequence, no pending
            # entry, no ack, no retransmission.  Still injected below
            # the fault filter so blackholes and drops starve it.
            self.datagrams_sent += 1
            self._net._inject(src, dst, Datagram(payload), on_deliver)
            return
        pair = (src, dst)
        seq = self._send_seq.get(pair, 0)
        self._send_seq[pair] = seq + 1
        self._pending.setdefault(pair, {})[seq] = _Pending(payload, on_deliver)
        self._transmit(pair, seq)

    def _transmit(self, pair: Pair, seq: int) -> None:
        pend = self._pending.get(pair, {}).get(seq)
        if pend is None:  # acked while the retransmit timer was pending
            return
        pend.attempt += 1
        self.frames_sent += 1
        self._net._inject(
            pair[0], pair[1],
            Frame(seq, pend.payload, self._era.get(pair, 0)),
        )
        rto = min(self._rto_base << (pend.attempt - 1), self._rto_cap)
        attempt = pend.attempt
        self._sim.after(rto, lambda: self._retransmit_check(pair, seq, attempt))

    def _retransmit_check(self, pair: Pair, seq: int, attempt: int) -> None:
        pend = self._pending.get(pair, {}).get(seq)
        if pend is None or pend.attempt != attempt:
            return  # acked, or a newer attempt owns the timer
        self.retransmits += 1
        self._transmit(pair, seq)

    # ------------------------------------------------------------------ #
    # receiver side (called from Network._deliver)

    def on_wire(self, src: Endpoint, dst: Endpoint, payload: Any) -> None:
        if isinstance(payload, Datagram):
            self._net._handlers[dst](src, payload.payload)
            return
        if isinstance(payload, AckFrame):
            # ack for the reverse direction: dst originally sent to src
            if payload.era != self._era.get((dst, src), 0):
                self.era_drops += 1
                return
            self._on_ack((dst, src), payload.upto)
            return
        assert isinstance(payload, Frame)
        pair = (src, dst)
        if payload.era != self._era.get(pair, 0):
            # Pre-crash frame surfacing after the era bump: its payload
            # belongs to protocol state that died with the crash.  Drop
            # without acking — the old era's pending table is gone, so
            # nothing is retransmitting it.
            self.era_drops += 1
            return
        expect = self._recv_next.get(pair, 0)
        if payload.seq < expect:
            self.dups_suppressed += 1
        elif payload.seq == expect:
            self._deliver(pair, payload)
            expect += 1
            hb = self._holdback.get(pair)
            if hb:
                while expect in hb:
                    frame = hb.pop(expect)
                    expect += 1
                    self._recv_next[pair] = expect
                    self._deliver(pair, frame)
            self._recv_next[pair] = expect
        else:
            hb = self._holdback.setdefault(pair, {})
            if payload.seq in hb:
                self.dups_suppressed += 1
            else:
                hb[payload.seq] = payload
                self.holdbacks += 1
        self.acks_sent += 1
        self._net._inject(
            dst, src,
            AckFrame(self._recv_next.get(pair, 0), self._era.get(pair, 0)),
        )

    def _deliver(self, pair: Pair, frame: Frame) -> None:
        src, dst = pair
        pend = self._pending.get(pair, {}).get(frame.seq)
        on_deliver = None
        if pend is not None and not pend.delivered:
            pend.delivered = True
            on_deliver = pend.on_deliver
        self._net._handlers[dst](src, frame.payload)
        if on_deliver is not None:
            on_deliver()

    def _on_ack(self, pair: Pair, upto: int) -> None:
        pend = self._pending.get(pair)
        if not pend:
            return
        for seq in [s for s in pend if s < upto]:
            del pend[seq]
