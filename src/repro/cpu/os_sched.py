"""OS scheduling model: cores, timeslice preemption, migration, futexes.

Thread programs are generators yielding :mod:`repro.cpu.ops` records.  The
scheduler multiplexes them over the machine's cores:

* With as many cores as runnable threads, every thread keeps its core and
  nothing is ever preempted (the paper's <=32-thread configurations).
* With more threads than cores, a round-robin timeslice preempts running
  (or *spinning*) threads, and a rescheduled thread may land on any idle
  core — this yields both the preemption anomaly of queue-based software
  locks (Figure 10, >32 threads) and the thread-migration scenarios the
  LCU's grant timer is designed for (paper Section III-C).

Spin-style waits (``WaitLine``, ``LcuWait``) hold the core while waiting,
like real spinning does; ``SleepFor``/``FutexWait`` release it, like a
Posix mutex's slow path.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional

from repro.cpu import ops
from repro.mem.memory import READ, RMW, WRITE

RUNNING = "running"
READY = "ready"
WAITING = "waiting"    # futex / sleep — core released
DONE = "done"


class DeadlockError(RuntimeError):
    """The event queue drained while threads were still incomplete."""


class SimThread:
    """A software thread: identity, program generator and bookkeeping."""

    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        self.gen: Optional[Generator] = None
        self.state = READY
        self.core: Optional[int] = None
        self.last_core: Optional[int] = None
        self.resume_value: Any = None
        self.cancel_wait: Optional[Callable[[], None]] = None
        self.preempt_pending = False
        self.slice_end = 0
        self.epoch = 0          # bumped per dispatch (guards slice timers)
        self.op_seq = 0         # bumped per op issued (guards completions)
        self.current_op: Optional[ops.Op] = None
        self.preemptions = 0
        self.migrations = 0
        self.stats: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimThread({self.name}, tid={self.tid}, state={self.state}, "
            f"core={self.core}, op={self.current_op})"
        )


class OS:
    """Scheduler tying thread programs to a machine's hardware."""

    def __init__(
        self,
        machine,
        quantum: Optional[int] = None,
        prefer_affinity: bool = True,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.quantum = quantum if quantum is not None else machine.config.timeslice
        self.prefer_affinity = prefer_affinity

        self.threads: List[SimThread] = []
        self.ready: Deque[SimThread] = deque()
        self.idle_cores: List[int] = list(range(machine.config.cores))
        self.active = 0
        self._futex: Dict[int, Deque[SimThread]] = {}
        self._next_tid = 1

    # ------------------------------------------------------------------ #
    # public API

    def spawn(
        self,
        program_factory: Callable[[SimThread], Generator],
        name: Optional[str] = None,
    ) -> SimThread:
        """Create a thread running ``program_factory(thread)``."""
        tid = self._next_tid
        self._next_tid += 1
        t = SimThread(tid, name or f"t{tid}")
        t.gen = program_factory(t)
        self.threads.append(t)
        self.active += 1
        self.ready.append(t)
        # Defer the initial dispatch so spawning inside an event is safe.
        self.sim.after(0, self._dispatch)
        return t

    def run_all(self, max_cycles: Optional[int] = None) -> int:
        """Run until every spawned thread finishes.  Returns the finish
        time.  Raises :class:`DeadlockError` on a stuck simulation."""
        self.sim.run(until=max_cycles, stop_when=lambda: self.active == 0)
        if self.active > 0:
            pending = [t for t in self.threads if t.state != DONE]
            raise DeadlockError(
                f"{len(pending)} thread(s) incomplete at cycle "
                f"{self.sim.now}: {pending[:8]}"
            )
        return self.sim.now

    # ------------------------------------------------------------------ #
    # dispatching

    def _dispatch(self) -> None:
        while self.ready and self.idle_cores:
            t = self.ready.popleft()
            core = self._pick_core(t)
            self._assign(t, core)

    def _pick_core(self, t: SimThread) -> int:
        if self.prefer_affinity and t.last_core in self.idle_cores:
            core = t.last_core
        else:
            core = self.idle_cores[0]
        self.idle_cores.remove(core)
        return core

    def _assign(self, t: SimThread, core: int) -> None:
        if t.last_core is not None and t.last_core != core:
            t.migrations += 1
        t.core = core
        t.last_core = core
        t.state = RUNNING
        t.preempt_pending = False
        t.epoch += 1
        t.slice_end = self.sim.now + self.quantum
        epoch = t.epoch
        self.sim.at(t.slice_end, lambda: self._slice_timer(t, epoch))
        value, t.resume_value = t.resume_value, None
        self._advance(t, value)

    def _release_core(self, t: SimThread) -> None:
        if t.core is not None:
            self.idle_cores.append(t.core)
            t.core = None

    def _slice_timer(self, t: SimThread, epoch: int) -> None:
        if t.epoch != epoch or t.state != RUNNING:
            return
        if not self.ready:
            # Nobody waiting: extend the slice.
            t.slice_end = self.sim.now + self.quantum
            self.sim.at(t.slice_end, lambda: self._slice_timer(t, epoch))
            return
        if t.cancel_wait is not None:
            # Preempt a spinning thread immediately.
            cancel, t.cancel_wait = t.cancel_wait, None
            cancel()
            t.op_seq += 1  # kill any in-flight completion for the wait
            self._preempt(t, False)
        else:
            t.preempt_pending = True

    def _preempt(self, t: SimThread, resume_value: Any) -> None:
        t.preemptions += 1
        t.state = READY
        t.resume_value = resume_value
        self._release_core(t)
        self.ready.append(t)
        self._dispatch()

    def _finish(self, t: SimThread) -> None:
        t.state = DONE
        t.epoch += 1
        self._release_core(t)
        self.active -= 1
        self._dispatch()

    # ------------------------------------------------------------------ #
    # program driving

    def _advance(self, t: SimThread, value: Any) -> None:
        assert t.state == RUNNING and t.gen is not None
        try:
            op = t.gen.send(value)
        except StopIteration:
            self._finish(t)
            return
        t.current_op = op
        self._execute(t, op)

    def _op_done(self, t: SimThread, result: Any) -> None:
        t.cancel_wait = None
        if t.state != RUNNING:
            return
        if self.ready and (t.preempt_pending or self.sim.now >= t.slice_end):
            self._preempt(t, result)
        else:
            self._advance(t, result)

    def _guarded(self, t: SimThread) -> Callable[[Any], None]:
        """Completion callback valid only for the current op issuance."""
        t.op_seq += 1
        seq = t.op_seq
        epoch = t.epoch

        def done(result: Any = None) -> None:
            if t.op_seq == seq and t.epoch == epoch and t.state == RUNNING:
                self._op_done(t, result)

        return done

    # ------------------------------------------------------------------ #
    # op execution

    def _execute(self, t: SimThread, op: ops.Op) -> None:
        m = self.machine
        sim = self.sim
        done = self._guarded(t)
        core = t.core
        assert core is not None

        if isinstance(op, ops.Compute):
            sim.after(max(1, op.cycles), done)

        elif isinstance(op, ops.Load):
            m.mem.access(core, op.addr, READ, done)

        elif isinstance(op, ops.Store):
            m.mem.access(core, op.addr, WRITE, done, value=op.value)

        elif isinstance(op, ops.Rmw):
            m.mem.access(core, op.addr, RMW, done, rmw=op.fn)

        elif isinstance(op, ops.RemoteRmw):
            m.mem.remote_rmw(core, op.addr, op.fn, done)

        elif isinstance(op, ops.WaitLine):
            stale = (
                op.expected is not None
                and m.mem.peek(op.addr) != op.expected
            )
            if stale or not m.mem.has_line(core, op.addr):
                sim.after(1, done)
            else:
                sig = m.mem.line_signal(core, op.addr)
                token = sig.wait(lambda _=None: done(None))
                t.cancel_wait = lambda: sig.cancel(token)
                if op.timeout is not None:
                    seq = t.op_seq

                    def waitline_timeout() -> None:
                        if t.op_seq == seq and t.state == RUNNING:
                            if t.cancel_wait is not None:
                                t.cancel_wait()
                                t.cancel_wait = None
                            self._op_done(t, None)

                    sim.after(op.timeout, waitline_timeout)

        elif isinstance(op, ops.YieldCPU):
            if self.ready:
                t.op_seq += 1
                self._preempt(t, None)
            else:
                sim.after(1, done)

        elif isinstance(op, ops.SleepFor):
            t.state = WAITING
            self._release_core(t)
            self._dispatch()

            def wake() -> None:
                if t.state == WAITING:
                    t.state = READY
                    t.resume_value = None
                    self.ready.append(t)
                    self._dispatch()

            sim.after(max(1, op.cycles), wake)

        elif isinstance(op, ops.FutexWait):
            if m.mem.peek(op.addr) != op.expected:
                sim.after(m.config.l1_latency, lambda: done(False))
            else:
                t.state = WAITING
                t.resume_value = True
                self._release_core(t)
                self._futex.setdefault(op.addr, deque()).append(t)
                self._dispatch()

        elif isinstance(op, ops.FutexWake):
            q = self._futex.get(op.addr)
            woken = 0
            while q and woken < op.count:
                sleeper = q.popleft()
                if sleeper.state == WAITING:
                    sleeper.state = READY
                    self.ready.append(sleeper)
                    woken += 1
            sim.after(1, lambda w=woken: done(w))
            self.sim.after(0, self._dispatch)

        elif isinstance(op, ops.LcuAcq):
            ok = m.lcus[core].instr_acquire(
                t.tid, op.addr, op.write, priority=op.priority
            )
            sim.after(m.config.lcu_latency, lambda: done(ok))

        elif isinstance(op, ops.LcuRel):
            ok = m.lcus[core].instr_release(t.tid, op.addr, op.write)
            sim.after(m.config.lcu_latency, lambda: done(ok))

        elif isinstance(op, ops.LcuEnq):
            ok = m.lcus[core].instr_enqueue(t.tid, op.addr, op.write)
            sim.after(m.config.lcu_latency, lambda: done(ok))

        elif isinstance(op, ops.LcuWait):
            lcu = m.lcus[core]
            if lcu.poll_ready(t.tid, op.addr):
                # Grant already here / entry gone: re-check immediately.
                sim.after(1, done)
            else:
                sig = lcu.entry_signal(t.tid, op.addr)
                token = sig.wait(lambda _=None: done(None))
                t.cancel_wait = lambda: sig.cancel(token)
                if op.timeout is not None:
                    seq = t.op_seq

                    def timeout_fire() -> None:
                        if t.op_seq == seq and t.state == RUNNING:
                            if t.cancel_wait is not None:
                                t.cancel_wait()
                                t.cancel_wait = None
                            self._op_done(t, None)

                    sim.after(op.timeout, timeout_fire)

        elif isinstance(op, ops.SsbAcq):
            m.ssb.acquire(core, t.tid, op.addr, op.write, done)

        elif isinstance(op, ops.SsbRel):
            m.ssb.release(core, t.tid, op.addr, op.write, done)

        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {op!r}")
