"""OS scheduling model: cores, timeslice preemption, migration, futexes.

Thread programs are generators yielding :mod:`repro.cpu.ops` records.  The
scheduler multiplexes them over the machine's cores:

* With as many cores as runnable threads, every thread keeps its core and
  nothing is ever preempted (the paper's <=32-thread configurations).
* With more threads than cores, a round-robin timeslice preempts running
  (or *spinning*) threads, and a rescheduled thread may land on any idle
  core — this yields both the preemption anomaly of queue-based software
  locks (Figure 10, >32 threads) and the thread-migration scenarios the
  LCU's grant timer is designed for (paper Section III-C).

Spin-style waits (``WaitLine``, ``LcuWait``) hold the core while waiting,
like real spinning does; ``SleepFor``/``FutexWait`` release it, like a
Posix mutex's slow path.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional

from repro.cpu import ops
from repro.mem.memory import READ, RMW, WRITE

RUNNING = "running"
READY = "ready"
WAITING = "waiting"    # futex / sleep — core released
DONE = "done"
CRASHED = "crashed"    # killed by a crash_core fault — never resumes


class DeadlockError(RuntimeError):
    """The event queue drained while threads were still incomplete.

    The message lists every incomplete thread with its wait state and
    the last lock-related operation it issued, so a hang under injected
    stalls/faults points at the wedged protocol step directly."""


class _Guard:
    """Completion callback valid only for the current op issuance.

    A slotted reusable stand-in for the closure pair the executor used
    to allocate per op (a ``done`` closure plus a result-binding lambda
    for every scheduled completion).  Creating the guard *issues* the op:
    it bumps ``op_seq``, so any completion still in flight for the
    previous issuance goes stale.  Invoked two ways, both matching the
    old closure semantics exactly:

    * by the engine with no argument (scheduled completions) — delivers
      the preset ``result`` (the executor stores the op's outcome on the
      guard before scheduling it);
    * by a subsystem passing an explicit result (memory fills, SSB
      replies, signal fires — the latter always fire ``None`` here).
    """

    __slots__ = ("os", "t", "seq", "epoch", "result")

    def __init__(self, os: "OS", t: "SimThread") -> None:
        t.op_seq = seq = t.op_seq + 1
        self.os = os
        self.t = t
        self.seq = seq
        self.epoch = t.epoch
        self.result: Any = None

    def __call__(self, result: Any = None) -> None:
        t = self.t
        if t.op_seq == self.seq and t.epoch == self.epoch \
                and t.state == RUNNING:
            self.os._op_done(t, self.result if result is None else result)


class SimThread:
    """A software thread: identity, program generator and bookkeeping."""

    def __init__(self, tid: int, name: str) -> None:
        self.tid = tid
        self.name = name
        self.gen: Optional[Generator] = None
        self.state = READY
        self.core: Optional[int] = None
        self.last_core: Optional[int] = None
        self.resume_value: Any = None
        self.cancel_wait: Optional[Callable[[], None]] = None
        self.preempt_pending = False
        self.slice_end = 0
        self.epoch = 0          # bumped per dispatch (guards slice timers)
        self.op_seq = 0         # bumped per op issued (guards completions)
        self.current_op: Optional[ops.Op] = None
        self.last_lock_op: Optional[tuple] = None  # (op, issue cycle)
        self.preemptions = 0
        self.migrations = 0
        # fault injection: core-stall freeze (see OS.stall_core)
        self.freeze_until = 0
        self.frozen = False
        self.stats: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimThread({self.name}, tid={self.tid}, state={self.state}, "
            f"core={self.core}, op={self.current_op})"
        )


class OS:
    """Scheduler tying thread programs to a machine's hardware."""

    def __init__(
        self,
        machine,
        quantum: Optional[int] = None,
        prefer_affinity: bool = True,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.quantum = quantum if quantum is not None else machine.config.timeslice
        self.prefer_affinity = prefer_affinity

        self.threads: List[SimThread] = []
        self.ready: Deque[SimThread] = deque()
        self.idle_cores: List[int] = list(range(machine.config.cores))
        self.active = 0
        self._futex: Dict[int, Deque[SimThread]] = {}
        self._next_tid = 1
        self._stop_on_idle = False
        # fault injection (repro.faults): cores stalled until a cycle
        self._stalled_until: Dict[int, int] = {}
        # gray degradation (slow_core): core -> dispatch slowdown factor.
        # Empty in unfaulted runs, so the executor fast path never pays.
        self._core_slowdown: Dict[int, float] = {}
        self.forced_preemptions = 0
        self.forced_stalls = 0
        # crash-stop faults: dead cores + per-victim notification hooks
        self.crashed_cores: set = set()
        self.crash_hooks: List[Callable[[SimThread], None]] = []
        self.crashes = 0
        self.restarts = 0

    # ------------------------------------------------------------------ #
    # public API

    def spawn(
        self,
        program_factory: Callable[[SimThread], Generator],
        name: Optional[str] = None,
    ) -> SimThread:
        """Create a thread running ``program_factory(thread)``."""
        tid = self._next_tid
        self._next_tid += 1
        t = SimThread(tid, name or f"t{tid}")
        t.gen = program_factory(t)
        self.threads.append(t)
        self.active += 1
        self.ready.append(t)
        # Defer the initial dispatch so spawning inside an event is safe.
        self.sim.after(0, self._dispatch)
        return t

    def run_all(self, max_cycles: Optional[int] = None) -> int:
        """Run until every spawned thread finishes.  Returns the finish
        time.  Raises :class:`DeadlockError` on a stuck simulation."""
        if self.active > 0:
            # _finish requests an engine stop when the last thread
            # completes — one flag check per event instead of a
            # stop_when callable invoked 100k+ times per run.
            self._stop_on_idle = True
            try:
                self.sim.run(until=max_cycles)
            finally:
                self._stop_on_idle = False
        if self.active > 0:
            pending = [
                t for t in self.threads if t.state not in (DONE, CRASHED)
            ]
            lines = [self._diagnose(t) for t in pending[:16]]
            more = "" if len(pending) <= 16 else f"\n  ... +{len(pending) - 16} more"
            raise DeadlockError(
                f"{len(pending)} thread(s) incomplete at cycle "
                f"{self.sim.now}:\n  " + "\n  ".join(lines) + more
            )
        return self.sim.now

    def _diagnose(self, t: SimThread) -> str:
        """One-line wait-state description of an incomplete thread."""
        bits = [f"{t.name}(tid={t.tid}) state={t.state} core={t.core}"]
        if t.cancel_wait is not None:
            bits.append("spin-waiting")
        if t.frozen or t.freeze_until > self.sim.now:
            bits.append(f"frozen_until={t.freeze_until}")
        if t.core is not None and self._core_stalled(t.core):
            bits.append(f"core_stalled_until={self._stalled_until[t.core]}")
        bits.append(f"op={t.current_op!r}")
        if t.last_lock_op is not None:
            op, cycle = t.last_lock_op
            bits.append(f"last_lock_op={op!r}@{cycle}")
        return " ".join(bits)

    # ------------------------------------------------------------------ #
    # dispatching

    def _core_stalled(self, core: int) -> bool:
        return self._stalled_until.get(core, 0) > self.sim.now

    def _dispatch(self) -> None:
        while self.ready:
            avail = [c for c in self.idle_cores if not self._core_stalled(c)]
            if not avail:
                return
            t = self.ready.popleft()
            core = self._pick_core(t, avail)
            self._assign(t, core)

    def _pick_core(self, t: SimThread, avail: List[int]) -> int:
        if self.prefer_affinity and t.last_core in avail:
            core = t.last_core
        else:
            core = avail[0]
        self.idle_cores.remove(core)
        return core

    def _assign(self, t: SimThread, core: int) -> None:
        if t.last_core is not None and t.last_core != core:
            t.migrations += 1
        t.core = core
        t.last_core = core
        t.state = RUNNING
        t.preempt_pending = False
        t.epoch += 1
        t.slice_end = self.sim.now + self.quantum
        epoch = t.epoch
        self.sim.at(t.slice_end, lambda: self._slice_timer(t, epoch))
        value, t.resume_value = t.resume_value, None
        self._advance(t, value)

    def _release_core(self, t: SimThread) -> None:
        if t.core is not None:
            if t.core not in self.crashed_cores:
                self.idle_cores.append(t.core)
            t.core = None

    def _slice_timer(self, t: SimThread, epoch: int) -> None:
        if t.epoch != epoch or t.state != RUNNING:
            return
        if not self.ready:
            # Nobody waiting: extend the slice.
            t.slice_end = self.sim.now + self.quantum
            self.sim.at(t.slice_end, lambda: self._slice_timer(t, epoch))
            return
        if t.cancel_wait is not None:
            # Preempt a spinning thread immediately.
            cancel, t.cancel_wait = t.cancel_wait, None
            cancel()
            t.op_seq += 1  # kill any in-flight completion for the wait
            self._preempt(t, False)
        else:
            t.preempt_pending = True

    def _preempt(self, t: SimThread, resume_value: Any) -> None:
        t.preemptions += 1
        t.state = READY
        t.resume_value = resume_value
        self._release_core(t)
        self.ready.append(t)
        self._dispatch()

    def _finish(self, t: SimThread) -> None:
        t.state = DONE
        t.epoch += 1
        self._release_core(t)
        self.active -= 1
        self._dispatch()
        if self.active == 0 and self._stop_on_idle:
            self.sim.request_stop()

    # ------------------------------------------------------------------ #
    # fault-injection hooks (repro.faults)

    def force_preempt_all(self, migrate: bool = False) -> None:
        """Nemesis preemption burst: preempt every running thread now.

        Unlike the slice timer this fires even when no other thread is
        waiting, forcing each thread through the involuntary-descheduling
        paths (spin-wait cancellation, LCU grant timers).  With
        ``migrate`` each thread's affinity is pointed at the next core,
        so redispatch lands it elsewhere and exercises the
        migrated-thread release protocol (paper III-C)."""
        cores = self.machine.config.cores
        for t in [x for x in self.threads if x.state == RUNNING]:
            if t.frozen:
                continue  # stalled mid-op; preempting now would lose it
            self.forced_preemptions += 1
            if migrate and t.core is not None:
                t.last_core = (t.core + 1) % cores
            if t.cancel_wait is not None:
                cancel, t.cancel_wait = t.cancel_wait, None
                cancel()
                t.op_seq += 1  # kill any in-flight completion for the wait
                self._preempt(t, False)
            else:
                t.preempt_pending = True
        self._dispatch()

    def stall_core(self, core: int, window: int) -> None:
        """Nemesis core stall: core ``core`` executes nothing for
        ``window`` cycles (SMI / hypervisor-style blackout).  A thread
        running there freezes at its next completion point — in-flight
        memory/LCU results are preserved and handed over when the stall
        lifts — and the dispatcher routes ready threads elsewhere."""
        end = self.sim.now + window
        if end <= self._stalled_until.get(core, 0):
            return
        self.forced_stalls += 1
        self._stalled_until[core] = end
        for t in self.threads:
            if t.core == core and t.state == RUNNING:
                t.freeze_until = max(t.freeze_until, end)
                if t.cancel_wait is not None:
                    # Pure wait in progress (no result to lose): freeze
                    # immediately and re-poll when the stall lifts.
                    cancel, t.cancel_wait = t.cancel_wait, None
                    cancel()
                    t.op_seq += 1
                    t.frozen = True
                    self.sim.at(
                        end,
                        lambda t=t, e=t.epoch: self._unfreeze(t, None, e),
                    )
        # Ready threads may be queued behind this core: re-dispatch once
        # the window closes.
        self.sim.at(end, self._dispatch)

    def set_core_slowdown(self, core: int, factor: float) -> None:
        """Gray degradation (slow_core nemesis): stretch every compute
        phase dispatched on ``core`` by ``factor``.  Unlike
        :meth:`stall_core` the core keeps executing — slowly — so its
        LCU answers probes and its heartbeats keep flowing: the failure
        detector must *not* reclaim its holders.  ``factor <= 1``
        restores full speed."""
        if factor <= 1.0:
            self._core_slowdown.pop(core, None)
        else:
            self._core_slowdown[core] = factor

    def crash_core(self, core: int, extra_tids=()) -> List[int]:
        """Crash-stop fault: core ``core`` dies now and stays dead until
        :meth:`restart_core`.  The thread running there is killed, as is
        every thread in ``extra_tids`` regardless of where it runs —
        callers pass the tids whose lock state was homed on the dead
        core's LCU, so software state and hardware state die together.
        Killed threads never resume (their generators are abandoned);
        each one is reported to every registered ``crash_hooks`` callback
        so invariant monitors can excuse its held locks.  Returns the
        tids actually killed."""
        if core in self.crashed_cores:
            return []
        self.crashes += 1
        self.crashed_cores.add(core)
        try:
            self.idle_cores.remove(core)
        except ValueError:
            pass
        extra = set(extra_tids)
        victims = [
            t for t in self.threads
            if t.state not in (DONE, CRASHED)
            and (t.core == core or t.tid in extra)
        ]
        killed: List[int] = []
        for t in victims:
            if t.cancel_wait is not None:
                cancel, t.cancel_wait = t.cancel_wait, None
                cancel()
            t.op_seq += 1   # stale any in-flight completion
            t.epoch += 1    # stale slice timers / unfreeze events
            if t.state == READY:
                try:
                    self.ready.remove(t)
                except ValueError:
                    pass
            # WAITING victims stay parked in their futex deque; wakes
            # skip non-WAITING sleepers, so the stale entry is inert.
            self._release_core(t)
            t.state = CRASHED
            t.frozen = False
            self.active -= 1
            killed.append(t.tid)
            for hook in self.crash_hooks:
                hook(t)
        self._dispatch()
        if self.active == 0 and self._stop_on_idle:
            self.sim.request_stop()
        return killed

    def restart_core(self, core: int) -> bool:
        """Rebirth after :meth:`crash_core`: the core returns to service
        and may run surviving threads.  Crash-stop semantics — threads
        killed by the crash stay dead."""
        if core not in self.crashed_cores:
            return False
        self.restarts += 1
        self.crashed_cores.discard(core)
        self.idle_cores.append(core)
        self._dispatch()
        return True

    # ------------------------------------------------------------------ #
    # program driving

    def _advance(self, t: SimThread, value: Any) -> None:
        assert t.state == RUNNING and t.gen is not None
        try:
            op = t.gen.send(value)
        except StopIteration:
            self._finish(t)
            return
        t.current_op = op
        self._execute(t, op)

    def _op_done(self, t: SimThread, result: Any) -> None:
        t.cancel_wait = None
        if t.state != RUNNING:
            return
        if t.freeze_until > self.sim.now:
            # Core stall (fault injection): the op's result is preserved
            # and the program resumes from this exact point when the
            # stall window ends — nothing is lost, only delayed.
            t.frozen = True
            epoch = t.epoch
            self.sim.at(
                t.freeze_until, lambda: self._unfreeze(t, result, epoch)
            )
            return
        if self.ready and (t.preempt_pending or self.sim.now >= t.slice_end):
            self._preempt(t, result)
        else:
            self._advance(t, result)

    def _unfreeze(self, t: SimThread, result: Any, epoch: int) -> None:
        if t.epoch != epoch or t.state != RUNNING or not t.frozen:
            return
        t.frozen = False
        if t.freeze_until > self.sim.now:  # stall was extended meanwhile
            self.sim.at(
                t.freeze_until, lambda: self._unfreeze(t, result, epoch)
            )
            t.frozen = True
            return
        if self.ready and (t.preempt_pending or self.sim.now >= t.slice_end):
            self._preempt(t, result)
        else:
            self._advance(t, result)

    # ------------------------------------------------------------------ #
    # op execution
    #
    # Dispatch is one dict lookup on the op's class (see _EXECUTORS at
    # module bottom) instead of an isinstance chain — the chain walked
    # ~10 classes per issued op and dominated scheduler host time.
    # Every executor receives the freshly issued _Guard, whose creation
    # bumped op_seq (the old ``done = self._guarded(t)`` prologue), so
    # stale-completion semantics are unchanged for every op — including
    # the ones that never invoke their guard (SleepFor, FutexWait sleep).

    def _execute(self, t: SimThread, op: ops.Op) -> None:
        ex = _EXECUTORS.get(op.__class__)
        if ex is None:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {op!r}")
        assert t.core is not None
        if op.lock_op:
            t.last_lock_op = (op, self.sim.now)
        ex(self, t, op, _Guard(self, t))

    def _ex_compute(self, t, op, done) -> None:
        c = op.cycles
        if self._core_slowdown:
            f = self._core_slowdown.get(t.core)
            if f is not None:
                c = int(c * f)
        self.sim.after(c if c > 1 else 1, done)

    def _ex_load(self, t, op, done) -> None:
        self.machine.mem.access(t.core, op.addr, READ, done)

    def _ex_store(self, t, op, done) -> None:
        self.machine.mem.access(t.core, op.addr, WRITE, done, value=op.value)

    def _ex_rmw(self, t, op, done) -> None:
        self.machine.mem.access(t.core, op.addr, RMW, done, rmw=op.fn)

    def _ex_remote_rmw(self, t, op, done) -> None:
        self.machine.mem.remote_rmw(t.core, op.addr, op.fn, done)

    def _ex_wait_line(self, t, op, done) -> None:
        m = self.machine
        stale = (
            op.expected is not None
            and m.mem.peek(op.addr) != op.expected
        )
        if stale or not m.mem.has_line(t.core, op.addr):
            self.sim.after(1, done)
            return
        sig = m.mem.line_signal(t.core, op.addr)
        token = sig.wait(done)   # fires with payload None == done(None)
        t.cancel_wait = lambda: sig.cancel(token)
        if op.timeout is not None:
            seq = t.op_seq

            def waitline_timeout() -> None:
                if t.op_seq == seq and t.state == RUNNING:
                    if t.cancel_wait is not None:
                        t.cancel_wait()
                        t.cancel_wait = None
                    self._op_done(t, None)

            self.sim.after(op.timeout, waitline_timeout)

    def _ex_yield(self, t, op, done) -> None:
        if self.ready:
            t.op_seq += 1
            self._preempt(t, None)
        else:
            self.sim.after(1, done)

    def _ex_sleep(self, t, op, done) -> None:
        t.state = WAITING
        self._release_core(t)
        self._dispatch()

        def wake() -> None:
            if t.state == WAITING:
                t.state = READY
                t.resume_value = None
                self.ready.append(t)
                self._dispatch()

        self.sim.after(max(1, op.cycles), wake)

    def _ex_futex_wait(self, t, op, done) -> None:
        m = self.machine
        if m.mem.peek(op.addr) != op.expected:
            done.result = False
            self.sim.after(m.config.l1_latency, done)
        else:
            t.state = WAITING
            t.resume_value = True
            self._release_core(t)
            self._futex.setdefault(op.addr, deque()).append(t)
            self._dispatch()

    def _ex_futex_wake(self, t, op, done) -> None:
        q = self._futex.get(op.addr)
        woken = 0
        while q and woken < op.count:
            sleeper = q.popleft()
            if sleeper.state == WAITING:
                sleeper.state = READY
                self.ready.append(sleeper)
                woken += 1
        done.result = woken
        self.sim.after(1, done)
        self.sim.after(0, self._dispatch)

    def _ex_lcu_acq(self, t, op, done) -> None:
        m = self.machine
        done.result = m.lcus[t.core].instr_acquire(
            t.tid, op.addr, op.write, priority=op.priority
        )
        self.sim.after(m.config.lcu_latency, done)

    def _ex_lcu_rel(self, t, op, done) -> None:
        m = self.machine
        done.result = m.lcus[t.core].instr_release(t.tid, op.addr, op.write)
        self.sim.after(m.config.lcu_latency, done)

    def _ex_lcu_enq(self, t, op, done) -> None:
        m = self.machine
        done.result = m.lcus[t.core].instr_enqueue(t.tid, op.addr, op.write)
        self.sim.after(m.config.lcu_latency, done)

    def _ex_lcu_wait(self, t, op, done) -> None:
        lcu = self.machine.lcus[t.core]
        if lcu.poll_ready(t.tid, op.addr):
            # Grant already here / entry gone: re-check immediately.
            self.sim.after(1, done)
            return
        sig = lcu.entry_signal(t.tid, op.addr)
        token = sig.wait(done)   # fires with payload None == done(None)
        t.cancel_wait = lambda: sig.cancel(token)
        if op.timeout is not None:
            seq = t.op_seq

            def timeout_fire() -> None:
                if t.op_seq == seq and t.state == RUNNING:
                    if t.cancel_wait is not None:
                        t.cancel_wait()
                        t.cancel_wait = None
                    self._op_done(t, None)

            self.sim.after(op.timeout, timeout_fire)

    def _ex_ssb_acq(self, t, op, done) -> None:
        self.machine.ssb.acquire(t.core, t.tid, op.addr, op.write, done)

    def _ex_ssb_rel(self, t, op, done) -> None:
        self.machine.ssb.release(t.core, t.tid, op.addr, op.write, done)


#: op class -> unbound executor method; one dict hit per issued op
_EXECUTORS: Dict[type, Callable] = {
    ops.Compute: OS._ex_compute,
    ops.Load: OS._ex_load,
    ops.Store: OS._ex_store,
    ops.Rmw: OS._ex_rmw,
    ops.RemoteRmw: OS._ex_remote_rmw,
    ops.WaitLine: OS._ex_wait_line,
    ops.YieldCPU: OS._ex_yield,
    ops.SleepFor: OS._ex_sleep,
    ops.FutexWait: OS._ex_futex_wait,
    ops.FutexWake: OS._ex_futex_wake,
    ops.LcuAcq: OS._ex_lcu_acq,
    ops.LcuRel: OS._ex_lcu_rel,
    ops.LcuEnq: OS._ex_lcu_enq,
    ops.LcuWait: OS._ex_lcu_wait,
    ops.SsbAcq: OS._ex_ssb_acq,
    ops.SsbRel: OS._ex_ssb_rel,
}
