"""The operation vocabulary thread programs yield to the scheduler.

A thread program is a Python generator.  Each ``yield`` hands one of these
operation records to the OS/executor, which charges the appropriate
simulated latency (possibly via the network / directory / LCU) and resumes
the generator with the operation's result.

Interruptibility: ``WaitLine`` and ``LcuWait`` model *spinning* — the
thread occupies its core while logically re-executing a load or ``acq``
until something changes.  They can be interrupted by a timeslice
preemption, in which case they complete early with ``None``/``False`` and
the surrounding software loop naturally re-checks after the thread is
rescheduled (possibly on a different core — that is how thread migration
arises in this model, exactly the case the LCU's grant timer handles).

``SleepFor`` and ``FutexWait`` model true OS blocking: the core is
released to other threads.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional


class Op:
    """Base class for operations (used only for isinstance checks)."""

    __slots__ = ()

    #: synchronisation-relevant ops (lock instructions, atomics, waits)
    #: carry True — the scheduler records them as "last lock op" for
    #: deadlock diagnosis without an isinstance sweep per issued op
    lock_op = False


@dataclasses.dataclass(frozen=True, slots=True)
class Compute(Op):
    """Burn ``cycles`` of pure computation on the current core."""
    cycles: int


@dataclasses.dataclass(frozen=True, slots=True)
class Load(Op):
    """Coherent load; resumes with the loaded value."""
    addr: int


@dataclasses.dataclass(frozen=True, slots=True)
class Store(Op):
    """Coherent store of ``value``."""
    addr: int
    value: int


@dataclasses.dataclass(frozen=True, slots=True)
class Rmw(Op):
    """Atomic read-modify-write: applies ``fn(old) -> new``; resumes with
    the *old* value.  CAS/TAS/SWAP/F&A are all built from this."""
    addr: int
    fn: Callable[[int], int]


@dataclasses.dataclass(frozen=True, slots=True)
class WaitLine(Op):
    """Spin until this core's cached copy of ``addr``'s line is
    invalidated (zero traffic while waiting).  Interruptible.

    ``expected`` is the value the spin loop last observed: if the word no
    longer holds it, the wait returns immediately.  This matters after a
    migration — the new core may cache the line with the *current* value,
    in which case no further invalidation is coming and waiting on one
    would deadlock (a real spin loop re-reads, so it would see the new
    value at once).

    ``timeout`` bounds the wait: the op completes after that many cycles
    even without an invalidation (used by spin loops that must do
    periodic work while waiting, e.g. TP-MCS timestamp publishing)."""
    addr: int
    expected: Optional[int] = None
    timeout: Optional[int] = None


@dataclasses.dataclass(frozen=True, slots=True)
class YieldCPU(Op):
    """Voluntarily end the timeslice (sched_yield)."""


@dataclasses.dataclass(frozen=True, slots=True)
class SleepFor(Op):
    """Release the core for ``cycles`` (OS sleep)."""
    cycles: int


@dataclasses.dataclass(frozen=True, slots=True)
class FutexWait(Op):
    """If the word at ``addr`` still equals ``expected``, release the core
    until a ``FutexWake`` on the same address.  Resumes with True if it
    slept, False if the value had already changed."""
    addr: int
    expected: int


@dataclasses.dataclass(frozen=True, slots=True)
class FutexWake(Op):
    """Wake up to ``count`` threads blocked in ``FutexWait`` on ``addr``."""
    addr: int
    count: int = 1


# --------------------------------------------------------------------- #
# LCU ISA primitives (the paper's acq/rel, plus the footnote's enqueue
# prefetch).  The threadid is implicit — the executor passes the issuing
# thread's tid, matching the paper's process-local software threadid.

@dataclasses.dataclass(frozen=True, slots=True)
class LcuAcq(Op):
    """``acq(addr, threadid, mode)``: resumes with True iff acquired.
    ``priority`` marks a real-time request (future-work extension)."""
    addr: int
    write: bool
    priority: bool = False


@dataclasses.dataclass(frozen=True, slots=True)
class LcuRel(Op):
    """``rel(addr, threadid, mode)``: resumes with True iff the release
    was accepted (False means retry, e.g. no free LCU entry)."""
    addr: int
    write: bool


@dataclasses.dataclass(frozen=True, slots=True)
class LcuEnq(Op):
    """Optional Enqueue prefetch primitive (paper footnote 1): joins the
    queue without acquiring.  Resumes with True if a request was issued or
    already pending."""
    addr: int
    write: bool


@dataclasses.dataclass(frozen=True, slots=True)
class LcuWait(Op):
    """Spin on the local LCU entry for ``addr`` until its status changes
    (grant arrival etc.).  Resumes immediately if no entry exists here
    (e.g. after migration).  Interruptible; ``timeout`` bounds the wait."""
    addr: int
    timeout: Optional[int] = None


@dataclasses.dataclass(frozen=True, slots=True)
class RemoteRmw(Op):
    """Memory Atomic Operation (fetch-and-theta at the memory controller,
    SGI Origin / Cray T3E style): applies ``fn(old) -> new`` *at the home
    directory* without caching the line.  Constant memory-side latency,
    no coherence traffic, no L1 involvement.  Resumes with the old value.
    """
    addr: int
    fn: Callable[[int], int]


# --------------------------------------------------------------------- #
# SSB baseline primitives: remote synchronization operations executed at
# the home L2/controller (Zhu et al., ISCA'07).

@dataclasses.dataclass(frozen=True, slots=True)
class SsbAcq(Op):
    """Remote lock attempt at the home SSB; resumes with True/False."""
    addr: int
    write: bool


@dataclasses.dataclass(frozen=True, slots=True)
class SsbRel(Op):
    """Remote lock release at the home SSB."""
    addr: int
    write: bool


for _cls in (Rmw, WaitLine, FutexWait, FutexWake, LcuAcq, LcuRel, LcuEnq,
             LcuWait, RemoteRmw, SsbAcq, SsbRel):
    _cls.lock_op = True
del _cls
