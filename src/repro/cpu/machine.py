"""Machine assembly: wires simulator, network, memory, LCUs, LRTs, SSB.

A :class:`Machine` is one simulated multiprocessor built from a
:class:`~repro.params.MachineConfig` (Model A, Model B, or a test model).
Endpoints on the interconnect:

* ``("core", i)`` — core *i* and its collocated LCU (lock messages) plus
  the L1 fill target (coherence replies).
* ``("dir", j)`` — the directory slice at memory controller *j*.
* ``("lrt", j)`` — the Lock Reservation Table at memory controller *j*.
* ``("ssb", j)`` — the SSB bank at controller *j* (baseline hardware).
"""

from __future__ import annotations

from repro.lcu import messages as lcu_msgs
from repro.lcu.lcu import LockControlUnit, ProtocolError
from repro.lcu.lrt import LockReservationTable
from repro.mem.memory import Allocator, MemorySystem
from repro.net.network import Endpoint, Network
from repro.params import MachineConfig
from repro.sim.engine import Simulator
from repro.ssb.ssb import SSB

_LCU_MESSAGE_TYPES = (
    lcu_msgs.Grant, lcu_msgs.FwdRequest, lcu_msgs.WaitMsg, lcu_msgs.Retry,
    lcu_msgs.ReleaseAck, lcu_msgs.ReleaseRetry, lcu_msgs.Dealloc,
    lcu_msgs.OvfClear, lcu_msgs.RemoteRelease, lcu_msgs.RemoteReleaseAck,
    lcu_msgs.QueueReset, lcu_msgs.QueueProbe, lcu_msgs.FencedOperation,
)


class Machine:
    """One simulated multiprocessor instance.

    ``tiebreak_seed`` perturbs same-cycle event ordering (see
    :class:`repro.sim.engine.Simulator`); the schedule fuzzer uses it to
    explore alternative interleavings deterministically.
    ``scheduler`` selects the simulator's event store (``"calendar"`` /
    ``"reference"``) — the differential equivalence tests run the same
    workload on both and demand identical event order.
    """

    def __init__(
        self, config: MachineConfig, tiebreak_seed: "int | None" = None,
        scheduler: "str | None" = None,
    ) -> None:
        config.validate()
        self.config = config
        self.sim = Simulator(tiebreak_seed=tiebreak_seed, scheduler=scheduler)
        self.net = Network(self.sim, config, self._chip_of)
        self.alloc = Allocator(config.line_size)

        # Cores / LCU endpoints first (memory + LRTs send to them).
        self.lcus = []
        for i in range(config.cores):
            self.net.register(("core", i), self._core_handler(i))

        self.mem = MemorySystem(
            self.sim, config, self.net,
            core_endpoint=lambda i: ("core", i),
            dir_endpoint=lambda j: ("dir", j),
        )

        self.lrts = []
        for j in range(config.num_lrts):
            lrt = LockReservationTable(
                self.sim, config, self.net, j, ("lrt", j),
                memory_touch=self.mem.memory_touch,
            )
            self.net.register(("lrt", j), lrt.on_message)
            self.lrts.append(lrt)

        for i in range(config.cores):
            self.lcus.append(
                LockControlUnit(
                    self.sim, config, self.net, i, ("core", i),
                    lrt_endpoint_of=lambda addr: ("lrt", self.mem.home_of(addr)),
                )
            )

        self.ssb = SSB(self.sim, config, self.net)

    # ------------------------------------------------------------------ #

    def _chip_of(self, ep: Endpoint) -> int:
        kind, idx = ep
        if kind == "core":
            return self.config.chip_of_core(idx)
        # memory-controller-side units: spread controllers over chips
        return idx * self.config.chips // self.config.num_lrts

    def _core_handler(self, core: int):
        def handler(src: Endpoint, payload: object) -> None:
            if isinstance(payload, _LCU_MESSAGE_TYPES):
                self.lcus[core].on_message(src, payload)
            elif isinstance(payload, tuple) and payload and payload[0] in (
                "fill", "ssb-reply",
            ):
                pass  # handled by the send's on_deliver callback
            else:
                raise ProtocolError(
                    f"core {core}: unexpected payload {payload!r}"
                )

        return handler

    def drain(self, max_cycles: int = 200_000) -> None:
        """Let in-flight protocol traffic settle (bounded, so stale OS
        slice timers parked far in the future do not advance the clock)."""
        self.sim.run(until=self.sim.now + max_cycles)

    def harden(
        self, watchdog_interval: int = 20_000,
        silence_threshold: int = 50_000,
        lease_cycles: "int | None" = None,
        fencing: bool = True,
    ) -> None:
        """Arm fault tolerance in every LCU and LRT (see repro.faults).

        ``fencing=False`` is the sabotage mode: leases are still
        reclaimed, but grants carry no enforced fence token, so a
        zombie holder's stale operations succeed silently — the
        invariant monitor's zombie-writer check must catch it."""
        for lcu in self.lcus:
            lcu.harden(fencing=fencing)
        for lrt in self.lrts:
            lrt.harden(watchdog_interval, silence_threshold, lease_cycles,
                       fencing=fencing)

    def start_heartbeats(self, interval: int = 5_000) -> None:
        """Begin per-core heartbeats to every LRT (the suspicion-level
        failure detector's input).  Fault-harness-only, like
        :meth:`harden`: unfaulted builds never schedule any of this.
        Heartbeats ride the armed reliable layer as best-effort
        datagrams — faulted like any frame, never retransmitted — so a
        partitioned or zombied core goes silent and its suspicion
        climbs, while a merely slow core keeps beating and is probed
        patiently instead of reclaimed."""
        if getattr(self, "_heartbeats_on", False):
            return
        self._heartbeats_on = True
        for lrt in self.lrts:
            lrt.enable_failure_detector(interval)
        for core in range(self.config.cores):
            self.sim.at(
                self.sim.now + 1 + core,
                lambda c=core: self._heartbeat_tick(c, interval),
            )

    def _heartbeat_tick(self, core: int, interval: int) -> None:
        if self.lcus[core].dead:
            # a dead core stops beating; restart_core re-arms below
            self.sim.after(interval, lambda: self._heartbeat_tick(
                core, interval))
            return
        for j in range(self.config.num_lrts):
            self.net.send(("core", core), ("lrt", j),
                          lcu_msgs.Heartbeat(core=core))
        self.sim.after(interval, lambda: self._heartbeat_tick(
            core, interval))

    # ------------------------------------------------------------------ #
    # crash-stop faults (repro.faults crash_core / restart_core)

    def crash_core(self, core: int) -> set:
        """Hardware side of a crash-stop fault: the core's LCU dies with
        all its lock state, and every LRT is told the core is dead (so
        queue reclamation never waits on it).  Returns the tids whose
        lock state was homed on the dead LCU — the caller must also kill
        those threads (see :meth:`repro.cpu.os_sched.OS.crash_core`),
        because their only record of holding/queueing died here."""
        homed = self.lcus[core].crash()
        for lrt in self.lrts:
            lrt.note_dead_core(core)
        return homed

    def restart_core(self, core: int) -> None:
        """Rebirth after :meth:`crash_core`: the LCU comes back empty and
        the LRTs resume including the core in reset broadcasts.  Lock
        state lost in the crash stays lost — recovery is the LRT lease
        watchdog's job, not the restart's."""
        self.lcus[core].restart()
        for lrt in self.lrts:
            lrt.note_live_core(core)

    def purge_dead_tids(self, tids) -> None:
        """Release lock state held *at live LCUs* by threads that died in
        a crash (a migrated thread's entries live on the core it acquired
        from, not the core it died on).  Models the surviving OS kernels'
        robust-futex-style crash cleanup: each live LCU releases the dead
        threads' held locks on their behalf so waiters behind them make
        progress without waiting out a full lease revocation."""
        dead = set(tids)
        if not dead:
            return
        for lcu in self.lcus:
            lcu.purge_dead_tids(dead)

    # ------------------------------------------------------------------ #
    # invariant checking (used heavily by the test suite)

    def check_lock_invariants(self) -> None:
        """Assert cross-unit protocol invariants at the current instant."""
        for lrt in self.lrts:
            for s in lrt._sets.values():
                for e in s.values():
                    assert e.reader_cnt >= 0, f"negative reader_cnt: {e!r}"
                    assert e.writers_waiting >= 0, f"negative ww: {e!r}"
                    assert (e.head is None) == (e.tail is None), (
                        f"half-empty queue pointers: {e!r}"
                    )

    def total_lcu_entries_in_use(self) -> int:
        return sum(lcu.entries_in_use for lcu in self.lcus)
