"""Cores, software threads and the OS scheduling model."""

from repro.cpu.ops import (
    Compute,
    FutexWait,
    FutexWake,
    LcuAcq,
    LcuEnq,
    LcuRel,
    LcuWait,
    Load,
    Rmw,
    SleepFor,
    SsbAcq,
    SsbRel,
    Store,
    WaitLine,
    YieldCPU,
)
from repro.cpu.os_sched import OS, SimThread

__all__ = [
    "Compute", "Load", "Store", "Rmw", "WaitLine", "YieldCPU", "SleepFor",
    "FutexWait", "FutexWake", "LcuAcq", "LcuRel", "LcuEnq", "LcuWait",
    "SsbAcq", "SsbRel", "OS", "SimThread",
]
