"""repro.check — conformance and invariant checking for lock algorithms.

The correctness counterpart of :mod:`repro.obs`: where the telemetry
subsystem measures *how fast* a run was, this subsystem decides whether
the run was *legal*.  Three pieces compose (see README "Correctness
checking"):

* :mod:`repro.check.invariants` — :class:`InvariantMonitor`: attaches to
  a live machine through the same pull-based hook pattern as the
  telemetry layer (engine probes, LCU/LRT observers, lock-algorithm
  observers) and continuously asserts reader-writer exclusion, LCU/LRT
  queue well-formedness (no cycles, no orphans, single head token) and
  leak freedom, raising structured :class:`InvariantViolation`\\ s that
  carry the event time and a window of recent protocol messages.
* :mod:`repro.check.oracle` — :class:`RWLockOracle`: a sequential
  reference model of a fair reader-writer lock that observed acquisition
  orders are cross-checked against (exclusion plus bounded-overtake
  fairness).
* :mod:`repro.check.fuzz` — a deterministic schedule fuzzer: seeded
  random lock programs (read/write mixes, trylocks, oversubscription,
  migration) explored across perturbed same-cycle interleavings via
  engine tie-break seeds, with shrinking of any violating schedule to a
  minimal reproducer serialized as JSON.

``python -m repro check`` drives all of it from the command line; the
conformance test matrix (``tests/test_check_matrix.py``) runs every
registered lock algorithm through it on Models A and B.
"""

from repro.check.fuzz import (
    CheckOutcome,
    FuzzCase,
    fuzz,
    fuzz_matrix,
    load_case,
    run_case,
    save_case,
    shrink,
)
from repro.check.invariants import (
    ExclusionTracker,
    InvariantMonitor,
    InvariantViolation,
    LivenessViolation,
    audit_lcu_queues,
    check_quiescent,
)
from repro.check.oracle import RWLockOracle

__all__ = [
    "InvariantViolation", "LivenessViolation", "InvariantMonitor",
    "ExclusionTracker", "audit_lcu_queues", "check_quiescent",
    "RWLockOracle",
    "FuzzCase", "CheckOutcome", "run_case", "fuzz", "fuzz_matrix",
    "shrink", "save_case", "load_case",
]
