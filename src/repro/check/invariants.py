"""Continuous invariant monitoring for lock-protocol simulations.

The :class:`InvariantMonitor` attaches to a machine through the same
pull-based hooks the telemetry layer uses — an engine probe
(:meth:`repro.sim.engine.Simulator.add_probe`), the LCU/LRT ``observer``
callbacks, and :meth:`repro.locks.base.LockAlgorithm.add_observer` — so
every grant, transfer, timeout and software-level acquire/release is
visible to it while the simulation runs.  Any breach raises a structured
:class:`InvariantViolation` carrying the invariant name, the event time
and a window of the most recent protocol messages (captured with a
bounded :class:`repro.sim.trace.Tracer`).

Invariants checked:

``rw_exclusion``    writers exclusive, readers share (software level,
                    via the observed lock wrappers), plus the hardware
                    shadow: no two ACQ entries on one address where one
                    is a writer.
``queue_shape``     LCU queue links form no cycles; a waiting node's
                    lock is known to its home LRT (no orphans); at most
                    one live head-token holder per address; a writer in
                    ACQ always carries the head token.
``fairness``        bounded overtake, delegated to the per-lock
                    :class:`repro.check.oracle.RWLockOracle`.
``quiescence``      after a drain, no LCU entries, no live LRT locks,
                    and all LRT counters structurally sane
                    (:func:`check_quiescent` — what the test suite's
                    ``drain_and_check`` has become).

:class:`ExclusionTracker` is the reusable exclusion-state core; the test
suite's historical ``RWTracker`` is now a thin alias of it, so the tests
and the production monitor share one definition of "correct".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.lcu.entry import ACQ, RCV, WAIT
from repro.sim.trace import Tracer


class InvariantViolation(RuntimeError):
    """A checked invariant failed.

    Structured: ``invariant`` (short name), ``message``, ``time`` (cycle
    the breach was detected), free-form ``details``, and ``events`` — a
    rendered window of the protocol messages leading up to the breach.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        time: Optional[int] = None,
        details: Optional[Dict[str, Any]] = None,
        events: Optional[List[str]] = None,
    ) -> None:
        self.invariant = invariant
        self.message = message
        self.time = time
        self.details = dict(details or {})
        self.events = list(events or [])
        super().__init__(self.render())

    def render(self) -> str:
        head = f"[{self.invariant}] {self.message}"
        if self.time is not None:
            head += f" (cycle {self.time})"
        lines = [head]
        for key in sorted(self.details):
            lines.append(f"  {key}: {self.details[key]}")
        if self.events:
            lines.append(f"  last {len(self.events)} protocol events:")
            lines.extend(f"    {e}" for e in self.events)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (embedded in fuzz reproducers)."""
        return {
            "invariant": self.invariant,
            "message": self.message,
            "time": self.time,
            "details": {k: repr(v) for k, v in self.details.items()},
            "events": self.events,
        }


class LivenessViolation(InvariantViolation):
    """The liveness oracle fired: an armed request was not granted
    within the configured bound after the last injected fault — a
    silent post-fault hang, surfaced as a structured violation with the
    protocol trace window instead of a timed-out run."""

    def __init__(
        self,
        message: str,
        time: Optional[int] = None,
        details: Optional[Dict[str, Any]] = None,
        events: Optional[List[str]] = None,
    ) -> None:
        super().__init__(
            "liveness", message, time=time, details=details, events=events
        )


class ExclusionTracker:
    """Reader-writer exclusion state for one lock.

    ``enter``/``exit`` are called as critical sections begin and end;
    breaches are appended to :attr:`violations` and reported through
    ``on_violation`` (if given) so a monitor can raise immediately with
    context.  This is the single definition of RW exclusion shared by
    the production monitor and the test suite.
    """

    def __init__(
        self, on_violation: Optional[Callable[[str], None]] = None
    ) -> None:
        self.readers = 0
        self.writers = 0
        self.max_readers = 0
        self.total = 0
        self.violations: List[str] = []
        self._on_violation = on_violation

    def _violate(self, message: str) -> None:
        self.violations.append(message)
        if self._on_violation is not None:
            self._on_violation(message)

    def enter(self, write: bool) -> None:
        if write:
            if self.readers or self.writers:
                self._violate(
                    f"writer entered with r={self.readers} w={self.writers}"
                )
            self.writers += 1
        else:
            if self.writers:
                self._violate(f"reader entered with w={self.writers}")
            self.readers += 1
            self.max_readers = max(self.max_readers, self.readers)

    def exit(self, write: bool) -> None:
        if write:
            if self.writers <= 0:
                self._violate("writer exit without matching enter")
            self.writers -= 1
        else:
            if self.readers <= 0:
                self._violate("reader exit without matching enter")
            self.readers -= 1
        self.total += 1

    @property
    def clean(self) -> bool:
        return not self.violations and self.readers == 0 and self.writers == 0

    def assert_clean(self) -> None:
        assert not self.violations, self.violations
        assert self.readers == 0 and self.writers == 0


# --------------------------------------------------------------------- #
# structural audits of the distributed LCU/LRT queues


def _lcu_entry_at(machine, addr: int, who) -> Optional[object]:
    if who is None or who.lcu >= len(machine.lcus):
        return None
    return machine.lcus[who.lcu].entry(who.tid, addr)


def audit_lcu_queues(machine, strict: bool = False) -> List[str]:
    """Walk every LCU/LRT structure and return a list of problems.

    Non-strict mode checks only invariants that hold at *every* event
    boundary (cycle freedom, head-token uniqueness, hardware-level
    exclusion, counter sanity); strict mode additionally requires full
    quiescence — no LCU entries and no live LRT locks at all.
    """
    problems: List[str] = []

    # Index all entries by address for the per-address checks.
    by_addr: Dict[int, List[tuple]] = {}
    for lcu in machine.lcus:
        for (addr, tid), e in lcu._entries.items():
            by_addr.setdefault(addr, []).append((lcu.lcu_id, tid, e))

    total_entries = sum(len(nodes) for nodes in by_addr.values())
    if strict and total_entries:
        problems.append(f"{total_entries} LCU entr(ies) leaked")

    for addr, nodes in sorted(by_addr.items()):
        # queue links: following ``next`` must terminate without revisits
        for lcu_id, tid, e in nodes:
            seen = {(lcu_id, tid)}
            cur = e
            while cur is not None and cur.next is not None:
                nxt = cur.next
                key = (nxt.lcu, nxt.tid)
                if key in seen:
                    problems.append(
                        f"queue cycle on {addr:#x}: revisited LCU{nxt.lcu}"
                        f"/tid{nxt.tid} starting from LCU{lcu_id}/tid{tid}"
                    )
                    break
                if len(seen) > total_entries:
                    problems.append(
                        f"queue walk on {addr:#x} exceeds entry count"
                    )
                    break
                seen.add(key)
                cur = _lcu_entry_at(machine, addr, nxt)

        # head token: at most one live holder per address.  Overflow-mode
        # entries are excluded: they are LRT-accounted holders outside
        # the queue (nonblocking read grants, and readers converted by a
        # hardened-mode QueueReset), not token carriers.
        heads = [
            (lcu_id, tid)
            for lcu_id, tid, e in nodes
            if e.head and e.status in (RCV, ACQ) and not e.overflow
        ]
        if len(heads) > 1:
            problems.append(
                f"multiple head-token holders on {addr:#x}: {heads}"
            )

        # hardware-level exclusion shadow + writer-holds-token
        holders = [(lcu_id, tid, e) for lcu_id, tid, e in nodes
                   if e.status == ACQ]
        write_holders = [h for h in holders if h[2].write]
        if write_holders and len(holders) > 1:
            problems.append(
                f"writer shares {addr:#x} with other holders: "
                f"{[(l, t) for l, t, _ in holders]}"
            )
        for lcu_id, tid, e in write_holders:
            if not e.head:
                problems.append(
                    f"writer ACQ without head token on {addr:#x} "
                    f"(LCU{lcu_id}/tid{tid})"
                )

        # orphans: a waiting node's lock must be known to its home LRT
        for lcu_id, tid, e in nodes:
            if e.status == WAIT:
                lrt = machine.lrts[machine.mem.home_of(addr)]
                if lrt.entry(addr) is None:
                    problems.append(
                        f"orphaned WAIT entry on {addr:#x} "
                        f"(LCU{lcu_id}/tid{tid}): unknown to home LRT"
                    )

    # Locks parked in a Free Lock Table are invisible releases: the LRT
    # legitimately still considers them held at quiescence (paper IV-C).
    parked = set()
    for lcu in machine.lcus:
        parked.update(lcu._flt.keys())

    # LRT-side counter sanity (and strict-mode occupancy)
    for lrt in machine.lrts:
        if strict:
            stray = [
                addr
                for entries in list(lrt._sets.values()) + [lrt._overflow]
                for addr in entries
                if addr not in parked
            ]
            if stray:
                problems.append(
                    f"LRT{lrt.lrt_id} still holds {len(stray)} live "
                    f"lock(s): {[hex(a) for a in stray[:8]]}"
                )
        for entries in list(lrt._sets.values()) + [lrt._overflow]:
            for e in entries.values():
                if e.reader_cnt < 0:
                    problems.append(f"negative reader_cnt: {e!r}")
                if e.writers_waiting < 0:
                    problems.append(f"negative writers_waiting: {e!r}")
                if (e.head is None) != (e.tail is None):
                    problems.append(f"half-empty queue pointers: {e!r}")
    return problems


def check_quiescent(machine, max_cycles: int = 200_000) -> None:
    """Settle in-flight traffic, then assert the machine is fully clean:
    no leaked LCU entries, no live LRT locks, structurally sane queues.
    Raises :class:`InvariantViolation` — the production form of the test
    suite's historical ``drain_and_check``."""
    machine.drain(max_cycles)
    machine.check_lock_invariants()
    problems = audit_lcu_queues(machine, strict=True)
    if problems:
        raise InvariantViolation(
            "quiescence",
            f"{len(problems)} problem(s) after drain",
            time=machine.sim.now,
            details={f"problem{i}": p for i, p in enumerate(problems)},
        )


# --------------------------------------------------------------------- #
# the live monitor


class InvariantMonitor:
    """Attach to a machine (and optionally a lock algorithm) and check
    invariants continuously while the simulation runs.

    Usage::

        mon = InvariantMonitor(machine, algo).attach()
        ... spawn threads using algo.acquire / algo.release ...
        os_.run_all()
        mon.finish()        # quiescent + oracle end-state checks
        mon.detach()

    ``audit_stride`` controls how often (in processed events) the
    structural queue audit runs; the software-level exclusion and oracle
    checks run on every lock event regardless.  ``span_tracer`` — if a
    :class:`repro.obs.SpanTracer` is recording the run, open spans are
    flushed (closed at violation time), not dropped, before an
    :class:`InvariantViolation` propagates, so the trace of a failing
    run is complete up to the failure.
    """

    def __init__(
        self,
        machine,
        algo=None,
        *,
        audit_stride: int = 64,
        history: int = 32,
        overtake_bound: Optional[int] = None,
        span_tracer=None,
    ) -> None:
        from repro.check.oracle import RWLockOracle

        self.machine = machine
        self.algo = algo
        #: optional OS handle (set by harnesses that inject scheduler
        #: faults): threads frozen by a forced core stall are excused
        #: from overtake accounting, since they cannot consume a grant
        self.os = None
        #: liveness oracle (armed by fault harnesses): every request by
        #: a surviving thread must be granted within this many cycles of
        #: ``max(request time, last injected fault)``; None disarms it
        self.liveness_bound: Optional[int] = None
        #: ``fn() -> cycle`` of the most recent injected fault (the
        #: harness wires the injector's ``last_fault_at`` here)
        self.last_fault_at_fn: Optional[Callable[[], int]] = None
        #: tids killed by injected crash-stop faults (fed by
        #: :meth:`on_crash` via ``OS.crash_hooks``)
        self._crashed_tids: set = set()
        #: gray-failure lease recovery (all three empty in unfaulted
        #: runs — every hot-path use is truthiness-guarded).  A reclaim
        #: era closing is reported by the LRT as a burst of "survivor"
        #: events (buffered here per address) followed by one terminal
        #: "fenced"/"reclaim" event; see :meth:`_era_closed`.
        self._survivor_buf: Dict[int, set] = {}
        #: fencing armed: tids whose hold was voided by a fenced
        #: reclaim — their eventual stale release event is consumed
        #: (the protocol fenced it; the shadow must not double-exit)
        self._fenced_voided: Dict[Any, set] = {}
        #: sabotage mode (fencing off): stale holders the protocol
        #: reclaimed *without* fencing, tid -> write.  A conflicting
        #: later acquire proves the zombie-writer hole.
        self._reclaimed: Dict[Any, Dict[int, bool]] = {}
        self.audit_stride = max(1, audit_stride)
        self.history = history
        self.overtake_bound = overtake_bound
        self.span_tracer = span_tracer
        self._oracle_cls = RWLockOracle
        self._ring: Optional[Tracer] = None
        self._attached = False
        self._events_seen = 0
        self.trackers: Dict[Any, ExclusionTracker] = {}
        self.oracles: Dict[Any, Any] = {}
        self.stats: Dict[str, int] = {
            "lock_events": 0, "hw_events": 0, "audits": 0,
        }

    # -- lifecycle ------------------------------------------------------ #

    def attach(self) -> "InvariantMonitor":
        if self._attached:
            return self
        self._ring = Tracer.attach(self.machine, capacity=self.history)
        self.machine.sim.add_probe(self._probe)
        for lcu in self.machine.lcus:
            lcu.observer = self._on_hw_event
        for lrt in self.machine.lrts:
            lrt.observer = self._on_hw_event
        if self.algo is not None:
            self.algo.add_observer(self._on_lock_event)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self.machine.sim.remove_probe(self._probe)
        for lcu in self.machine.lcus:
            if lcu.observer is self._on_hw_event:
                lcu.observer = None
        for lrt in self.machine.lrts:
            if lrt.observer is self._on_hw_event:
                lrt.observer = None
        if self.algo is not None:
            self.algo.remove_observer(self._on_lock_event)
        if self._ring is not None:
            self._ring.detach()
            self._ring = None
        self._attached = False

    # -- violation plumbing --------------------------------------------- #

    def recent_events(self) -> List[str]:
        if self._ring is None:
            return []
        return [r.render() for r in self._ring.records]

    def _violate(self, invariant: str, message: str, **details: Any) -> None:
        if self.span_tracer is not None:
            self.span_tracer.flush_open()
        raise InvariantViolation(
            invariant,
            message,
            time=self.machine.sim.now,
            details=details,
            events=self.recent_events(),
        )

    def _violate_liveness(self, message: str, **details: Any) -> None:
        if self.span_tracer is not None:
            self.span_tracer.flush_open()
        raise LivenessViolation(
            message,
            time=self.machine.sim.now,
            details=details,
            events=self.recent_events(),
        )

    # -- crash-stop fault support ---------------------------------------- #

    def _last_fault_at(self) -> int:
        return (
            self.last_fault_at_fn() if self.last_fault_at_fn is not None
            else 0
        )

    def on_crash(self, thread) -> None:
        """Crash hook (wired to ``OS.crash_hooks`` by fault harnesses):
        ``thread`` died in an injected crash.  Its holds are released on
        its behalf at the protocol level (LCU purge / queue revocation),
        so the software-level shadow must drop them too — otherwise the
        tracker and oracle would report a phantom holder, and a grant to
        the next waiter would look like an exclusion breach."""
        tid = thread.tid
        self._crashed_tids.add(tid)
        for handle, oracle in self.oracles.items():
            write = oracle.holders.get(tid)
            if write is not None:
                tracker = self.trackers.get(handle)
                if tracker is not None:
                    tracker.exit(write)
            oracle.crash(tid, self.machine.sim.now)

    # -- hooks ----------------------------------------------------------- #

    def _oracle_for(self, handle: Any):
        oracle = self.oracles.get(handle)
        if oracle is None:
            fair = bool(self.algo is not None and self.algo.fair)
            oracle = self._oracle_cls(
                fair=fair,
                overtake_bound=self.overtake_bound,
                on_violation=lambda msg, h=handle: self._violate(
                    "fairness", msg, handle=h
                ),
            )
            self.oracles[handle] = oracle
        return oracle

    def _on_lock_event(self, event: str, thread, handle: Any,
                       write: bool) -> None:
        self.stats["lock_events"] += 1
        now = self.machine.sim.now
        tracker = self.trackers.get(handle)
        if tracker is None:
            tracker = self.trackers[handle] = ExclusionTracker(
                on_violation=lambda msg, h=handle: self._violate(
                    "rw_exclusion", msg, handle=h
                )
            )
        oracle = self._oracle_for(handle)
        tid = thread.tid
        if event == "request":
            oracle.request(tid, write, now)
        elif event == "acquire":
            if self._reclaimed:
                self._check_zombie(handle, tid, write, now)
            if self.liveness_bound is not None:
                entry = oracle.waiting.get(tid)
                if entry is not None:
                    # Bound the grant delay from whichever is later: the
                    # request, or the last injected fault (recovery time
                    # is charged to recovery, not to the whole wait).
                    start = max(entry[2], self._last_fault_at())
                    delay = now - start
                    if delay > self.liveness_bound:
                        self._violate_liveness(
                            f"tid {tid} waited {delay} cycles for a "
                            f"{'write' if write else 'read'} grant "
                            f"(bound {self.liveness_bound}) after the "
                            "last fault",
                            handle=handle, requested=entry[2],
                            last_fault=self._last_fault_at(),
                        )
            tracker.enter(write)
            oracle.acquire(tid, write, now, excused=self._frozen_tids(now))
        elif event == "release":
            if self._fenced_voided:
                voided = self._fenced_voided.get(handle)
                if voided is not None and tid in voided:
                    # The stale release of a hold a fenced reclaim
                    # already voided: the protocol fenced it, the shadow
                    # dropped it at era close — consume, don't double-exit.
                    voided.discard(tid)
                    return
            if self._reclaimed:
                stale = self._reclaimed.get(handle)
                if stale is not None:
                    # Sabotage mode: the zombie released before anyone
                    # conflicted — the hole closed unobserved this time.
                    stale.pop(tid, None)
            tracker.exit(write)
            oracle.release(tid, write, now)
        elif event == "abandon":
            oracle.abandon(tid, now)

    def _check_zombie(self, handle: Any, tid: int, write: bool,
                      now: int) -> None:
        """An acquire is being granted while unfenced stale holders from
        a lease reclaim exist (sabotage mode).  A conflicting grant —
        any grant over a stale writer, or a write grant over any stale
        holder — is the zombie-writer exclusion hole fencing closes."""
        stale = self._reclaimed.get(handle)
        if not stale:
            return
        others = {t: w for t, w in stale.items() if t != tid}
        if not others:
            return
        if write or any(others.values()):
            self._violate(
                "zombie_writer",
                f"tid {tid} granted {'W' if write else 'R'} at t={now} "
                f"while zombie holder(s) {sorted(others)} from an "
                "unfenced lease reclaim may still be in their critical "
                "sections",
                handle=handle,
                zombies={t: ("W" if w else "R") for t, w in others.items()},
            )

    def _frozen_tids(self, now: int) -> Optional[set]:
        """Tids that cannot consume a grant — frozen by an injected core
        stall, or dead from an injected crash — or ``None``.

        The sets are only built once the OS has recorded a forced stall
        or a crash hook has fired, so unfaulted runs never pay for (or
        change behaviour on) this.
        """
        stalled = self.os is not None and self.os.forced_stalls
        if not stalled and not self._crashed_tids:
            return None
        frozen = set(self._crashed_tids)
        if stalled:
            frozen |= {
                t.tid for t in self.os.threads
                if t.frozen or t.freeze_until > now
            }
        return frozen or None

    def _on_hw_event(self, event: str, addr: int, tid: int,
                     write: bool) -> None:
        self.stats["hw_events"] += 1
        if event == "survivor":
            # One live hold the LRT's reclaim handshake confirmed (it
            # re-seated the writer or re-credited the reader); buffered
            # until the era's terminal event arrives.
            self._survivor_buf.setdefault(addr, set()).add(tid)
            return
        if event in ("fenced", "reclaim"):
            self._era_closed(
                addr, tid, write,
                survivors=self._survivor_buf.pop(addr, set()),
                fenced=(event == "fenced"),
            )
            return
        if event in ("timeout", "evict"):
            # The grant timer acted on behalf of an absent thread
            # (preempted, migrated, or an abandoned trylock), or fault
            # injection evicted a queue node outright: later
            # acquisitions may legally overtake it, so the oracle's
            # overtake budget for this lock is widened.
            oracle = self.oracles.get(addr)
            if oracle is not None:
                oracle.grant_timeout()
            else:
                # handle is not the raw address for this algorithm:
                # credit every lock (conservative — never a false alarm)
                for oracle in self.oracles.values():
                    oracle.grant_timeout()

    def _era_closed(self, addr: int, victim_tid: int, victim_write: bool,
                    survivors: set, fenced: bool) -> None:
        """A lease reclaim of ``addr`` completed its reset handshake.
        ``survivors`` are the holds the handshake confirmed live; any
        other holder the shadow still tracks is a zombie whose hold the
        protocol revoked.  With fencing armed the zombie's token is dead
        — drop its hold from the shadow and earmark its stale release
        for consumption.  In sabotage mode nothing protects the next
        grant from it: record it so a conflicting acquire raises the
        ``zombie_writer`` violation.

        Only an oracle keyed directly by the address is touched: voiding
        is destructive, and software algorithms (whose handles are not
        addresses) never produce these events in the first place.
        """
        oracle = self.oracles.get(addr)
        if oracle is None:
            return
        now = self.machine.sim.now
        tracker = self.trackers.get(addr)
        for tid, write in list(oracle.holders.items()):
            if tid in survivors or tid in self._crashed_tids:
                continue
            if fenced:
                if tracker is not None:
                    tracker.exit(write)
                oracle.fence(tid, now)
                self._fenced_voided.setdefault(addr, set()).add(tid)
            else:
                self._reclaimed.setdefault(addr, {})[tid] = write

    def _probe(self) -> None:
        self._events_seen += 1
        if self._events_seen % self.audit_stride:
            return
        self.stats["audits"] += 1
        problems = audit_lcu_queues(self.machine, strict=False)
        if problems:
            self._violate(
                "queue_shape",
                problems[0],
                extra_problems=problems[1:],
            )

    # -- end of run ------------------------------------------------------ #

    def finish(self, max_cycles: int = 200_000) -> None:
        """End-of-run verdict: quiescent machine state plus oracle and
        tracker end-state (no holder left, nothing still waiting)."""
        try:
            check_quiescent(self.machine, max_cycles)
        except InvariantViolation:
            if self.span_tracer is not None:
                self.span_tracer.flush_open()
            raise
        for handle, tracker in self.trackers.items():
            if not tracker.clean:
                self._violate(
                    "rw_exclusion",
                    f"end state not clean: r={tracker.readers} "
                    f"w={tracker.writers} violations={tracker.violations}",
                    handle=handle,
                )
        if self.liveness_bound is not None:
            now = self.machine.sim.now
            for handle, oracle in self.oracles.items():
                for tid, (_seq, write, req_time) in oracle.waiting.items():
                    if tid in self._crashed_tids:
                        continue
                    start = max(req_time, self._last_fault_at())
                    if now - start > self.liveness_bound:
                        self._violate_liveness(
                            f"tid {tid} still waiting for a "
                            f"{'write' if write else 'read'} grant "
                            f"{now - start} cycles after the last fault "
                            f"(bound {self.liveness_bound})",
                            handle=handle, requested=req_time,
                            last_fault=self._last_fault_at(),
                        )
        for handle, oracle in self.oracles.items():
            leftover = oracle.end_state_problems()
            if leftover:
                self._violate("oracle", leftover[0], handle=handle)
