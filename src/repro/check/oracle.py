"""Sequential reference model of a fair reader-writer lock.

The oracle shadows one lock at the software level: every "request",
"acquire", "release" and "abandon" event the observed lock wrappers emit
(:meth:`repro.locks.base.LockAlgorithm.add_observer`) is replayed against
a simple sequential model, and the observed order is cross-checked
against what *any* correct reader-writer lock may legally produce:

* exclusion — a writer acquires only when nobody holds the lock, a
  reader only when no writer holds it;
* protocol sanity — acquisitions only by threads that requested,
  releases only by threads that hold, matching modes;
* bounded overtake — when the algorithm claims fairness
  (``LockAlgorithm.fair``), no waiter may be overtaken more than a
  bounded number of times by later-arriving requesters.

The overtake bound is deliberately *loose*: FIFO hardware like the LCU
still reorders legitimately in small ways (local RD_REL re-acquisition,
LRT read-sharing with overflow readers, grant-timer forwarding past a
preempted thread).  Grant-timer timeouts are reported to the oracle via
:meth:`grant_timeout` and widen the budget further, since each timeout
represents one waiter the hardware legally skipped.  Waiters that are
frozen outright by an injected core stall cannot consume a grant at all;
the monitor passes them as ``excused`` to :meth:`acquire` and passing
one does not count as an overtake.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.fairness import OvertakeLedger


class RWLockOracle:
    """Cross-check observed acquisition orders of one lock.

    Violations are reported through ``on_violation(message)`` (the
    monitor raises an :class:`~repro.check.invariants.InvariantViolation`
    from it) and recorded in :attr:`violations` either way, so the
    oracle is usable standalone in tests.
    """

    #: default overtake budget floor when ``fair`` and no explicit bound
    MIN_BOUND = 16

    def __init__(
        self,
        fair: bool = False,
        overtake_bound: Optional[int] = None,
        on_violation: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.fair = fair
        self.overtake_bound = overtake_bound
        self.violations: List[str] = []
        self._on_violation = on_violation
        self._seq = 0
        # tid -> (arrival seq, write, request time)
        self.waiting: Dict[int, Tuple[int, bool, int]] = {}
        # tid -> write (re-entrant holds are not modelled; the harnesses
        # never hold one lock twice from one thread)
        self.holders: Dict[int, bool] = {}
        # arrival-vs-grant accounting is delegated to the shared
        # OvertakeLedger (the same implementation the fairness
        # observatory measures with), run *without* the reader-batch
        # exemption: the oracle's historical budget is deliberately
        # loose enough to absorb legal read-sharing, and keeping the
        # exemption off keeps its verdicts byte-identical
        self.ledger = OvertakeLedger(reader_batch_exempt=False)
        self.timeout_credits = 0
        self._tids_seen: set = set()

    @property
    def overtaken(self) -> Dict[int, int]:
        """tid -> how many later arrivals acquired while tid kept
        waiting (live view of the ledger's per-request counts)."""
        return self.ledger.counts

    @property
    def max_overtake(self) -> int:
        return self.ledger.max_overtake

    # ------------------------------------------------------------------ #

    def _violate(self, message: str) -> None:
        self.violations.append(message)
        if self._on_violation is not None:
            self._on_violation(message)

    def _bound(self) -> int:
        if self.overtake_bound is not None:
            base = self.overtake_bound
        else:
            base = max(self.MIN_BOUND, 4 * len(self._tids_seen))
        return base + self.timeout_credits

    @property
    def write_held(self) -> bool:
        return any(self.holders.values())

    @property
    def read_held(self) -> int:
        return sum(1 for w in self.holders.values() if not w)

    # -- event replay --------------------------------------------------- #

    def request(self, tid: int, write: bool, now: int) -> None:
        self._tids_seen.add(tid)
        if tid in self.waiting:
            self._violate(
                f"tid {tid} requested at t={now} while already waiting"
            )
        if tid in self.holders:
            self._violate(
                f"tid {tid} requested at t={now} while already holding"
            )
        self._seq += 1
        self.waiting[tid] = (self._seq, write, now)
        self.ledger.note_request(tid)

    def acquire(self, tid: int, write: bool, now: int,
                excused: Optional[set] = None) -> None:
        entry = self.waiting.pop(tid, None)
        if entry is None:
            self._violate(f"tid {tid} acquired at t={now} without a request")
            seq = self._seq
        else:
            seq, req_write, _ = entry
            if req_write != write:
                self._violate(
                    f"tid {tid} requested {'W' if req_write else 'R'} but "
                    f"acquired {'W' if write else 'R'} at t={now}"
                )
        # exclusion against the oracle's own holder set
        if write and self.holders:
            self._violate(
                f"writer tid {tid} acquired at t={now} while held by "
                f"{sorted(self.holders)}"
            )
        elif not write and self.write_held:
            self._violate(
                f"reader tid {tid} acquired at t={now} during a write hold"
            )
        if tid in self.holders:
            self._violate(f"tid {tid} double-acquired at t={now}")
        self.holders[tid] = write
        self.ledger.clear(tid)
        # fairness: everyone who arrived earlier and is still waiting has
        # been overtaken once more (waiters frozen by an injected core
        # stall are ``excused``: they cannot consume a grant, so passing
        # one is the designed behaviour, not an overtake)
        if self.fair:
            increments = self.ledger.note_grant(
                tid, seq, write,
                [(o, oseq, w) for o, (oseq, w, _t) in self.waiting.items()],
                excused=excused,
            )
            for other, count in increments:
                if count > self._bound():
                    self._violate(
                        f"tid {other} overtaken {count}x "
                        f"(bound {self._bound()}) — last by tid {tid} "
                        f"at t={now}"
                    )

    def release(self, tid: int, write: bool, now: int) -> None:
        held = self.holders.pop(tid, None)
        if held is None:
            self._violate(f"tid {tid} released at t={now} without holding")
        elif held != write:
            self._violate(
                f"tid {tid} held {'W' if held else 'R'} but released "
                f"{'W' if write else 'R'} at t={now}"
            )

    def abandon(self, tid: int, now: int) -> None:
        """A trylock gave up: the waiter legally leaves the queue."""
        if self.waiting.pop(tid, None) is None:
            self._violate(f"tid {tid} abandoned at t={now} without a request")
        self.ledger.clear(tid)

    def crash(self, tid: int, now: int) -> None:
        """The thread died in an injected crash-stop fault: its hold
        ends (the protocol releases on its behalf — LCU purge or queue
        revocation), its wait ends (a dead waiter can never consume a
        grant), and its overtake record is void.  Not a violation of
        anything: crash recovery is the machinery under test."""
        self.holders.pop(tid, None)
        self.waiting.pop(tid, None)
        self.ledger.clear(tid)

    def fence(self, tid: int, now: int) -> None:
        """The thread's hold was revoked by a fenced lease reclaim (it
        stalled past its lease; the protocol fenced its token and moved
        on).  Its hold ends — the stale release it will eventually issue
        is consumed by the fence, never reaching the lock — but unlike
        :meth:`crash` the thread is still alive: a pending *wait* stays,
        because the thread will re-request and acquire normally."""
        self.holders.pop(tid, None)
        self.ledger.clear(tid)

    def grant_timeout(self) -> None:
        """The hardware grant timer skipped an absent waiter; later
        acquisitions may legally overtake it."""
        self.timeout_credits += 1

    # -- end of run ------------------------------------------------------ #

    def end_state_problems(self) -> List[str]:
        problems = list(self.violations)
        if self.holders:
            problems.append(
                f"still held at end of run by {sorted(self.holders)}"
            )
        if self.waiting:
            problems.append(
                f"still waiting at end of run: {sorted(self.waiting)} "
                "(lost wakeup?)"
            )
        return problems
