"""Deterministic schedule fuzzer for lock algorithms.

A :class:`FuzzCase` is a fully-seeded description of one randomized lock
program: how many threads over how many cores (oversubscription forces
preemption and migration), how many locks, the read/write mix, the
trylock rate, yield/sleep jitter, and an engine *tie-break seed* that
perturbs same-cycle event ordering inside the simulator
(:class:`repro.sim.engine.Simulator`).  Two runs of the same case are
bit-identical; varying only ``tiebreak_seed`` explores alternative
interleavings of the same program — the fuzzer's schedule-exploration
axis.

:func:`run_case` executes one case under a full
:class:`~repro.check.invariants.InvariantMonitor` (exclusion, queue
shape, oracle fairness, quiescence) and returns a
:class:`CheckOutcome`; a :class:`DeadlockError` from the scheduler is
reported as a ``no_lost_wakeup`` violation.  :func:`fuzz` drives many
generated cases; :func:`shrink` greedily minimizes a failing case
(fewer threads, iterations, locks; simpler mix) while it keeps failing,
and :func:`save_case`/:func:`load_case` serialize reproducers as JSON —
the format stored under ``tests/data/`` and replayed by the conformance
suite.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import random
from typing import Any, Dict, List, Optional

from repro.check.invariants import (
    InvariantMonitor, InvariantViolation, LivenessViolation,
)
from repro.cpu import ops
from repro.cpu.machine import Machine
from repro.cpu.os_sched import CRASHED, DONE, OS, DeadlockError
from repro.lcu.lcu import ProtocolError
from repro.locks import get_algorithm  # package import populates the registry
from repro.params import MachineConfig, model_a, model_b, small_test_model

_MODELS = {"A": model_a, "B": model_b, "T": small_test_model}

#: reproducer format version (bump when FuzzCase fields change shape)
#: 2: optional ``faults`` fault-plan dict (format-1 docs still load)
#: 3: optional ``crash_policy`` crash victim-policy override
#: 4: ``fencing`` arm/sabotage switch for lease-reclaim fence tokens
#:    (gray-failure plans carry partition specs and zombie windows in
#:    ``faults``; ``fencing=False`` is the sabotage mode that lets a
#:    reclaimed zombie's stale operations through so the monitor's
#:    zombie-writer check must catch them)
FORMAT = 4

#: liveness bound (cycles) armed for crash-faulted cases: every waiter
#: must be granted within this many cycles of max(its request, the last
#: injected fault).  Sized for the worst recovery chain — a crashed
#: middle node wedging a queue costs two silent lease windows plus the
#: capped probe ladder plus the reclaim handshake (~150k cycles at the
#: default hardening knobs) — with slack, while still far below any
#: workload horizon, so a genuine post-fault hang cannot hide.
LIVENESS_BOUND = 250_000


def make_model(model: str, **overrides) -> MachineConfig:
    """Build a machine config by model letter (A, B, or the test model T).

    Accepts a synthetic ``cores`` override (``MachineConfig.cores`` is
    derived): the machine becomes a single chip with that many cores —
    the fuzzer uses it to force thread-over-core oversubscription."""
    try:
        factory = _MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown model {model!r}; known: {sorted(_MODELS)}"
        ) from None
    cores = overrides.pop("cores", None)
    if cores is not None:
        overrides["chips"] = 1
        overrides["cores_per_chip"] = cores
    return factory(**overrides)


@dataclasses.dataclass
class FuzzCase:
    """One fully-deterministic randomized lock program (JSON-friendly)."""

    algo: str
    model: str = "T"
    seed: int = 0
    threads: int = 4
    locks: int = 1
    iters: int = 8
    write_pct: int = 50
    trylock_pct: int = 0
    cs_cycles: int = 12
    think_cycles: int = 8
    yield_pct: int = 10
    cores: Optional[int] = None        # override: oversubscribe threads
    timeslice: Optional[int] = None    # override: force preemption
    lcu_entries: Optional[int] = None  # override: force entry exhaustion
    grant_timeout: Optional[int] = None  # override: force timer forwarding
    flt_entries: Optional[int] = None  # override: enable the FLT
    tiebreak_seed: Optional[int] = None
    faults: Optional[Dict[str, Any]] = None  # FaultPlan dict (repro.faults)
    #: crash victim policy override: None = auto by algorithm ("busy"
    #: for LCU-backed locks, "idle" for software ones), or one of
    #: "busy" / "idle" / "any" ("any" removes the gate entirely — the
    #: sabotage mode that crashes unrecoverable holders on purpose, used
    #: to prove the liveness oracle actually fires)
    crash_policy: Optional[str] = None
    #: arm fence tokens on lease reclaims (True, the default) or run the
    #: ``--no-fencing`` sabotage where a reclaimed zombie's stale
    #: operations succeed silently and only the invariant monitor's
    #: zombie-writer check stands between it and a torn critical section
    fencing: bool = True
    note: str = ""

    def describe(self) -> str:
        bits = [
            f"{self.algo}/{self.model}", f"seed={self.seed}",
            f"t={self.threads}", f"locks={self.locks}",
            f"iters={self.iters}", f"w={self.write_pct}%",
        ]
        if self.trylock_pct:
            bits.append(f"try={self.trylock_pct}%")
        if self.cores is not None:
            bits.append(f"cores={self.cores}")
        if self.timeslice is not None:
            bits.append(f"slice={self.timeslice}")
        if self.lcu_entries is not None:
            bits.append(f"lcu={self.lcu_entries}")
        if self.grant_timeout is not None:
            bits.append(f"gt={self.grant_timeout}")
        if self.flt_entries is not None:
            bits.append(f"flt={self.flt_entries}")
        if self.tiebreak_seed is not None:
            bits.append(f"tb={self.tiebreak_seed}")
        if self.faults is not None:
            kinds = sorted({e["kind"] for e in self.faults["events"]})
            bits.append(f"faults={'+'.join(kinds)}")
        if self.crash_policy is not None:
            bits.append(f"crash={self.crash_policy}")
        if not self.fencing:
            bits.append("no-fencing")
        return " ".join(bits)

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["format"] = FORMAT
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FuzzCase":
        d = dict(d)
        d.pop("format", None)
        d.pop("violation", None)  # reproducers embed it for humans only
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - fields
        if unknown:
            raise ValueError(f"unknown FuzzCase fields: {sorted(unknown)}")
        return cls(**d)


@dataclasses.dataclass
class CheckOutcome:
    """Verdict of running one :class:`FuzzCase`."""

    case: FuzzCase
    ok: bool
    violation: Optional[InvariantViolation] = None
    elapsed: int = 0
    total_cs: int = 0
    monitor_stats: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: FaultOutcome list when the case carried a fault plan
    fault_outcomes: Optional[List[Any]] = None
    #: injector counters per fault class (what was actually injected)
    fault_stats: Dict[str, int] = dataclasses.field(default_factory=dict)

    def summary(self) -> str:
        if self.ok:
            return (
                f"PASS {self.case.describe()} — {self.total_cs} CS in "
                f"{self.elapsed} cycles"
            )
        return f"FAIL {self.case.describe()}\n{self.violation.render()}"


# --------------------------------------------------------------------- #
# execution


def _crash_victim_gate(case, machine, os_, algo, monitor):
    """Build the crash victim-policy closure the injector consults
    before killing a core (``fn(core) -> bool``), or None for the
    unconditional "any" policy.

    The fault model distinguishes *recoverable* crashes (what lease
    revocation and LCU purge are built to absorb) from crashes the
    protocol calls unrecoverable by design:

    * ``"busy"`` (LCU-backed locks) — crash only when the core's LCU
      actually holds lock state, so the crash lands on a live queue and
      exercises recovery rather than killing an idle bystander.  For
      ``lcu_fb`` it additionally refuses while any prospective victim is
      inside the software ticket path: a dead ticket holder wedges the
      chain and nothing revokes software tickets (forcing one is the
      ``"any"`` sabotage scenario).
    * ``"idle"`` (software locks) — crash only cores whose threads are
      all outside any lock protocol: not holding, not waiting, and
      executing think-phase :class:`~repro.cpu.ops.Compute`.  Software
      locks have no revocation story at all; the op check closes the
      release-notify-before-unlock window where the oracle already
      shows a thread idle but its unlock stores have not run.

    The gate runs synchronously inside the injection event, so there is
    no window between the check and the kill."""
    policy = case.crash_policy
    if policy is None:
        policy = "busy" if algo.name in ("lcu", "lcu_fb") else "idle"
    if policy == "any":
        return None

    def victims(core):
        return [
            t for t in os_.threads
            if t.core == core and t.state not in (DONE, CRASHED)
        ]

    if policy == "busy":
        def gate(core: int) -> bool:
            homed = machine.lcus[core].homed_tids()
            if not homed:
                return False
            sw_active = getattr(algo, "_sw_active", None)
            if sw_active:
                dying = {t.tid for t in victims(core)} | homed
                if dying & sw_active:
                    return False
            return True
        return gate

    if policy != "idle":
        raise ValueError(f"unknown crash_policy {policy!r}")

    def gate(core: int) -> bool:
        for t in victims(core):
            for oracle in monitor.oracles.values():
                if t.tid in oracle.holders or t.tid in oracle.waiting:
                    return False
            if not isinstance(t.current_op, ops.Compute):
                return False
        return True
    return gate


def run_case(
    case: FuzzCase,
    span_tracer=None,
    max_cycles: int = 5_000_000,
) -> CheckOutcome:
    """Execute one case under full invariant monitoring.

    Never raises for a *detected* violation — that comes back as a
    failing :class:`CheckOutcome` so the fuzz/shrink loops can treat it
    as data.  Truly unexpected exceptions still propagate.
    """
    algo_cls = get_algorithm(case.algo)
    overrides: Dict[str, Any] = {}
    if case.cores is not None:
        overrides["cores"] = case.cores
    if case.timeslice is not None:
        overrides["timeslice"] = case.timeslice
    if case.lcu_entries is not None:
        overrides["lcu_ordinary_entries"] = case.lcu_entries
    if case.grant_timeout is not None:
        overrides["lcu_grant_timeout"] = case.grant_timeout
    if case.flt_entries is not None:
        overrides["flt_entries"] = case.flt_entries
    config = make_model(case.model, **overrides)

    machine = Machine(config, tiebreak_seed=case.tiebreak_seed)
    os_ = OS(machine)
    algo = algo_cls(machine)
    handles = [algo.make_lock() for _ in range(max(1, case.locks))]
    if span_tracer is not None:
        # before the monitor: its own message tracer wraps net.send on
        # top, and wrappers must unwind in LIFO order
        span_tracer.attach(machine)
    monitor = InvariantMonitor(machine, algo, span_tracer=span_tracer)
    monitor.os = os_  # excuse overtakes of stall-frozen threads
    monitor.attach()

    injector = None
    if case.faults is not None:
        # deferred import: repro.faults pulls in repro.check for outcome
        # verification, so the dependency must stay one-way at load time
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import CRASH_CLASSES, FaultPlan

        injector = FaultInjector(
            machine, os_, FaultPlan.from_dict(case.faults),
            fencing=case.fencing,
        )
        injector.arm()
        if any(k in CRASH_CLASSES for k in injector.plan.classes):
            # crash-stop faults in play: install the victim policy and
            # arm the liveness oracle — after the last fault every armed
            # request must be granted within LIVENESS_BOUND cycles, so a
            # silent post-crash hang becomes a structured violation
            injector.victim_gate = _crash_victim_gate(
                case, machine, os_, algo, monitor
            )
            monitor.liveness_bound = LIVENESS_BOUND
            monitor.last_fault_at_fn = lambda: injector.last_fault_at
            # monitor first (it reads oracle holder state the protocol
            # cleanup below does not touch), then the algorithm's own
            # robust-futex-style cleanup
            os_.crash_hooks.append(monitor.on_crash)
            os_.crash_hooks.append(algo.on_crash)

    per_thread_cs = [0] * case.threads

    def worker_factory(index: int):
        def worker(thread):
            rng = random.Random(case.seed * 1_000_003 + index)
            for _ in range(case.iters):
                handle = handles[rng.randrange(len(handles))]
                write = (
                    rng.random() * 100 < case.write_pct
                    if algo_cls.rw_support else True
                )
                use_try = (
                    algo_cls.trylock_support
                    and rng.random() * 100 < case.trylock_pct
                )
                if use_try:
                    got = yield from algo.try_acquire(
                        thread, handle, write, retries=4
                    )
                    if not got:
                        # abandoned: back off, then take it for real so
                        # every program terminates deterministically
                        yield ops.SleepFor(rng.randint(8, 64))
                        yield from algo.acquire(thread, handle, write)
                else:
                    yield from algo.acquire(thread, handle, write)
                if case.cs_cycles:
                    yield ops.Compute(rng.randint(1, case.cs_cycles))
                yield from algo.release(thread, handle, write)
                per_thread_cs[index] += 1
                if rng.random() * 100 < case.yield_pct:
                    yield ops.YieldCPU()
                elif case.think_cycles:
                    yield ops.Compute(rng.randint(1, case.think_cycles))

        return worker

    violation: Optional[InvariantViolation] = None
    elapsed = 0
    drained = True
    try:
        for i in range(case.threads):
            os_.spawn(worker_factory(i))
        elapsed = os_.run_all(max_cycles=max_cycles)
        if injector is not None:
            # let retransmissions / reclaim traffic settle before the
            # strict quiescence audit
            drained = injector.drain()
        monitor.finish()
    except InvariantViolation as v:
        violation = v
    except DeadlockError as d:
        if span_tracer is not None:
            span_tracer.flush_open()
        if injector is not None and injector.stats:
            # faults were actually injected: a wedged scheduler is the
            # liveness failure the crash-recovery machinery must prevent
            violation = LivenessViolation(
                f"scheduler wedged after faults: {d}",
                time=machine.sim.now,
                events=monitor.recent_events(),
            )
        else:
            violation = InvariantViolation(
                "no_lost_wakeup",
                f"scheduler wedged: {d}",
                time=machine.sim.now,
                events=monitor.recent_events(),
            )
    except (ProtocolError, AssertionError) as p:
        if span_tracer is not None:
            span_tracer.flush_open()
        violation = InvariantViolation(
            "protocol",
            f"{type(p).__name__}: {p}",
            time=machine.sim.now,
            events=monitor.recent_events(),
        )
    finally:
        stats = dict(monitor.stats)
        monitor.detach()
        if span_tracer is not None:
            span_tracer.detach()

    fault_outcomes = None
    fault_stats: Dict[str, int] = {}
    if injector is not None:
        failure = None
        if violation is not None:
            failure = f"{violation.invariant}: {violation.message}"
        elif not drained:
            failure = "reliable layer never drained"
        fault_outcomes = injector.classify(violation=failure, algorithm=algo)
        fault_stats = dict(injector.stats)

    return CheckOutcome(
        case=case,
        ok=violation is None,
        violation=violation,
        elapsed=elapsed or machine.sim.now,
        total_cs=sum(per_thread_cs),
        monitor_stats=stats,
        fault_outcomes=fault_outcomes,
        fault_stats=fault_stats,
    )


# --------------------------------------------------------------------- #
# generation


def generate_case(
    rng: random.Random,
    algo: str,
    model: str = "T",
    seed: int = 0,
    fault_pct: int = 25,
) -> FuzzCase:
    """Draw one randomized case.  Read/write mixes only for rw-capable
    algorithms (others run all-writer); trylocks only where supported;
    occasionally oversubscribes cores and shrinks the timeslice to force
    preemption and migration mid-queue.  With probability ``fault_pct``%
    the case carries a seeded fault plan (see :mod:`repro.faults`) — the
    fuzzer then co-explores fault timing with thread interleaving."""
    cls = get_algorithm(algo)
    threads = rng.randint(2, 8)
    cores = None
    timeslice = None
    if rng.random() < 0.4:
        # oversubscribe: more threads than cores, short slices → the OS
        # preempts and migrates threads while they sit in lock queues
        cores = rng.choice([2, 4])
        threads = max(threads, cores + rng.randint(1, 4))
        timeslice = rng.choice([400, 800, 1600])
    lcu_entries = grant_timeout = flt_entries = None
    if algo == "lcu":
        # stress the LCU's resource-exhaustion and timer paths: tiny
        # entry pools (nonblocking entries, overflow readers,
        # reservations), short grant timers (forwarding past absent
        # threads), and the Free Lock Table (parking/stealing)
        if rng.random() < 0.3:
            lcu_entries = rng.choice([2, 3])
        if rng.random() < 0.3:
            grant_timeout = rng.choice([100, 200, 500])
        if rng.random() < 0.2:
            flt_entries = rng.choice([2, 4])
    faults = None
    if rng.random() * 100 < fault_pct:
        from repro.faults.plan import (
            ALL_CLASSES, LCU_ONLY_CLASSES, MESSAGE_CLASSES, generate_plan,
        )

        # message/hardware faults only exercise LCU-backed locks; every
        # algorithm can face scheduling faults
        pool = (
            list(ALL_CLASSES) if algo in ("lcu", "lcu_fb")
            else [c for c in ALL_CLASSES
                  if c not in MESSAGE_CLASSES + LCU_ONLY_CLASSES]
        )
        classes = rng.sample(pool, rng.randint(1, min(3, len(pool))))
        faults = generate_plan(
            seed=rng.randrange(1 << 30),
            classes=classes,
            horizon=rng.choice([40_000, 100_000, 250_000]),
            cores=cores if cores is not None else 4,
        ).to_dict()
    return FuzzCase(
        algo=algo,
        model=model,
        seed=seed,
        threads=threads,
        locks=rng.randint(1, 3),
        iters=rng.randint(3, 10),
        write_pct=(
            rng.choice([0, 10, 30, 50, 80, 100]) if cls.rw_support else 100
        ),
        trylock_pct=(
            rng.choice([0, 20, 50]) if cls.trylock_support else 0
        ),
        cs_cycles=rng.choice([0, 6, 20, 60]),
        think_cycles=rng.choice([0, 8, 40]),
        yield_pct=rng.choice([0, 10, 30]),
        cores=cores,
        timeslice=timeslice,
        lcu_entries=lcu_entries,
        grant_timeout=grant_timeout,
        flt_entries=flt_entries,
        tiebreak_seed=rng.randrange(1 << 16) if rng.random() < 0.7 else None,
        faults=faults,
    )


def fuzz(
    algo: str,
    model: str = "T",
    runs: int = 20,
    seed: int = 0,
    stop_on_failure: bool = True,
    span_tracer=None,
    progress=None,
) -> List[CheckOutcome]:
    """Run ``runs`` generated cases.  Deterministic in (algo, model,
    runs, seed).  Returns every outcome; with ``stop_on_failure`` the
    list ends at the first failing one."""
    master = random.Random(seed)
    outcomes: List[CheckOutcome] = []
    for i in range(runs):
        case = generate_case(master, algo, model, seed=master.randrange(1 << 30))
        outcome = run_case(case, span_tracer=span_tracer)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
        if not outcome.ok and stop_on_failure:
            break
    return outcomes


def _shard_dict(algo: str, model: str, outcomes) -> Dict[str, Any]:
    return {
        "algo": algo,
        "model": model,
        "runs": len(outcomes),
        "total_cs": sum(o.total_cs for o in outcomes),
        "failing": [o.case.to_dict() for o in outcomes if not o.ok],
    }


def _fuzz_shard(spec) -> Dict[str, Any]:
    """Worker-process entry point for :func:`fuzz_matrix`.  Returns a
    plain dict: ``CheckOutcome``/``InvariantViolation`` carry custom
    constructors that do not survive pool pickling, and the parent can
    deterministically re-run any failing case anyway."""
    algo, model, runs, seed = spec
    return _shard_dict(algo, model, fuzz(algo, model=model, runs=runs,
                                         seed=seed))


def fuzz_matrix(
    algos,
    models,
    runs: int = 10,
    seed: int = 0,
    workers: int = 0,
    progress=None,
    span_tracer=None,
) -> List[Dict[str, Any]]:
    """Fuzz every (algo, model) combination, optionally fanned out over
    a spawn-context process pool.  Deterministic in its arguments AND
    the worker count: each combination is an independent fuzz stream
    keyed by ``(algo, model, runs, seed)``, and shards merge in spec
    order.  Failing cases come back as case dicts — replay one with
    ``run_case(FuzzCase.from_dict(d))`` (bit-identical) to recover the
    full outcome and violation in-process.  ``span_tracer`` only
    applies to the serial path (spans cannot cross process boundaries)."""
    specs = [(a, m, runs, seed) for m in models for a in algos]
    if workers >= 2 and len(specs) > 1:
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=min(workers, len(specs))) as pool:
            shards = pool.map(_fuzz_shard, specs)  # order-preserving
    else:
        shards = [
            _shard_dict(a, m, fuzz(a, model=m, runs=r, seed=s,
                                   span_tracer=span_tracer))
            for a, m, r, s in specs
        ]
    for shard in shards:
        if progress is not None:
            progress(shard)
    return shards


# --------------------------------------------------------------------- #
# shrinking


def _candidates(case: FuzzCase) -> List[FuzzCase]:
    """Single-step reductions of ``case``, most aggressive first."""
    out: List[FuzzCase] = []

    def variant(**changes) -> None:
        out.append(dataclasses.replace(case, **changes))

    if case.threads > 2:
        variant(threads=max(2, case.threads // 2))
        variant(threads=case.threads - 1)
    if case.iters > 1:
        variant(iters=max(1, case.iters // 2))
        variant(iters=case.iters - 1)
    if case.locks > 1:
        variant(locks=1)
    if case.trylock_pct:
        variant(trylock_pct=0)
    if case.yield_pct:
        variant(yield_pct=0)
    if case.think_cycles:
        variant(think_cycles=0)
    if case.cs_cycles:
        variant(cs_cycles=0)
    if case.crash_policy is not None:
        variant(crash_policy=None)
    if not case.fencing:
        # does the failure need the sabotage, or is it a real bug that
        # survives with fences armed?
        variant(fencing=True)
    if case.faults is not None:
        variant(faults=None)
        kinds = sorted({e["kind"] for e in case.faults["events"]})
        if len(kinds) > 1:
            for kind in kinds:
                kept = [
                    e for e in case.faults["events"] if e["kind"] != kind
                ]
                variant(faults={**case.faults, "events": kept})
    if case.timeslice is not None:
        variant(timeslice=None, cores=None)
    elif case.cores is not None:
        variant(cores=None)
    if case.flt_entries is not None:
        variant(flt_entries=None)
    if case.grant_timeout is not None:
        variant(grant_timeout=None)
    if case.lcu_entries is not None:
        variant(lcu_entries=None)
    if case.write_pct not in (0, 100):
        variant(write_pct=100)
        variant(write_pct=0)
    if case.tiebreak_seed is not None:
        variant(tiebreak_seed=None)
    return out


def shrink(
    case: FuzzCase, max_steps: int = 200, progress=None
) -> CheckOutcome:
    """Greedily minimize a failing case: repeatedly apply the first
    single-field reduction that still fails, until none does (or the
    step budget runs out).  Returns the failing outcome of the smallest
    case found; raises ``ValueError`` if ``case`` does not fail."""
    outcome = run_case(case)
    if outcome.ok:
        raise ValueError(f"cannot shrink a passing case: {case.describe()}")
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(outcome.case):
            steps += 1
            trial = run_case(candidate)
            if not trial.ok:
                outcome = trial
                if progress is not None:
                    progress(trial)
                improved = True
                break
            if steps >= max_steps:
                break
    return outcome


# --------------------------------------------------------------------- #
# reproducer serialization


def save_case(
    outcome_or_case, path: str, note: Optional[str] = None
) -> Dict[str, Any]:
    """Write a JSON reproducer.  Accepts a failing :class:`CheckOutcome`
    (the violation summary is embedded for human readers) or a bare
    :class:`FuzzCase`; returns the document written."""
    if isinstance(outcome_or_case, CheckOutcome):
        case = outcome_or_case.case
        violation = outcome_or_case.violation
    else:
        case = outcome_or_case
        violation = None
    if note is not None:
        case = dataclasses.replace(case, note=note)
    doc = case.to_dict()
    if violation is not None:
        doc["violation"] = violation.to_dict()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def load_case(path: str) -> FuzzCase:
    """Read a reproducer JSON back into a runnable :class:`FuzzCase`."""
    with open(path) as fh:
        return FuzzCase.from_dict(json.load(fh))
