"""Behavioral cache-coherent memory hierarchy."""

from repro.mem.memory import Allocator, MemorySystem

__all__ = ["Allocator", "MemorySystem"]
