"""Behavioral directory-based coherence model.

This is the substrate the *software* locks run on.  It is deliberately
behavioral rather than cycle-accurate: what matters for reproducing the
paper is the *pattern* of coherence traffic each lock generates —

* a TAS lock performs an atomic RMW per attempt, so the lock line bounces
  between cores and every attempt queues at the home directory;
* a TATAS lock spins on a locally cached copy (zero traffic) until the
  holder's release invalidates it;
* an MCS lock spins on a thread-private line and transfers the lock with
  one invalidation + one miss — cheap but still two network crossings,
  which is exactly the gap the LCU's direct LCU-to-LCU grant closes.

State tracked per line: an optional exclusive owner and a sharer set
(a MESI-like M/S split; E and O are not distinguished — they do not change
message counts at this abstraction level).  Data values live in a backing
store updated at the serialization point of each access, so software lock
algorithms built on top are functionally correct, not just timed.

Capacity misses are not modelled (lock lines and queue nodes are hot); the
first touch of a line charges the memory latency, later directory hits
charge the L2 latency.  Coherence requests travel on the same simulated
network as lock-unit messages, so both protocols compete for the same
links — required for a fair Figure 9b comparison.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.net.network import Endpoint, Network
from repro.params import MachineConfig
from repro.sim.engine import Server, Signal, Simulator

READ = "R"
WRITE = "W"
RMW = "RMW"


class Allocator:
    """Bump allocator handing out line-aligned blocks of simulated memory.

    Giving every lock / queue node its own cache line avoids false sharing,
    matching how the paper's software baselines are implemented.
    """

    WORD = 8

    def __init__(self, line_size: int = 64, base: int = 0x1000) -> None:
        self._line_size = line_size
        self._next = base

    def alloc_line(self) -> int:
        """Allocate one cache line; returns its base (word-aligned) address."""
        addr = self._next
        self._next += self._line_size
        return addr

    def alloc_words(self, n: int) -> int:
        """Allocate ``n`` contiguous words, line-aligned, padded to lines."""
        addr = self._next
        nbytes = n * self.WORD
        lines = (nbytes + self._line_size - 1) // self._line_size
        self._next += lines * self._line_size
        return addr


class _LineState:
    __slots__ = ("owner", "sharers", "touched")

    def __init__(self) -> None:
        self.owner: Optional[int] = None       # core id holding M
        self.sharers: Set[int] = set()          # core ids holding S
        self.touched = False                     # first access charges memory


class MemorySystem:
    """Directory coherence + data store, addressed by integer byte address."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        network: Network,
        core_endpoint: Callable[[int], Endpoint],
        dir_endpoint: Callable[[int], Endpoint],
    ) -> None:
        self._sim = sim
        self._config = config
        self._net = network
        self._core_ep = core_endpoint
        self._dir_ep = dir_endpoint

        self._store: Dict[int, int] = {}
        self._lines: Dict[int, _LineState] = {}
        # per-core map line -> "M"/"S"
        self._l1: Dict[int, Dict[int, str]] = {}
        # (core, line) -> Signal fired when that copy is invalidated
        self._line_signals: Dict[Tuple[int, int], Signal] = {}
        # directory occupancy per memory controller
        self._dir_servers = [
            Server(sim, f"dir{j}") for j in range(config.num_lrts)
        ]
        for j in range(config.num_lrts):
            network.register(dir_endpoint(j), self._on_message)

        self.l1_hits = 0
        self.l1_misses = 0
        self.invalidations = 0
        self.owner_forwards = 0

    @property
    def dir_servers(self):
        """Directory-slice servers, for the telemetry layer."""
        return list(self._dir_servers)

    # ------------------------------------------------------------------ #
    # address helpers

    def line_of(self, addr: int) -> int:
        return addr // self._config.line_size

    def home_of_line(self, line: int) -> int:
        return line % self._config.num_lrts

    def home_of(self, addr: int) -> int:
        return self.home_of_line(self.line_of(addr))

    # ------------------------------------------------------------------ #
    # raw data access (no timing) — used by assertions/tests only

    def peek(self, addr: int) -> int:
        return self._store.get(addr, 0)

    def poke(self, addr: int, value: int) -> None:
        self._store[addr] = value

    def has_line(self, core: int, addr: int) -> bool:
        """Whether ``core`` currently caches ``addr``'s line (M or S)."""
        return self.line_of(addr) in self._l1.get(core, {})

    # ------------------------------------------------------------------ #
    # spinning support

    def line_signal(self, core: int, addr: int) -> Signal:
        """Signal fired when ``core``'s cached copy of ``addr``'s line is
        invalidated.  Local spinning waits on this with zero traffic."""
        key = (core, self.line_of(addr))
        sig = self._line_signals.get(key)
        if sig is None:
            sig = Signal(self._sim)
            self._line_signals[key] = sig
        return sig

    def _fire_line(self, core: int, line: int) -> None:
        sig = self._line_signals.get((core, line))
        if sig is not None:
            sig.fire()

    # ------------------------------------------------------------------ #
    # the access path

    def access(
        self,
        core: int,
        addr: int,
        kind: str,
        on_done: Callable[[int], None],
        value: Optional[int] = None,
        rmw: Optional[Callable[[int], int]] = None,
    ) -> None:
        """Perform a timed memory access from ``core``.

        * ``READ``  — ``on_done(current value)``
        * ``WRITE`` — stores ``value``; ``on_done(value)``
        * ``RMW``   — atomically applies ``rmw(old) -> new``;
          ``on_done(old value)``

        The data mutation happens at completion time, which is the access's
        serialization point (events are atomic), so RMWs are linearizable.
        """
        line = self.line_of(addr)
        l1 = self._l1.setdefault(core, {})
        state = l1.get(line)

        hit = (kind == READ and state in ("M", "S")) or (
            kind in (WRITE, RMW) and state == "M"
        )
        if hit:
            # The access linearizes *now*, while the core demonstrably holds
            # the line in a sufficient state; only the latency is deferred.
            # Committing later would let a concurrent remote RMW interleave
            # after an invalidation and break atomicity.
            self.l1_hits += 1
            result = self._commit(addr, kind, value, rmw)
            self._sim.after(self._config.l1_latency, lambda: on_done(result))
            return

        self.l1_misses += 1
        home = self.home_of_line(line)
        self._net.send(
            self._core_ep(core),
            self._dir_ep(home),
            ("miss", core, line, addr, kind, on_done, value, rmw),
        )

    def _on_message(self, _src: Endpoint, payload: Tuple) -> None:
        if payload[0] == "mao":
            # remote atomic: serialize at the controller like any access
            _tag, home, process = payload
            self._dir_servers[home].request(self._config.l2_latency, process)
            return
        tag, core, line, addr, kind, on_done, value, rmw = payload
        assert tag == "miss"
        home = self.home_of_line(line)
        ls = self._lines.setdefault(line, _LineState())
        service = (
            self._config.l2_latency if ls.touched else self._config.local_mem_latency
        )
        ls.touched = True

        def serviced() -> None:
            # The directory state update AND the data commit happen here,
            # atomically at the directory's serialization point.  Charging
            # third-party hops (owner forward / invalidation acks) before
            # committing would let a racing reader cache the line with
            # pre-write data — a lost-wakeup deadlock for spinlocks.
            extra = self._directory_action(core, line, kind)
            result = self._commit(addr, kind, value, rmw)

            def ship() -> None:
                self._net.send(
                    self._dir_ep(home),
                    self._core_ep(core),
                    ("fill",),
                    on_deliver=lambda: on_done(result),
                )

            if extra:
                self._sim.after(extra, ship)
            else:
                ship()

        self._dir_servers[home].request(service, serviced)

    def _directory_action(self, core: int, line: int, kind: str) -> int:
        """Update directory state for a miss; returns the extra latency of
        third-party hops (owner forwards, farthest invalidation)."""
        ls = self._lines[line]
        extra = 0
        home_ep = self._dir_ep(self.home_of_line(line))

        if kind == READ:
            if ls.owner is not None and ls.owner != core:
                # forward to owner + cache-to-cache transfer: one extra hop
                self.owner_forwards += 1
                extra = self._net.latency_estimate(
                    home_ep, self._core_ep(ls.owner)
                )
                self._l1.setdefault(ls.owner, {})[line] = "S"
                ls.sharers.add(ls.owner)
                ls.owner = None
            ls.sharers.add(core)
            self._l1.setdefault(core, {})[line] = "S"
        else:  # WRITE / RMW — need exclusivity
            victims = set(ls.sharers)
            if ls.owner is not None:
                victims.add(ls.owner)
            victims.discard(core)
            if victims:
                self.invalidations += len(victims)
                farthest = 0
                for v in victims:
                    self._l1.setdefault(v, {}).pop(line, None)
                    self._fire_line(v, line)
                    farthest = max(
                        farthest,
                        self._net.latency_estimate(home_ep, self._core_ep(v)),
                    )
                extra = farthest
            ls.sharers.clear()
            ls.owner = core
            self._l1.setdefault(core, {})[line] = "M"

        return extra

    def _commit(
        self,
        addr: int,
        kind: str,
        value: Optional[int],
        rmw: Optional[Callable[[int], int]],
    ) -> int:
        """Apply the access's data effect; returns the value delivered to
        the core (current value for READ, old value for RMW)."""
        if kind == READ:
            return self._store.get(addr, 0)
        if kind == WRITE:
            assert value is not None
            self._store[addr] = value
            return value
        assert rmw is not None
        old = self._store.get(addr, 0)
        self._store[addr] = rmw(old)
        return old

    # ------------------------------------------------------------------ #
    # remote atomics (Memory Atomic Operations — fetch-and-theta executed
    # at the controller, not the core; paper related-work family)

    def remote_rmw(
        self,
        core: int,
        addr: int,
        fn: Callable[[int], int],
        on_done: Callable[[int], None],
    ) -> None:
        """Apply ``fn`` to the word at its home controller; no caching.
        Any cached copies are invalidated so coherent loads stay correct.
        """
        line = self.line_of(addr)
        home = self.home_of_line(line)

        def process() -> None:
            ls = self._lines.setdefault(line, _LineState())
            ls.touched = True
            victims = set(ls.sharers)
            if ls.owner is not None:
                victims.add(ls.owner)
            for v in victims:
                self._l1.setdefault(v, {}).pop(line, None)
                self._fire_line(v, line)
            ls.sharers.clear()
            ls.owner = None
            old = self._store.get(addr, 0)
            self._store[addr] = fn(old)
            self._net.send(
                self._dir_ep(home),
                self._core_ep(core),
                ("fill",),
                on_deliver=lambda: on_done(old),
            )

        self._net.send(
            self._core_ep(core), self._dir_ep(home), ("mao", home, process)
        )

    # ------------------------------------------------------------------ #
    # background memory traffic (LRT overflow table, app phases)

    def memory_touch(self, mc: int, on_done: Callable[[], None]) -> None:
        """Charge one main-memory access at controller ``mc`` (used by the
        LRT's overflow hash table)."""
        self._dir_servers[mc].request(self._config.local_mem_latency, on_done)
