"""The nemesis matrix: fault classes × lock algorithms × machine models.

Each cell runs one seeded workload (via :func:`repro.check.fuzz.run_case`,
so the full invariant monitor, oracle and quiescence audit are active)
under a fault plan containing a single fault class, then classifies the
result.  The acceptance bar is *zero violated cells*: every injected
fault must end in ``recovered`` (full service, invariants intact) or
``degraded`` (correct but impaired — e.g. the ``lcu_fb`` fallback path
engaged).

Everything is derived from one matrix seed, so a report replays
bit-identically — each cell's plan JSON plus its case seed is a complete
reproducer, and failing cells can be handed to ``repro check --replay``
style tooling or shrunk by the fuzzer.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.fuzz import FuzzCase, run_case
from repro.faults.plan import (
    CRASH_CLASSES,
    GRAY_CLASSES,
    LCU_ONLY_CLASSES,
    MESSAGE_CLASSES,
    SCHED_CLASSES,
    generate_plan,
)

#: default algorithm axis: the paper lock, its degradable variant, and
#: the strongest software baselines (queue locks + reader-writer)
DEFAULT_ALGOS: Tuple[str, ...] = (
    "lcu", "lcu_fb", "mcs", "clh", "ticket", "mrsw",
)
DEFAULT_MODELS: Tuple[str, ...] = ("A", "B")
#: classes every algorithm faces; LCU-backed locks additionally face
#: the hardware-pressure classes.  Crash-stop classes are universal:
#: software locks face them under the "idle" victim policy (a core dies
#: between critical sections), LCU-backed locks under the "busy" policy
#: (the crash lands on live hardware lock state and must be revoked by
#: the lease machinery) — see repro.check.fuzz._crash_victim_gate.
#: Gray-failure classes (asymmetric partitions, zombie holders, slow
#: cores) are universal too: any lock's traffic can be partitioned and
#: any core can zombie or crawl; what differs is the recovery story the
#: cell exercises (fenced lease reclaim for LCU-backed locks, plain
#: retransmission-and-wait for software ones).
UNIVERSAL_CLASSES: Tuple[str, ...] = (
    MESSAGE_CLASSES + SCHED_CLASSES + CRASH_CLASSES + GRAY_CLASSES
)
LCU_ALGOS: Tuple[str, ...] = ("lcu", "lcu_fb")


@dataclasses.dataclass
class NemesisCell:
    """One (fault class, algorithm, model) run and its verdict."""

    algo: str
    model: str
    fault: str
    seed: int
    outcome: str               # worst outcome across the cell's faults
    injected: int
    detail: str
    elapsed: int
    total_cs: int
    plan: Dict[str, Any]
    case: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class NemesisResult:
    """Full matrix report (JSON-able, replayable from ``seed``)."""

    seed: int
    cells: List[NemesisCell]

    @property
    def counts(self) -> Dict[str, int]:
        out = {"recovered": 0, "degraded": 0, "violated": 0}
        for cell in self.cells:
            out[cell.outcome] = out.get(cell.outcome, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        return all(c.outcome != "violated" for c in self.cells)

    def violated(self) -> List[NemesisCell]:
        return [c for c in self.cells if c.outcome == "violated"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "counts": self.counts,
            "cells": [c.to_dict() for c in self.cells],
        }


def _cell_seed(seed: int, algo: str, model: str, fault: str) -> int:
    """Stable per-cell seed (independent of axis ordering)."""
    return zlib.crc32(f"{seed}:{algo}:{model}:{fault}".encode()) & 0x7FFFFFFF


def classes_for(algo: str, classes: Optional[Sequence[str]]) -> List[str]:
    """The fault-class axis for one algorithm: an explicit list is taken
    as-is except that hardware-pressure classes are skipped for locks
    that never touch the LCU (they would inject nothing)."""
    pool = (
        list(classes) if classes is not None
        else list(UNIVERSAL_CLASSES)
        + (list(LCU_ONLY_CLASSES) if algo in LCU_ALGOS else [])
    )
    if algo not in LCU_ALGOS:
        pool = [c for c in pool if c not in LCU_ONLY_CLASSES]
    return pool


def run_cell(
    algo: str,
    model: str,
    fault: str,
    seed: int,
    threads: int = 6,
    iters: int = 30,
    horizon: int = 12_000,
    fencing: bool = True,
) -> NemesisCell:
    """Run one matrix cell.  Model B message faults and link partitions
    target the scarce inter-chip hub links (the paper's Model B
    bottleneck — a partition there is a hub brownout); Model A is flat,
    so they target the core↔LRT protocol links instead.

    ``fencing=False`` is the sabotage axis: leases are still reclaimed
    but grants carry no enforced fence token, so a zombie holder's
    stale operations succeed silently — the cell is then expected to
    *violate* (the monitor's zombie-writer check firing is the proof
    the fences earn their keep)."""
    cseed = _cell_seed(seed, algo, model, fault)
    links = (
        "inter_chip"
        if model == "B" and fault in MESSAGE_CLASSES + ("partition_links",)
        else "lcu_lrt"
    )
    plan = generate_plan(
        seed=cseed, classes=[fault], horizon=horizon, links=links,
        cores=4,
    )
    case = FuzzCase(
        algo=algo,
        model=model,
        seed=cseed,
        threads=threads,
        locks=2,
        iters=iters,
        write_pct=60,
        cs_cycles=250,
        think_cycles=80,
        yield_pct=10,
        tiebreak_seed=cseed & 0xFFFF,
        faults=plan.to_dict(),
        fencing=fencing,
        note=f"nemesis {fault}/{algo}/{model}",
    )
    outcome = run_case(case)
    worst, detail = "recovered", ""
    for fo in outcome.fault_outcomes or []:
        rank = {"recovered": 0, "degraded": 1, "violated": 2}
        if rank[fo.outcome] > rank[worst]:
            worst, detail = fo.outcome, fo.detail
    injected = sum((outcome.fault_stats or {}).values())
    return NemesisCell(
        algo=algo,
        model=model,
        fault=fault,
        seed=cseed,
        outcome=worst,
        injected=injected,
        detail=detail,
        elapsed=outcome.elapsed,
        total_cs=outcome.total_cs,
        plan=plan.to_dict(),
        case=case.to_dict(),
    )


def _cell_specs(
    algos: Sequence[str],
    models: Sequence[str],
    classes: Optional[Sequence[str]],
    seed: int,
    threads: int,
    iters: int,
    horizon: int,
    fencing: bool,
) -> List[Tuple]:
    """The matrix cells in canonical (spec) order — the order the report
    lists them in regardless of how they are executed."""
    return [
        (algo, model, fault, seed, threads, iters, horizon, fencing)
        for model in models
        for algo in algos
        for fault in classes_for(algo, classes)
    ]


def _cell_shard(spec: Tuple) -> Dict[str, Any]:
    """Worker-process entry point: run one cell, return it as a plain
    dict (pool transport must not depend on rich-object pickling)."""
    algo, model, fault, seed, threads, iters, horizon, fencing = spec
    return run_cell(
        algo, model, fault, seed,
        threads=threads, iters=iters, horizon=horizon, fencing=fencing,
    ).to_dict()


def run_matrix(
    algos: Sequence[str] = DEFAULT_ALGOS,
    models: Sequence[str] = DEFAULT_MODELS,
    classes: Optional[Sequence[str]] = None,
    seed: int = 0,
    threads: int = 6,
    iters: int = 30,
    horizon: int = 12_000,
    progress=None,
    workers: int = 0,
    fencing: bool = True,
) -> NemesisResult:
    """Run the full nemesis matrix.  Deterministic in its arguments:
    the report dict is bit-identical across runs with the same inputs
    AND any worker count — every cell is an independent simulation
    keyed only by its spec, and results are merged in spec order.

    ``workers >= 2`` fans cells out over a spawn-context process pool
    (spawn, not fork: each worker imports a clean interpreter, so no
    inherited module state can perturb a cell).  ``workers <= 1`` runs
    serially in-process.  With a pool, ``progress`` fires at merge time
    (spec order), not at cell completion."""
    specs = _cell_specs(algos, models, classes, seed, threads, iters,
                        horizon, fencing)
    cells: List[NemesisCell] = []
    if workers >= 2 and len(specs) > 1:
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=min(workers, len(specs))) as pool:
            shards = pool.map(_cell_shard, specs)  # order-preserving
        for shard in shards:
            cell = NemesisCell(**shard)
            cells.append(cell)
            if progress is not None:
                progress(cell)
    else:
        for spec in specs:
            cell = run_cell(
                spec[0], spec[1], spec[2], spec[3],
                threads=spec[4], iters=spec[5], horizon=spec[6],
                fencing=spec[7],
            )
            cells.append(cell)
            if progress is not None:
                progress(cell)
    return NemesisResult(seed=seed, cells=cells)
