"""Fault plans: seed-derived, JSON-round-trippable fault schedules.

A :class:`FaultPlan` is the *complete* description of a nemesis run:
given the same plan (and the same workload seed), the injector makes
bit-identical decisions, so every fault scenario — including ones found
by the fuzzer — replays exactly from its JSON form.

Fault classes
-------------

Message faults (windows, applied to frames on matching links only —
the reliable layer is what makes them survivable):

* ``drop``  — each covered frame in the window is lost with ``prob``.
* ``dup``   — each covered frame is delivered twice, the extra copy
  after a small seeded delay (which also exercises reordering).
* ``delay`` — each covered frame is held up to ``max_delay`` cycles;
  different delays on different frames reorder them on the wire.

Hardware-pressure faults:

* ``evict``     — point event: force-evict waiting LCU queue entries
  (paper's eviction case, but adversarially timed).
* ``flt_storm`` — point event: flush every Free-Lock-Table park,
  creating a burst of overflow releases.
* ``capacity``  — window: clamp every LCU's usable entry count to
  ``limit`` (0 = total allocation failure → fallback-lock territory).

Scheduling faults:

* ``preempt`` — point event: preempt every running thread at once;
  with ``migrate`` the threads restart on different cores.
* ``stall``   — window: one core stops executing (SMI / firmware
  stall); its threads freeze mid-operation and resume after.

Crash-stop faults:

* ``crash_core``   — point event: core ``core`` dies for good — its
  running thread, its LCU (with every queue node, held-generation
  record and FLT park homed there) and its in-flight frames are gone.
  Recovery is the LRT lease watchdog's job.
* ``restart_core`` — a ``crash_core`` followed by a seeded rebirth
  ``duration`` cycles later: the core returns with an *empty* LCU and
  a fresh frame era; the threads that died stay dead.

Gray failures (the victim is degraded or unreachable, *not* dead —
the failure detector must tell these apart from crash-stop):

* ``partition_links`` — window: an asymmetric link blackhole.  Frames
  on matching links (``direction`` selects one orientation or both)
  are dropped 100% until the seeded heal time ``end``; the reliable
  layer retransmits them across the heal, so the partition delays
  traffic without losing it.  On Model B with ``links="inter_chip"``
  this is a hub brownout.
* ``zombie_core``  — window: core ``core`` (or, preferred, a victim
  currently holding live lock state) freezes — threads stop
  dispatching *and* its protocol links blackhole — for ``duration``
  cycles, then resumes.  The stall is sized past the LRT lease, so
  the zombie is reclaimed away and later wakes up still believing it
  holds; fencing tokens are what keep its stale operations out.
* ``slow_core``    — gray degradation, not a stop: core ``core``
  dispatches every operation ``factor``× slower from ``at`` on (for
  ``duration`` cycles, or for the rest of the run when 0).  A slow
  core still heartbeats and answers probes — the suspicion-level
  failure detector must keep probing it patiently, never reclaim it.

``links`` selects which directed endpoint pairs a message fault (and
the reliable layer protecting them) applies to:

* ``"lcu_lrt"``   — core↔LRT protocol links (the distributed queue).
* ``"inter_chip"`` — links crossing a chip boundary (Model B's hub
  links; on Model A this matches nothing for a single-chip config).
* ``"all"``       — every non-self link carrying protocol messages.

``direction`` (``partition_links`` only) picks the failing
orientation: ``"fwd"`` (core→LRT / lower→higher chip), ``"rev"`` (the
reverse), or ``"both"``.  One-directional blackholes are the
interesting case — acks keep flowing while data vanishes.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Any, Dict, List, Sequence, Tuple

FORMAT = 2
#: formats this reader accepts (format 2 added the gray-failure
#: classes and the ``direction``/``factor`` event fields)
ACCEPTED_FORMATS = (1, 2)

#: message-level fault classes (need the reliable layer)
MESSAGE_CLASSES: Tuple[str, ...] = ("drop", "dup", "delay")
#: classes that only make sense for LCU-backed locks
LCU_ONLY_CLASSES: Tuple[str, ...] = ("evict", "flt_storm", "capacity")
#: scheduling faults, meaningful for every lock algorithm
SCHED_CLASSES: Tuple[str, ...] = ("preempt", "stall")
#: crash-stop faults (core death, with or without rebirth); meaningful
#: for every algorithm, but the injector's victim policy differs: for
#: LCU-backed locks the crash deliberately lands on live lock state,
#: for software locks it waits for a compute-phase victim (an
#: unrecoverable software-lock holder death is the liveness oracle's
#: sabotage scenario, not a survivable fault)
CRASH_CLASSES: Tuple[str, ...] = ("crash_core", "restart_core")
#: gray failures — degraded or unreachable but *alive*: asymmetric
#: partitions, zombie holders stalled past their lease, and slow cores.
#: Universal (every algorithm), like the scheduling classes.
GRAY_CLASSES: Tuple[str, ...] = (
    "partition_links", "zombie_core", "slow_core",
)
ALL_CLASSES: Tuple[str, ...] = (
    MESSAGE_CLASSES + LCU_ONLY_CLASSES + SCHED_CLASSES + CRASH_CLASSES
    + GRAY_CLASSES
)

LINK_SETS: Tuple[str, ...] = ("lcu_lrt", "inter_chip", "all")
DIRECTIONS: Tuple[str, ...] = ("both", "fwd", "rev")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.  Point events have ``duration == 0``."""

    kind: str
    at: int                    # start cycle
    duration: int = 0          # window length (0 for point events)
    prob: float = 0.0          # message faults: per-frame probability
    links: str = "lcu_lrt"     # message faults: which links
    max_delay: int = 0         # "delay": per-frame delay bound
    limit: int = 0             # "capacity": forced entry limit
    core: int = 0              # "stall"/"zombie"/"slow": which core
    migrate: bool = False      # "preempt": restart threads elsewhere
    direction: str = "both"    # "partition_links": failing orientation
    factor: float = 0.0        # "slow_core": dispatch slowdown multiple

    def __post_init__(self) -> None:
        if self.kind not in ALL_CLASSES:
            raise ValueError(f"unknown fault class {self.kind!r}")
        if self.links not in LINK_SETS:
            raise ValueError(f"unknown link set {self.links!r}")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.kind == "slow_core" and self.factor < 1.0:
            raise ValueError("slow_core needs factor >= 1.0")

    @property
    def end(self) -> int:
        return self.at + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultEvent fields: {sorted(unknown)}")
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A replayable fault schedule.  ``seed`` drives every probabilistic
    decision the injector makes while executing the plan, so (plan,
    workload) pairs replay bit-identically."""

    seed: int
    events: Tuple[FaultEvent, ...]
    format: int = FORMAT

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def classes(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for e in self.events:
            if e.kind not in seen:
                seen.append(e.kind)
        return tuple(seen)

    def needs_reliable(self) -> bool:
        # partitions and zombies blackhole frames: only the reliable
        # layer's retransmission makes them heal-able, and its
        # heartbeats are what feed the suspicion detector
        return any(
            e.kind in MESSAGE_CLASSES
            or e.kind in ("partition_links", "zombie_core")
            for e in self.events
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": self.format,
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"format", "seed", "events"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        fmt = data.get("format", FORMAT)
        if fmt not in ACCEPTED_FORMATS:
            raise ValueError(f"unsupported FaultPlan format {fmt!r}")
        return cls(
            seed=data["seed"],
            events=tuple(
                FaultEvent.from_dict(e) for e in data["events"]
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


def generate_plan(
    seed: int,
    classes: Sequence[str] = ALL_CLASSES,
    horizon: int = 300_000,
    intensity: float = 1.0,
    links: str = "lcu_lrt",
    cores: int = 4,
) -> FaultPlan:
    """Derive a fault schedule from ``seed``.

    ``horizon`` should roughly cover the workload's run time; events are
    placed in its first 80% so recovery has room to complete before the
    quiescence check.  ``intensity`` scales probabilities and event
    counts (1.0 = the calibrated default used by the nemesis matrix).
    """
    bad = [c for c in classes if c not in ALL_CLASSES]
    if bad:
        raise ValueError(f"unknown fault classes: {bad}")
    rng = random.Random(seed * 0x9E3779B1 + 7)
    events: List[FaultEvent] = []
    lo, hi = horizon // 10, (horizon * 8) // 10

    def when() -> int:
        return rng.randrange(lo, max(lo + 1, hi))

    for kind in classes:
        count = max(1, round(intensity * (2 if kind in MESSAGE_CLASSES else 1)))
        for _ in range(count):
            if kind in MESSAGE_CLASSES:
                events.append(FaultEvent(
                    kind=kind,
                    at=when(),
                    duration=rng.randrange(horizon // 20, horizon // 5),
                    prob=min(0.9, (0.3 if kind == "drop" else 0.5)
                             * intensity),
                    links=links,
                    max_delay=rng.randrange(200, 2_000)
                    if kind == "delay" else 0,
                ))
            elif kind == "capacity":
                events.append(FaultEvent(
                    kind=kind,
                    at=when(),
                    duration=rng.randrange(horizon // 20, horizon // 6),
                    limit=rng.choice((0, 1, 2)),
                ))
            elif kind == "stall":
                events.append(FaultEvent(
                    kind=kind,
                    at=when(),
                    duration=rng.randrange(2_000, 20_000),
                    core=rng.randrange(cores),
                ))
            elif kind == "partition_links":
                # asymmetric by default: one orientation blackholes,
                # the reverse stays clean; heal at the window end
                events.append(FaultEvent(
                    kind=kind,
                    at=when(),
                    duration=rng.randrange(
                        max(2, horizon // 8), max(3, horizon // 2)
                    ),
                    prob=1.0,
                    links=links,
                    direction=rng.choice(("fwd", "rev")),
                ))
            elif kind == "zombie_core":
                # sized past the default LRT lease (50k cycles of
                # silence) plus the probe ladder, so the holder is
                # reclaimed away *before* it resumes
                events.append(FaultEvent(
                    kind=kind,
                    at=when(),
                    duration=rng.randrange(65_000, 115_000),
                    core=rng.randrange(cores),
                ))
            elif kind == "slow_core":
                # persistent (duration 0): the degradation never heals
                # within the run — gray, not transient
                events.append(FaultEvent(
                    kind=kind,
                    at=when(),
                    core=rng.randrange(cores),
                    factor=float(rng.choice((2, 3, 4))),
                ))
            elif kind == "preempt":
                events.append(FaultEvent(
                    kind=kind, at=when(), migrate=rng.random() < 0.5,
                ))
            elif kind == "crash_core":
                events.append(FaultEvent(
                    kind=kind, at=when(), core=rng.randrange(cores),
                ))
            elif kind == "restart_core":
                # ``duration`` is the rebirth delay, counted from the
                # moment the crash actually lands (victim-policy polling
                # may postpone it past ``at``).
                events.append(FaultEvent(
                    kind=kind,
                    at=when(),
                    duration=rng.randrange(2_000, 20_000),
                    core=rng.randrange(cores),
                ))
            else:  # evict / flt_storm: point events
                events.append(FaultEvent(kind=kind, at=when()))
    events.sort(key=lambda e: (e.at, e.kind))
    return FaultPlan(seed=seed, events=tuple(events))
