"""Execute a :class:`~repro.faults.plan.FaultPlan` against one machine.

The injector is the only piece that touches live simulation state:

* message faults install a :class:`~repro.net.reliable.ReliableLayer`
  over the targeted links and a wire-level fault filter that drops,
  duplicates or delays **frames only** — raw memory-coherence and SSB
  traffic is never faulted (the protocol hardening story is about the
  distributed lock queue, not about building a reliable NoC);
* hardware-pressure and scheduling faults are scheduled as ordinary
  simulator events calling the public fault surfaces grown in
  ``repro.lcu`` / ``repro.cpu.os_sched``.

Determinism: the only randomness is ``random.Random(plan.seed)``
consumed in simulator event order, which the engine makes deterministic
— replaying the same (plan, workload seed, tiebreak seed) triple gives
bit-identical cycle counts and message traces.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.faults.plan import MESSAGE_CLASSES, FaultEvent, FaultPlan
from repro.net.reliable import ReliableLayer

Endpoint = Tuple[str, int]

#: bound on point-eviction victims per event (keeps plans comparable
#: across machine sizes; logged in stats, so never a silent cap)
_EVICTS_PER_EVENT = 4


@dataclasses.dataclass(frozen=True)
class FaultOutcome:
    """Post-run verdict for one fault class of a plan.

    ``outcome`` is one of:

    * ``"recovered"`` — workload finished, invariants held, protocol
      state quiesced; full service restored.
    * ``"degraded"``  — correct but impaired: the fallback lock engaged,
      or the LRT absorbed an unresolvable remote release.
    * ``"violated"``  — an invariant/oracle violation, a deadlock, or
      protocol traffic that never quiesced.  Never acceptable.
    """

    kind: str
    injected: int
    outcome: str
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class FaultInjector:
    """Arms one plan against one (machine, os) pair.

    Lifecycle: construct → :meth:`arm` (before the workload starts) →
    run the workload → :meth:`drain` → :meth:`classify`.
    """

    def __init__(self, machine, os_, plan: FaultPlan) -> None:
        self.machine = machine
        self.os = os_
        self.plan = plan
        self._rng = random.Random(plan.seed * 0x9E3779B1 + 13)
        self._armed = False
        self.reliable: Optional[ReliableLayer] = None
        self.stats: Dict[str, int] = {}
        self._msg_events: List[FaultEvent] = [
            e for e in plan.events if e.kind in MESSAGE_CLASSES
        ]

    # ------------------------------------------------------------------ #
    # arming

    def arm(self) -> None:
        """Harden the machine, install the wire fault filter + reliable
        layer (if the plan faults messages), schedule every event."""
        assert not self._armed, "injector armed twice"
        self._armed = True
        self.machine.harden()
        sim = self.machine.sim
        if self._msg_events:
            self.reliable = ReliableLayer(sim, self._link_covered)
            self.reliable.attach(self.machine.net)
            self.machine.net.fault_filter = self._fault_filter
        for event in self.plan.events:
            if event.kind in MESSAGE_CLASSES:
                continue  # window-matched inside the filter
            sim.at(max(event.at, sim.now + 1),
                   lambda e=event: self._fire(e))

    def _link_covered(self, src: Endpoint, dst: Endpoint) -> bool:
        return any(
            self._link_match(e.links, src, dst) for e in self._msg_events
        )

    def _link_match(self, links: str, src: Endpoint, dst: Endpoint) -> bool:
        if links == "all":
            return True
        if links == "lcu_lrt":
            kinds = {src[0], dst[0]}
            return kinds == {"core", "lrt"} or kinds == {"core"}
        # "inter_chip": Model B hub links
        return self.machine._chip_of(src) != self.machine._chip_of(dst)

    # ------------------------------------------------------------------ #
    # wire fault filter (frames only)

    def _fault_filter(
        self, src: Endpoint, dst: Endpoint, payload: Any
    ) -> Iterable[Tuple[int, Any]]:
        if self.reliable is None or not self.reliable.intercepts(payload):
            return [(0, payload)]
        now = self.machine.sim.now
        copies: List[Tuple[int, Any]] = [(0, payload)]
        for e in self._msg_events:
            if not (e.at <= now < e.end):
                continue
            if not self._link_match(e.links, src, dst):
                continue
            if e.kind == "drop":
                copies = [
                    c for c in copies if not self._roll(e.prob, "drop")
                ]
            elif e.kind == "dup":
                copies = copies + [
                    (delay + self._rng.randrange(1, 64), p)
                    for delay, p in copies
                    if self._roll(e.prob, "dup")
                ]
            elif e.kind == "delay":
                copies = [
                    (delay + self._rng.randrange(1, e.max_delay + 1), p)
                    if self._roll(e.prob, "delay") else (delay, p)
                    for delay, p in copies
                ]
        return copies

    def _roll(self, prob: float, kind: str) -> bool:
        hit = self._rng.random() < prob
        if hit:
            self._count(kind)
        return hit

    # ------------------------------------------------------------------ #
    # point / window events

    def _fire(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "evict":
            victims = sorted(
                (key, i)
                for i, lcu in enumerate(self.machine.lcus)
                for key in lcu.evictable_entries()
            )
            self._rng.shuffle(victims)
            for (addr, tid), core in victims[:_EVICTS_PER_EVENT]:
                if self.machine.lcus[core].force_evict(addr, tid):
                    self._count("evict")
        elif kind == "flt_storm":
            for lcu in self.machine.lcus:
                while lcu.force_flt_evict():
                    self._count("flt_storm")
        elif kind == "capacity":
            for lcu in self.machine.lcus:
                lcu.set_forced_capacity(event.limit)
            self._count("capacity")
            self.machine.sim.at(
                max(event.end, self.machine.sim.now + 1),
                self._lift_capacity,
            )
        elif kind == "preempt":
            self.os.force_preempt_all(migrate=event.migrate)
            self._count("preempt")
        elif kind == "stall":
            self.os.stall_core(
                event.core % self.machine.config.cores, event.duration
            )
            self._count("stall")
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise ValueError(f"unschedulable fault kind {kind!r}")

    def _lift_capacity(self) -> None:
        for lcu in self.machine.lcus:
            lcu.set_forced_capacity(None)

    def _count(self, kind: str) -> None:
        self.stats[kind] = self.stats.get(kind, 0) + 1

    # ------------------------------------------------------------------ #
    # post-run

    def drain(self, step: int = 50_000, max_steps: int = 20) -> bool:
        """Let retransmissions and reclaim traffic settle after the
        workload; returns True when no frame is left pending."""
        for _ in range(max_steps):
            self.machine.drain(step)
            if self.reliable is None or self.reliable.pending_frames() == 0:
                return True
        return self.reliable is None or self.reliable.pending_frames() == 0

    def degradation_detail(self, algorithm=None) -> str:
        """Why (if at all) the run counts as degraded rather than fully
        recovered."""
        reasons = []
        if algorithm is not None:
            degrades = getattr(algorithm, "stats", {}).get("degrades", 0)
            if degrades:
                reasons.append(f"fallback lock engaged x{degrades}")
        unresolved = sum(
            lrt.stats.get("unresolved_remote_releases", 0)
            for lrt in self.machine.lrts
        )
        if unresolved:
            reasons.append(f"unresolved remote releases x{unresolved}")
        return "; ".join(reasons)

    def classify(
        self,
        violation: Optional[str] = None,
        algorithm=None,
    ) -> List[FaultOutcome]:
        """One :class:`FaultOutcome` per fault class in the plan.

        ``violation`` is the workload-level failure (invariant violation,
        deadlock, hang), or None if it completed and audits passed."""
        pending = (
            0 if self.reliable is None else self.reliable.pending_frames()
        )
        if violation is None and pending:
            violation = f"{pending} frames still pending after drain"
        degraded = self.degradation_detail(algorithm)
        outcomes = []
        for kind in self.plan.classes:
            injected = self.stats.get(kind, 0)
            if violation is not None:
                verdict, detail = "violated", violation
            elif degraded:
                verdict, detail = "degraded", degraded
            else:
                verdict, detail = "recovered", ""
            outcomes.append(
                FaultOutcome(kind, injected, verdict, detail)
            )
        return outcomes
